//! The paper's introductory motivating scenario: satellite-based
//! surveillance with perpetual processing.
//!
//! The battery level swings with sunlight exposure, and the acceptable
//! application error rate varies with the terrain under surveillance. The
//! run-time manager must therefore alternate between energy-frugal,
//! error-tolerant operation (eclipse over open ocean) and high-reliability
//! operation (sunlit pass over a target area) — exactly the dynamic CLR
//! use-case of Fig. 1.
//!
//! This example scripts a deterministic orbit of alternating phases and
//! shows the operating point the uRA policy picks in each phase, plus what
//! a fixed worst-case configuration would have paid.
//!
//! Run with: `cargo run --release --example satellite_surveillance`

use hybrid_clr::prelude::*;

/// One orbit phase: a label and the QoS requirement in force.
struct Phase {
    name: &'static str,
    spec: QosSpec,
}

fn main() {
    // The on-board image-processing pipeline.
    let graph = TgffGenerator::new(TgffConfig::with_tasks(25)).generate(7);
    let platform = Platform::dac19();

    // Orbital radiation: an order of magnitude above the terrestrial
    // default.
    let fm = FaultModel::default().with_lambda_seu(5e-3);

    let flow = HybridFlow::builder(&graph, &platform)
        .fault_model(fm)
        .ga(GaParams {
            population: 60,
            generations: 40,
            ..GaParams::default()
        })
        .red(RedConfig::default())
        .seed(7)
        .run();
    let db = flow.db(DbChoice::Red);
    let ctx = flow.context(DbChoice::Red);
    println!("stored design points: {}", db.len());

    // Derive phase requirements from the achievable envelope.
    let best_rel = db
        .iter()
        .map(|p| p.metrics.reliability)
        .fold(0.0f64, f64::max);
    let worst_rel = db
        .iter()
        .map(|p| p.metrics.reliability)
        .fold(1.0f64, f64::min);
    let max_makespan = db.iter().map(|p| p.metrics.makespan).fold(0.0f64, f64::max);

    let phases = [
        Phase {
            name: "sunlit / target pass (strict reliability)",
            spec: QosSpec::new(max_makespan * 1.5, best_rel * 0.999),
        },
        Phase {
            name: "sunlit / open ocean (relaxed)",
            spec: QosSpec::new(max_makespan * 1.5, worst_rel),
        },
        Phase {
            name: "eclipse / battery saving (very relaxed)",
            spec: QosSpec::new(max_makespan * 2.0, worst_rel * 0.98),
        },
        Phase {
            name: "eclipse / target pass (strict again)",
            spec: QosSpec::new(max_makespan * 1.5, best_rel * 0.999),
        },
    ];

    // Fixed worst-case provisioning: cheapest point meeting the strictest
    // phase at all times.
    let strict = &phases[0].spec;
    let fixed = db
        .iter()
        .filter(|p| p.satisfies(strict))
        .min_by(|a, b| a.metrics.energy.total_cmp(&b.metrics.energy))
        .expect("strictest phase is achievable");
    println!(
        "fixed worst-case configuration: energy {:.0}, reliability {:.5}\n",
        fixed.metrics.energy, fixed.metrics.reliability
    );

    // Dynamic adaptation with a mid-range p_RC.
    let policy = UraPolicy::new(0.6).expect("0.6 is a valid p_rc");
    let mut current = 0usize;
    let mut dynamic_energy_sum = 0.0;
    for phase in &phases {
        match policy.select(&ctx, current, &phase.spec) {
            Some(next) => {
                let drc = ctx.drc(current, next);
                current = next;
                let m = &db.get(current).unwrap().metrics;
                dynamic_energy_sum += m.energy;
                println!(
                    "{:<44} -> point {:>2}: energy {:>7.0}, reliability {:.5}, dRC paid {:.1}",
                    phase.name, current, m.energy, m.reliability, drc
                );
            }
            None => {
                dynamic_energy_sum += db.get(current).unwrap().metrics.energy;
                println!(
                    "{:<44} -> no stored point satisfies the requirement; holding point {current}",
                    phase.name
                );
            }
        }
    }
    let dynamic_avg = dynamic_energy_sum / phases.len() as f64;
    println!(
        "\naverage energy: dynamic {:.0} vs fixed {:.0} ({:.1}% saved by adapting)",
        dynamic_avg,
        fixed.metrics.energy,
        (fixed.metrics.energy - dynamic_avg) / fixed.metrics.energy * 100.0
    );
}
