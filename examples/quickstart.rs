//! Quickstart: the full hybrid methodology in ~40 lines.
//!
//! Generates a 15-task synthetic application, runs the design-time
//! exploration (BaseD + ReD) on the paper's 5-PE platform, then simulates
//! run-time adaptation to 100k cycles of QoS-requirement changes with uRA
//! and AuRA.
//!
//! Run with: `cargo run --release --example quickstart`

use hybrid_clr::prelude::*;

fn main() {
    // 1. The application and platform.
    let graph = TgffGenerator::new(TgffConfig::with_tasks(15)).generate(42);
    let platform = Platform::dac19();
    println!(
        "application: {} tasks, {} edges on {} PEs + {} PRRs",
        graph.num_tasks(),
        graph.num_edges(),
        platform.num_pes(),
        platform.num_prrs()
    );

    // 2. Design-time exploration: Pareto front + reconfiguration-aware
    //    extras.
    let flow = HybridFlow::builder(&graph, &platform)
        .ga(GaParams {
            population: 60,
            generations: 40,
            ..GaParams::default()
        })
        .red(RedConfig::default())
        .seed(42)
        .run();
    let red = flow.red().expect("red stage was configured");
    println!(
        "design time: BaseD = {} Pareto points, ReD adds {} low-dRC points",
        flow.based().len(),
        red.len() - flow.based().len()
    );
    for (i, p) in red.iter().enumerate().take(5) {
        println!(
            "  point {i}: makespan {:.0}, reliability {:.4}, energy {:.0} ({:?})",
            p.metrics.makespan, p.metrics.reliability, p.metrics.energy, p.origin
        );
    }

    // 3. Run-time adaptation: 100k cycles of QoS variation.
    let sim = SimConfig {
        total_cycles: 100_000.0,
        ..SimConfig::paper(7)
    };
    for p_rc in [0.0, 0.5, 1.0] {
        let r = flow.simulate_ura(DbChoice::Red, p_rc, &sim);
        println!(
            "uRA  p_RC={p_rc:.1}: {} events, {} reconfigs, avg dRC {:.2}, avg energy {:.0}",
            r.events, r.reconfigurations, r.avg_reconfig_cost, r.avg_energy
        );
    }
    let r = flow.simulate_aura(DbChoice::Red, 0.5, 0.6, 0.1, 50, &sim);
    println!(
        "AuRA p_RC=0.5: {} events, {} reconfigs, avg dRC {:.2}, avg energy {:.0}",
        r.events, r.reconfigurations, r.avg_reconfig_cost, r.avg_energy
    );
}
