//! Interactive-scale design-space exploration: BaseD vs ReD side by side.
//!
//! Runs the CSP-mode (R = 0) exploration of §5.2 on a 30-task application
//! and prints both databases — the QoS Pareto front and the additional
//! low-dRC points the reconfiguration-cost-aware stage contributes — plus
//! each point's average reconfiguration distance to the Pareto set (the
//! quantity the ReD stage minimises).
//!
//! Run with: `cargo run --release --example design_space_explorer`

use hybrid_clr::prelude::*;

fn main() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(30)).generate(11);
    let platform = Platform::dac19();

    let flow = HybridFlow::builder(&graph, &platform)
        .mode(ExplorationMode::Csp)
        .ga(GaParams {
            population: 60,
            generations: 40,
            ..GaParams::default()
        })
        .red(RedConfig::default())
        .seed(11)
        .run();

    let based = flow.based();
    let red = flow.red().expect("red stage was configured");
    println!(
        "BaseD: {} Pareto points | ReD: {} points (+{} reconfiguration-aware)\n",
        based.len(),
        red.len(),
        red.len() - based.len()
    );

    let based_mappings: Vec<Mapping> = based.iter().map(|p| p.mapping.clone()).collect();
    let avg_drc = |m: &Mapping| -> f64 {
        based_mappings
            .iter()
            .map(|from| reconfiguration_cost(&graph, &platform, from, m).total())
            .sum::<f64>()
            / based_mappings.len() as f64
    };

    println!(
        "{:<6} {:>10} {:>12} {:>10} {:<16}",
        "idx", "makespan", "reliability", "avg dRC", "origin"
    );
    for (i, p) in red.iter().enumerate() {
        println!(
            "{:<6} {:>10.1} {:>12.5} {:>10.2} {:<16}",
            i,
            p.metrics.makespan,
            p.metrics.reliability,
            avg_drc(&p.mapping),
            format!("{:?}", p.origin)
        );
    }

    // Quantify what the extras buy at run time.
    let sim = SimConfig {
        total_cycles: 100_000.0,
        ..SimConfig::paper(3)
    };
    let based_run = flow.simulate_ura(DbChoice::Based, 0.0, &sim);
    let red_run = flow.simulate_ura(DbChoice::Red, 0.0, &sim);
    println!(
        "\nrun-time (p_RC = 0, 100k cycles): BaseD avg dRC {:.2} vs ReD avg dRC {:.2}",
        based_run.avg_reconfig_cost, red_run.avg_reconfig_cost
    );
}
