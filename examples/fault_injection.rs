//! Cross-validation of the analytical CLR models by Monte-Carlo fault
//! injection.
//!
//! For every configuration in the coarse (CLR1) space, compares the
//! analytically derived Table-2 metrics (`TaskMetrics::evaluate`) against
//! 100k injected executions (`FaultInjector`): SEUs strike during the
//! exposure window, TMR replicas vote, checksums detect, retries re-run.
//!
//! Run with: `cargo run --release --example fault_injection`

use hybrid_clr::prelude::*;

fn main() {
    let pe = PeType::new("core", PeKind::GeneralPurpose)
        .with_masking_factor(0.6)
        .expect("valid masking");
    let graph = jpeg_encoder();
    let im = &graph.implementations(TaskId::new(1))[0];
    let fm = FaultModel::new(2e-3, 1e6, 1.0); // harsh environment

    println!("analytical vs injected metrics, 100k executions per config\n");
    println!(
        "{:<34} {:>12} {:>12} {:>9} {:>10} {:>10}",
        "config", "ErrProb(ana)", "ErrProb(inj)", "Δrel%", "AvgT(ana)", "AvgT(inj)"
    );
    for cfg in ConfigSpace::coarse().configs() {
        let ana = TaskMetrics::evaluate(im, &pe, cfg, &fm);
        let inj = FaultInjector::new(im, &pe, *cfg, fm).estimate(100_000, 7);
        let denom = ana.err_prob.max(inj.err_prob).max(1e-12);
        let rel = (ana.err_prob - inj.err_prob).abs() / denom * 100.0;
        println!(
            "{:<34} {:>12.3e} {:>12.3e} {:>8.1}% {:>10.1} {:>10.1}",
            cfg.to_string(),
            ana.err_prob,
            inj.err_prob,
            rel,
            ana.avg_ex_t,
            inj.avg_time
        );
    }
    println!(
        "\nThe analytical models are first-order approximations; agreement within a \
         few tens of percent on the (tiny) residual error probabilities — and within \
         ~2% on execution times — confirms the relative ordering the DSE relies on."
    );
}
