//! The paper's Fig. 2b application: a JPEG encoder task graph.
//!
//! Walks the cross-layer reliability design space for one DCT task,
//! showing how each layer's methods trade error probability against time,
//! power and lifetime (Table 2), then maps the full encoder and prints a
//! Gantt-style schedule.
//!
//! Run with: `cargo run --release --example jpeg_encoder`

use hybrid_clr::prelude::*;

fn main() {
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    println!(
        "JPEG encoder: {} tasks / {} edges",
        graph.num_tasks(),
        graph.num_edges()
    );
    println!("\n{}", clr_taskgraph::to_dot(&graph));

    // --- Table-2 metrics of one DCT task across CLR configurations. ----
    let dct = TaskId::new(1);
    let im = &graph.implementations(dct)[0];
    let pe_type = platform
        .pe_types()
        .iter()
        .next()
        .expect("platform has types");
    let fm = FaultModel::new(1e-3, 1e6, 1.0); // harsh orbital environment
    println!("DCT task-level metrics by CLR configuration (λ_SEU = 1e-3):");
    println!(
        "{:<34} {:>9} {:>9} {:>12} {:>9}",
        "config", "MinExT", "AvgExT", "ErrProb", "W (mW)"
    );
    for cfg in ConfigSpace::coarse().configs() {
        let m = TaskMetrics::evaluate(im, pe_type, cfg, &fm);
        println!(
            "{:<34} {:>9.1} {:>9.1} {:>12.2e} {:>9.1}",
            cfg.to_string(),
            m.min_ex_t,
            m.avg_ex_t,
            m.err_prob,
            m.power_mw
        );
    }

    // --- Map and schedule the whole encoder. ----------------------------
    let eval = Evaluator::new(&graph, &platform, fm);
    let mut mapping = Mapping::first_fit(&graph, &platform).expect("jpeg maps onto dac19");
    // Protect the most critical task (the source) with full TMR + retry.
    let crit = eval
        .criticalities()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("graph is non-empty");
    mapping.genes_mut()[crit].clr = ClrConfig::new(
        HwMethod::FullTmr,
        SswMethod::Retry { max_retries: 2 },
        AswMethod::Checksum,
    );

    let (metrics, schedule) = eval.evaluate_with_schedule(&mapping);
    println!("\nschedule (task: PE, start → end):");
    let mut entries: Vec<_> = schedule.entries().to_vec();
    entries.sort_by(|a, b| a.start.total_cmp(&b.start));
    for e in entries {
        println!(
            "  {:<4} PE{}  {:>7.1} → {:>7.1}",
            graph.task(e.task).name(),
            e.pe,
            e.start,
            e.end
        );
    }
    println!(
        "\nsystem metrics: makespan {:.1}, reliability {:.5}, energy {:.0}, peak power {:.0} mW",
        metrics.makespan, metrics.reliability, metrics.energy, metrics.peak_power
    );
}
