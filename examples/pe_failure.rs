//! Adapting to an internal change: a permanent PE failure (paper §4).
//!
//! The paper treats reduced resource availability as a separate instance
//! of the working scenario: when a PE dies, the system switches to the
//! design-point database explored for the degraded platform. This example
//! builds the full scenario suite (nominal + every single-PE failure),
//! explores each instance, and compares what the failure costs in
//! achievable QoS and average energy.
//!
//! Run with: `cargo run --release --example pe_failure`

use hybrid_clr::prelude::*;

fn main() {
    let platform = Platform::dac19();
    let graph = TgffGenerator::new(TgffConfig::with_tasks(20)).generate(99);
    let suite = ScenarioSuite::new(&platform, FaultModel::default()).with_pe_failures();
    let config = ScenarioConfig {
        ga: GaParams {
            population: 60,
            generations: 30,
            ..GaParams::default()
        },
        red: Some(RedConfig::default()),
        seed: 99,
        ..ScenarioConfig::default()
    };

    println!(
        "{:<16} {:>7} {:>12} {:>14} {:>12} {:>10}",
        "scenario", "points", "best_makespan", "best_reliability", "avg_energy", "avg_dRC"
    );
    for instance in suite.instances() {
        if !instance.supports(&graph) {
            println!(
                "{:<16} application not supported (orphaned tasks) — instance skipped",
                instance.kind().to_string()
            );
            continue;
        }
        let flow = instance.explore(&graph, &config);
        let db = flow.db(DbChoice::Red);
        let best_makespan = db
            .iter()
            .map(|p| p.metrics.makespan)
            .fold(f64::INFINITY, f64::min);
        let best_rel = db
            .iter()
            .map(|p| p.metrics.reliability)
            .fold(0.0f64, f64::max);
        let sim = SimConfig {
            total_cycles: 100_000.0,
            ..SimConfig::paper(5)
        };
        let run = flow.simulate_ura(DbChoice::Red, 0.5, &sim);
        println!(
            "{:<16} {:>7} {:>12.1} {:>14.5} {:>12.0} {:>10.2}",
            instance.kind().to_string(),
            db.len(),
            best_makespan,
            best_rel,
            run.avg_energy,
            run.avg_reconfig_cost
        );
    }
    println!(
        "\nLosing a PE shrinks the achievable front (higher best makespan) and \
         raises the adaptation pressure on the remaining resources — the degraded \
         instances are exactly what the run-time manager switches to on a permanent \
         fault."
    );
}
