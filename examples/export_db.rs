//! Exporting a BaseD design-point database through the text codec, ready
//! for auditing with `clr-verify db`, plus the binary snapshot container
//! the serving layer loads (`clr-verify snapshot`, `clr-serve replay`).
//!
//! Run with: `cargo run --release --example export_db [OUT_PATH] [SNAP_PATH]`
//! (defaults: `target/based.db`, `target/based.snap`).

use hybrid_clr::prelude::*;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/based.db".to_string());
    let snap_out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "target/based.snap".to_string());
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let config = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    let db = explore_based(
        &graph,
        &platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        &config,
        7,
    );
    std::fs::write(&out, db.to_text()).expect("write database file");
    println!("wrote {} point(s) to {out}", db.len());

    // Round-trip sanity before anyone audits the file.
    let back = DesignPointDb::from_text(&db.to_text()).expect("own output re-parses");
    assert_eq!(back, db, "text codec must round-trip");

    // The same database, published as a checksummed serving snapshot with
    // the descriptors a tenant needs to rebuild its runtime context. An
    // export is the root of its replication lineage: generation 0, the
    // fixed "export" publisher, every point stamped at generation 0 — the
    // CLRSNAP2 container `clr-store publish` and the hot-swap path build
    // on.
    let snapshot = LineageSnapshot::genesis(Snapshot::new("jpeg", "dac19", db), "export");
    snapshot.verify().expect("a genesis lineage verifies");
    snapshot.write_file(&snap_out).expect("write snapshot file");
    let reread = LineageSnapshot::read_file(&snap_out).expect("own snapshot re-decodes");
    assert_eq!(
        reread.snapshot().db(),
        snapshot.snapshot().db(),
        "snapshot codec must round-trip"
    );
    assert_eq!(reread.lineage().generation, 0, "exports are lineage roots");
    println!(
        "wrote snapshot {snap_out} (graph {}, platform {}, generation {})",
        snapshot.snapshot().graph_desc(),
        snapshot.snapshot().platform_desc(),
        snapshot.lineage().generation,
    );
}
