//! Exporting a BaseD design-point database through the text codec, ready
//! for auditing with `clr-verify db`, plus the binary snapshot container
//! the serving layer loads (`clr-verify snapshot`, `clr-serve replay`).
//!
//! Run with: `cargo run --release --example export_db [OUT_PATH] [SNAP_PATH]`
//! (defaults: `target/based.db`, `target/based.snap`).

use hybrid_clr::prelude::*;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/based.db".to_string());
    let snap_out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "target/based.snap".to_string());
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let config = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    let db = explore_based(
        &graph,
        &platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        &config,
        7,
    );
    std::fs::write(&out, db.to_text()).expect("write database file");
    println!("wrote {} point(s) to {out}", db.len());

    // Round-trip sanity before anyone audits the file.
    let back = DesignPointDb::from_text(&db.to_text()).expect("own output re-parses");
    assert_eq!(back, db, "text codec must round-trip");

    // The same database, published as a checksummed serving snapshot with
    // the descriptors a tenant needs to rebuild its runtime context.
    let snapshot = Snapshot::new("jpeg", "dac19", db);
    snapshot.write_file(&snap_out).expect("write snapshot file");
    let reread = Snapshot::read_file(&snap_out).expect("own snapshot re-decodes");
    assert_eq!(reread.db(), snapshot.db(), "snapshot codec must round-trip");
    println!(
        "wrote snapshot {snap_out} (graph {}, platform {})",
        snapshot.graph_desc(),
        snapshot.platform_desc()
    );
}
