//! Cross-crate integration tests: the full design-time → run-time
//! pipeline at small scale.

use hybrid_clr::prelude::*;
use hybrid_clr::{DbChoice, HybridFlow};

fn small_flow<'a>(
    graph: &'a TaskGraph,
    platform: &'a Platform,
    mode: ExplorationMode,
    seed: u64,
) -> HybridFlow<'a> {
    HybridFlow::builder(graph, platform)
        .ga(GaParams::small())
        .mode(mode)
        .red(RedConfig {
            ga: GaParams::small(),
            ..RedConfig::default()
        })
        .seed(seed)
        .run()
}

#[test]
fn full_pipeline_smoke() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(12)).generate(100);
    let platform = Platform::dac19();
    let flow = small_flow(&graph, &platform, ExplorationMode::Full, 100);

    assert!(!flow.based().is_empty());
    let red = flow.red().expect("red configured");
    assert!(red.len() >= flow.based().len());

    let r = flow.simulate_ura(DbChoice::Red, 0.5, &SimConfig::quick(1));
    assert!(r.events > 0);
    assert!(r.avg_energy > 0.0);
}

#[test]
fn every_stored_mapping_is_valid_and_fits_memory() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(15)).generate(101);
    let platform = Platform::dac19();
    let flow = small_flow(&graph, &platform, ExplorationMode::Full, 101);
    for p in flow.db(DbChoice::Red) {
        assert!(p.mapping.validate(&graph, &platform).is_ok());
        assert!(p.mapping.fits_memory(&graph, &platform));
    }
}

#[test]
fn stored_metrics_match_reevaluation() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(102);
    let platform = Platform::dac19();
    let flow = small_flow(&graph, &platform, ExplorationMode::Full, 102);
    let eval = Evaluator::new(&graph, &platform, FaultModel::default());
    for p in flow.based() {
        let m = eval.evaluate(&p.mapping);
        assert!((m.energy - p.metrics.energy).abs() < 1e-9);
        assert!((m.makespan - p.metrics.makespan).abs() < 1e-9);
        assert!((m.reliability - p.metrics.reliability).abs() < 1e-12);
    }
}

#[test]
fn design_time_is_deterministic_end_to_end() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(103);
    let platform = Platform::dac19();
    let a = small_flow(&graph, &platform, ExplorationMode::Csp, 103);
    let b = small_flow(&graph, &platform, ExplorationMode::Csp, 103);
    assert_eq!(a.based().len(), b.based().len());
    for (x, y) in a.db(DbChoice::Red).iter().zip(b.db(DbChoice::Red)) {
        assert_eq!(x.metrics, y.metrics);
        assert_eq!(x.origin, y.origin);
    }
}

#[test]
fn csp_front_is_non_dominated_in_qos_plane() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(12)).generate(104);
    let platform = Platform::dac19();
    let flow = small_flow(&graph, &platform, ExplorationMode::Csp, 104);
    let based = flow.based();
    // BaseD in CSP mode is exactly its own QoS Pareto front.
    assert_eq!(based.qos_pareto_indices().len(), based.len());
}

#[test]
fn red_extras_never_dominate_pareto_seeds() {
    // ReD's additional points are *non-dominant*: if one dominated a
    // Pareto point, the base exploration missed it — possible with tiny GA
    // budgets, but the database invariant we rely on is weaker and always
    // holds: extras must be distinct from every Pareto point.
    let graph = TgffGenerator::new(TgffConfig::with_tasks(12)).generate(105);
    let platform = Platform::dac19();
    let flow = small_flow(&graph, &platform, ExplorationMode::Csp, 105);
    let red = flow.red().expect("red configured");
    for (i, a) in red.iter().enumerate() {
        for (j, b) in red.iter().enumerate() {
            if i != j {
                assert!(
                    a.metrics != b.metrics,
                    "duplicate stored points {i} and {j}"
                );
            }
        }
    }
}

#[test]
fn hardware_only_space_restricts_configs() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(106);
    let platform = Platform::dac19();
    let flow = HybridFlow::builder(&graph, &platform)
        .ga(GaParams::small())
        .config_space(ConfigSpace::hw_only())
        .seed(106)
        .run();
    for p in flow.based() {
        for gene in p.mapping.genes() {
            assert_eq!(gene.clr.ssw, SswMethod::None);
            assert_eq!(gene.clr.asw, AswMethod::None);
        }
    }
}
