//! Cross-crate behavioural tests of the run-time policies over real
//! explored databases.

use hybrid_clr::prelude::*;
use hybrid_clr::{DbChoice, HybridFlow};

fn flow<'a>(graph: &'a TaskGraph, platform: &'a Platform, seed: u64) -> HybridFlow<'a> {
    HybridFlow::builder(graph, platform)
        .ga(GaParams::small())
        .red(RedConfig {
            ga: GaParams::small(),
            ..RedConfig::default()
        })
        .storage_limit(16)
        .seed(seed)
        .run()
}

#[test]
fn p_rc_sweep_is_monotone_at_the_extremes() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(15)).generate(200);
    let platform = Platform::dac19();
    let f = flow(&graph, &platform, 200);
    let sim = SimConfig::quick(1);
    let lazy = f.simulate_ura(DbChoice::Red, 0.0, &sim);
    let eager = f.simulate_ura(DbChoice::Red, 1.0, &sim);
    assert!(lazy.total_reconfig_cost <= eager.total_reconfig_cost + 1e-9);
    assert!(eager.avg_energy <= lazy.avg_energy + 1e-9);
}

#[test]
fn policies_only_choose_feasible_points() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(12)).generate(201);
    let platform = Platform::dac19();
    let f = flow(&graph, &platform, 201);
    let ctx = f.context(DbChoice::Red);
    let db = f.db(DbChoice::Red);

    // A spec admitting exactly the most reliable point.
    let best_rel = db
        .iter()
        .map(|p| p.metrics.reliability)
        .fold(0.0f64, f64::max);
    let spec = QosSpec::new(f64::INFINITY, best_rel - 1e-12);

    let ura = UraPolicy::new(0.5).unwrap();
    if let Some(choice) = ura.select(&ctx, 0, &spec) {
        assert!(db.get(choice).unwrap().satisfies(&spec));
    }
    let hv = HvPolicy::new();
    if let Some(choice) = hv.select(&ctx, &spec) {
        assert!(db.get(choice).unwrap().satisfies(&spec));
    }
}

#[test]
fn aura_with_gamma_zero_replays_ura_trajectory() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(12)).generate(202);
    let platform = Platform::dac19();
    let f = flow(&graph, &platform, 202);
    let ctx = f.context(DbChoice::Red);
    let qos = f.qos_model(DbChoice::Red);
    let sim = SimConfig::quick(3);

    let mut ura = UraPolicy::new(0.4).unwrap();
    let a = simulate(&ctx, &mut ura, &qos, &sim);
    let mut agent = AuraAgent::new(ctx.len(), 0.4, 0.0, 0.1).unwrap();
    let b = simulate(&ctx, &mut agent, &qos, &sim);
    assert_eq!(a.reconfigurations, b.reconfigurations);
    assert!((a.total_reconfig_cost - b.total_reconfig_cost).abs() < 1e-9);
    assert!((a.avg_energy - b.avg_energy).abs() < 1e-9);
}

#[test]
fn hv_baseline_pays_at_least_as_much_as_cost_aware_ura() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(15)).generate(203);
    let platform = Platform::dac19();
    let f = flow(&graph, &platform, 203);
    let ctx = f.context(DbChoice::Red);
    let qos = f.qos_model(DbChoice::Red);
    let sim = SimConfig::quick(4);

    let mut hv = HvPolicy::new();
    let baseline = simulate(&ctx, &mut hv, &qos, &sim);
    let mut ura = UraPolicy::new(0.0).unwrap();
    let frugal = simulate(&ctx, &mut ura, &qos, &sim);
    assert!(frugal.total_reconfig_cost <= baseline.total_reconfig_cost + 1e-9);
}

#[test]
fn simulation_scales_events_with_horizon() {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(204);
    let platform = Platform::dac19();
    let f = flow(&graph, &platform, 204);
    let short = f.simulate_ura(
        DbChoice::Red,
        0.5,
        &SimConfig {
            total_cycles: 10_000.0,
            ..SimConfig::paper(5)
        },
    );
    let long = f.simulate_ura(
        DbChoice::Red,
        0.5,
        &SimConfig {
            total_cycles: 40_000.0,
            ..SimConfig::paper(5)
        },
    );
    assert!(long.events > short.events * 2);
}

#[test]
fn scenario_suite_integrates_with_runtime() {
    use hybrid_clr::core::scenario::{ScenarioConfig, ScenarioSuite};
    let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(205);
    let platform = Platform::dac19();
    let suite = ScenarioSuite::new(&platform, FaultModel::default()).with_pe_failures();
    let config = ScenarioConfig {
        ga: GaParams::small(),
        red: None,
        seed: 205,
        ..ScenarioConfig::default()
    };
    // Every *viable* degraded instance still explores and simulates; a
    // failure can orphan tasks whose only implementations target the dead
    // PE's type, and `supports` reports exactly that.
    let mut viable = 0;
    for instance in suite.instances() {
        if !instance.supports(&graph) {
            continue;
        }
        viable += 1;
        let r = instance.evaluate(&graph, &config, 0.5, &SimConfig::quick(6));
        assert!(r.events > 0, "{}", instance.kind());
    }
    assert!(viable >= 1, "at least the nominal instance is viable");
}
