//! Cross-crate validation: the analytical system-level reliability of a
//! mapping (Table 3, Eq. 2) against a whole-application Monte-Carlo fault
//! injection composed from per-task injectors.

use hybrid_clr::prelude::*;
use hybrid_clr::reliability::FaultInjector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Empirically estimates `F_app = Σ ζ_t (1 − ErrProb_t)` by injecting
/// every task `trials` times and combining the per-task escape rates with
/// the evaluator's criticality weights.
fn injected_f_app(
    graph: &TaskGraph,
    platform: &Platform,
    mapping: &Mapping,
    fm: FaultModel,
    trials: u32,
    seed: u64,
) -> f64 {
    let eval = Evaluator::new(graph, platform, fm);
    graph
        .task_ids()
        .zip(eval.criticalities())
        .map(|(t, &zeta)| {
            let gene = mapping.gene(t);
            let im = graph.implementation(t, gene.impl_id);
            let pe_type = platform.type_of(gene.pe);
            let injector = FaultInjector::new(im, pe_type, gene.clr, fm);
            let est = injector.estimate(trials, seed ^ (t.index() as u64) << 16);
            zeta * (1.0 - est.err_prob)
        })
        .sum()
}

#[test]
fn system_level_reliability_matches_injection() {
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let fm = FaultModel::new(2e-3, 1e6, 1.0);
    let eval = Evaluator::new(&graph, &platform, fm);

    // Both an unprotected and a CLR-protected mapping must agree.
    let bare = Mapping::first_fit(&graph, &platform).unwrap();
    let mut protected = bare.clone();
    for gene in protected.genes_mut() {
        gene.clr = ClrConfig::new(
            HwMethod::PartialTmr,
            SswMethod::Retry { max_retries: 2 },
            AswMethod::Checksum,
        );
    }

    for (label, mapping) in [("bare", &bare), ("protected", &protected)] {
        let analytic = eval.evaluate(mapping).reliability;
        let injected = injected_f_app(&graph, &platform, mapping, fm, 30_000, 99);
        assert!(
            (analytic - injected).abs() < 0.01,
            "{label}: analytic {analytic} vs injected {injected}"
        );
    }
}

#[test]
fn protection_ordering_survives_injection() {
    // The DSE's decisions rest on the analytical ordering of
    // configurations; check the ordering empirically at the system level.
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let fm = FaultModel::new(2e-3, 1e6, 1.0);

    let bare = Mapping::first_fit(&graph, &platform).unwrap();
    let mut protected = bare.clone();
    for gene in protected.genes_mut() {
        gene.clr = ClrConfig::new(
            HwMethod::FullTmr,
            SswMethod::Retry { max_retries: 2 },
            AswMethod::Checksum,
        );
    }
    let f_bare = injected_f_app(&graph, &platform, &bare, fm, 20_000, 7);
    let f_prot = injected_f_app(&graph, &platform, &protected, fm, 20_000, 7);
    assert!(
        f_prot > f_bare,
        "protection must raise empirical reliability: {f_prot} vs {f_bare}"
    );
}

#[test]
fn injection_is_deterministic_across_the_stack() {
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let fm = FaultModel::new(1e-3, 1e6, 1.0);
    let m = Mapping::first_fit(&graph, &platform).unwrap();
    let a = injected_f_app(&graph, &platform, &m, fm, 5_000, 3);
    let b = injected_f_app(&graph, &platform, &m, fm, 5_000, 3);
    assert_eq!(a, b);
    // Unused RNG seed sanity (exercise StdRng path used by the injector).
    let _ = StdRng::seed_from_u64(0);
}
