//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! stand-in.
//!
//! The real traits are blanket-implemented in the `serde` stub crate, so
//! these derives only need to *exist* for `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` annotations to parse; they emit no code. The
//! `serde` helper attribute is registered so field/container attributes
//! (e.g. `#[serde(default)]`) parse as they would with the real crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
