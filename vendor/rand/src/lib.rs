//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, dependency-free reimplementation of the pieces it
//! relies on: [`RngCore`], [`Rng`], [`SeedableRng`] and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64). The statistical
//! quality is more than adequate for the stochastic search and Monte-Carlo
//! simulation performed here; the stream differs from upstream `rand`, so
//! seeded runs are reproducible *within* this workspace but not against
//! binaries built with the real crate.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types that [`Rng::gen`] can produce directly.
pub trait Standard: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[low, high)` (`high` inclusive iff
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) + i128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo bias is < 2^-64 per draw for the spans used here.
                let r = (u128::from(rng.next_u64()) % span as u128) as i128;
                (lo + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(low < high || (inclusive && low <= high),
                    "cannot sample from an empty range");
                let u = <$t as Standard>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 seed expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_equal_seeds() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: usize = rng.gen_range(3..17);
                assert!((3..17).contains(&x));
                let y: f64 = rng.gen_range(-2.0..2.0);
                assert!((-2.0..2.0).contains(&y));
                let z: usize = rng.gen_range(1..=3);
                assert!((1..=3).contains(&z));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(9);
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }

        #[test]
        fn standard_f64_in_unit_interval() {
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..1000 {
                let u: f64 = rng.gen();
                assert!((0.0..1.0).contains(&u));
            }
        }
    }
}
