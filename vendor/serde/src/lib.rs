//! Offline stand-in for the subset of the `serde` API this workspace uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` as forward
//! compatibility for future persistence work — no serializer is invoked
//! anywhere. This stub therefore provides the two marker traits (blanket
//! implemented for every type) and re-exports no-op derive macros, so the
//! existing `#[derive(Serialize, Deserialize)]` annotations compile
//! unchanged without network access to crates.io. Actual artifact
//! persistence is handled by the explicit text codecs in `clr-dse`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
