//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! Without crates.io access the real statistical harness is unavailable,
//! so this stub turns every bench into a timed smoke run: each
//! `Bencher::iter` body executes a handful of times and the wall-clock
//! mean is printed. That keeps `cargo bench` (and `cargo test --benches`)
//! compiling and exercising the exact kernel entry points, which is what
//! the repo's CI gate needs; swap the real crate back in for publishable
//! numbers.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Number of timed iterations per bench in the smoke runner.
const SMOKE_ITERS: u32 = 3;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The bench context handed to each target function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the nominal sample size (recorded but not used by the smoke
    /// runner).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// Runs one benchmark body and records its mean wall-clock time.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a few iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..SMOKE_ITERS {
            hint::black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(SMOKE_ITERS);
    }

    fn report(&self, id: &str) {
        println!("bench {id}: {:.1} ns/iter (smoke run)", self.nanos_per_iter);
    }
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    #[must_use]
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample size (recorded but not used by the smoke
    /// runner).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a bench group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags (e.g.
            // `--bench`, `--test`) that the smoke runner can ignore.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(10);
        let mut runs = 0u32;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, SMOKE_ITERS);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(5), &5usize, |b, &n| {
            b.iter(|| seen = n);
        });
        group.finish();
        assert_eq!(seen, 5);
    }
}
