//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! Supports the `proptest!` macro with `ident in strategy` bindings, the
//! `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute,
//! `prop_assert!`/`prop_assert_eq!`, range strategies over the numeric
//! types, and `proptest::collection::vec`. Cases are generated from a
//! deterministic per-case RNG (no shrinking: a failing case reports its
//! inputs via the panic message instead).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner configuration (`proptest::test_runner::Config` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator (`proptest::strategy::Strategy` analogue).
///
/// Strategies here are plain samplers: no value tree, no shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Collection strategies (`proptest::collection` analogue).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec()`]: an exact length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Creates a strategy producing vectors whose elements come from
    /// `element` and whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-property case runner used by the [`proptest!`]
/// expansion. Not part of the upstream API surface.
#[derive(Debug)]
pub struct CaseRunner {
    config: ProptestConfig,
    name_hash: u64,
}

impl CaseRunner {
    /// Creates a runner for the property named `name`.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the property name decorrelates sibling properties.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            config,
            name_hash: h,
        }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for case `case`.
    #[must_use]
    pub fn rng(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.name_hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9)))
    }
}

/// Defines property tests: each `#[test] fn name(x in strategy, ...)`
/// item expands to a plain `#[test]` that runs the body over generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let runner = $crate::CaseRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut case_rng = runner.rng(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut case_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` inside a property (no shrinking; fails the whole test).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property (no shrinking; fails the whole test).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The usual glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in -1.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }
    }

    proptest! {
        #[test]
        fn vec_lengths_respect_spec(
            v in collection::vec(0.0f64..1.0, 3..7),
            w in collection::vec(collection::vec(0u64..5, 2), 1..4),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!((1..4).contains(&w.len()));
            for inner in &w {
                prop_assert_eq!(inner.len(), 2);
            }
        }
    }
}
