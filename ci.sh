#!/usr/bin/env bash
# Local CI gate for the hybrid-clr workspace.
#
# Runs, in order:
#   1. cargo fmt --check           — formatting wall
#   2. cargo clippy -D warnings    — workspace lint wall (all targets),
#                                    then cargo doc with RUSTDOCFLAGS
#                                    "-D warnings" so broken intra-doc
#                                    links fail like any other lint
#   3. cargo test -q, twice        — full test suite at CLR_THREADS=1 and
#                                    CLR_THREADS=4: the parallel evaluation
#                                    layer must be bit-identical at every
#                                    thread count, so a divergence (or a
#                                    thread-count-sensitive test) fails here
#   4. clr-verify all              — cross-layer model audit of the bundled
#                                    presets (platforms, generators, HEFT,
#                                    BaseD/ReD database, dRC matrix, policies,
#                                    scenario suite)
#   5. clr-verify tgff <examples>  — audit of the example TGFF inputs
#   6. export_db + clr-verify db   — text-codec round-trip of a real BaseD
#                                    database through the file-level auditor;
#                                    the database is exported once per thread
#                                    count and byte-compared, then the
#                                    parallel-run export is audited
#   7. instrumented smoke          — table4 at the quick scale with
#                                    CLR_OBS=json, once per thread count:
#                                    the deterministic journal sections must
#                                    be byte-identical and pass the
#                                    clr-verify journal lints (CLR05x)
#   8. clr-serve replay smoke      — publish the exported database as a
#                                    snapshot (clr-verify snapshot, CLR06x),
#                                    generate a seeded multi-tenant trace and
#                                    replay it at CLR_THREADS=1 and 8: the
#                                    decision CSVs and journals must be
#                                    byte-identical, and the journal must
#                                    pass the CLR05x lints
#   9. clr-chaos campaign smoke    — audit a seeded fault plan (clr-verify
#                                    plan, CLR070), then run a reduced chaos
#                                    campaign over the preset fleet at
#                                    CLR_THREADS=1 and 8: the survival CSVs
#                                    and journals must be byte-identical and
#                                    pass the campaign lints (CLR071/072)
#                                    plus the CLR05x journal lints
#  10. clr-served daemon smoke    — wire-encode the step-8 trace into a
#                                    CLRWIRE1 frame stream, pump it through
#                                    the resident clr-served daemon (file
#                                    stdin/stdout), wire-decode the response
#                                    frames and byte-compare against the
#                                    batch replay's decisions.csv: the
#                                    incremental engine and the batch path
#                                    must be the same code path; then flip
#                                    one payload byte and assert the daemon
#                                    rejects the stream with a checksum
#                                    error (nonzero exit)
#  11. clr-serve stats smoke       — splice a CLRWIRE1 stats-query frame
#                                    into the step-10 request stream, run
#                                    the daemon at CLR_THREADS=1 and 8 and
#                                    byte-compare the schema-2 fleet
#                                    snapshots; the snapshot must pass the
#                                    clr-verify stats lints (CLR066-068)
#                                    and render through stats --json,
#                                    the Prometheus exposition, and top
#  12. bench artifact schema       — run telemetry_bench at the quick
#                                    scale and check every committed
#                                    results/BENCH_*.json carries the
#                                    schema-versioned shape (schema,
#                                    commit, per-group events_per_sec)
#  13. clr-store replication       — publish the step-6 database as
#                                    lineage generation 0, mutate one
#                                    design point and publish generation
#                                    1, pull the delta into a replica
#                                    (the changeset must be a small
#                                    fraction of the full container),
#                                    GC the replica, audit both logs
#                                    with the CLR08x store lints, then
#                                    seal generation 1 as a CLRSNAP2
#                                    rollout and hot-swap it into tenant
#                                    cam mid-stream through clr-served
#                                    at CLR_THREADS=1 and 8: response
#                                    frames and obs journals must be
#                                    byte-identical, the drain must
#                                    report cam at generation 1, and the
#                                    journal must carry the db_swap
#                                    event and pass the CLR05x lints
#  14. clr-learn online smoke      — seat an A/B learn fleet (cam pinned
#                                    to the treatment arm, nav to control
#                                    via the seeded assignment) on the
#                                    step-8 snapshot, splice a regime
#                                    shift (two differently-seeded trace
#                                    halves) around a mid-stream Promote
#                                    frame for cam, and drain through
#                                    clr-served with --learn-dir at
#                                    CLR_THREADS=1 and 8: response
#                                    frames, obs journals and CLRLRN1
#                                    checkpoints must be byte-identical,
#                                    the journal must carry shadow and
#                                    promote events and pass the CLR05x
#                                    lints, checkpoints and journal must
#                                    pass the CLR09x learn lints, the
#                                    A/B report must show cam serving
#                                    live post-promote, and learn_bench
#                                    must emit the schema-shaped
#                                    results/BENCH_learn.json
#  15. clr-audit (source lints)    — workspace-wide CLR1xx source audit:
#                                    wall-clock reads, unordered containers,
#                                    partial_cmp float sorts, unseeded RNGs,
#                                    raw spawns, panicking decision paths,
#                                    lossy codec casts, deprecated APIs and
#                                    annotation hygiene; any deny finding
#                                    fails the gate, and the JSON report is
#                                    left in target/ next to the journals
#
# Any failure aborts the script (set -e); clr-verify exits nonzero on
# deny-level findings, so a model regression fails CI like a test would.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

step "cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

step "cargo test -q (CLR_THREADS=1)"
CLR_THREADS=1 cargo test --workspace -q

step "cargo test -q (CLR_THREADS=4)"
CLR_THREADS=4 cargo test --workspace -q

step "build clr-verify + examples"
cargo build --release --quiet -p clr-verify --bin clr-verify
cargo build --release --quiet --example export_db
VERIFY=target/release/clr-verify

step "clr-verify all (bundled scenario presets)"
"$VERIFY" all

step "clr-verify tgff (example TGFF inputs)"
"$VERIFY" tgff examples/data/*.tgff

step "clr-verify db (BaseD database exported from a parallel run)"
DB_SERIAL=target/ci-based-t1.db
DB_PARALLEL=target/ci-based-t4.db
CLR_THREADS=1 ./target/release/examples/export_db "$DB_SERIAL"
CLR_THREADS=4 ./target/release/examples/export_db "$DB_PARALLEL"
cmp "$DB_SERIAL" "$DB_PARALLEL" \
  || { echo "serial and parallel DSE runs diverged"; exit 1; }
"$VERIFY" db "$DB_PARALLEL"

step "instrumented smoke (CLR_OBS=json, journal byte-compare + lint)"
cargo build --release --quiet -p clr-experiments --bin table4
JOURNAL=results/table4.obs.jsonl
JOURNAL_SERIAL=target/ci-table4-t1.obs.jsonl
# The smoke runs at the quick scale; shelter the committed reduced-scale
# CSV so CI leaves the checkout clean.
CSV_BACKUP=
if [ -f results/table4.csv ]; then
  CSV_BACKUP=target/ci-table4.csv.bak
  cp results/table4.csv "$CSV_BACKUP"
fi
CLR_QUICK=1 CLR_OBS=json CLR_THREADS=1 ./target/release/table4 >/dev/null
mv "$JOURNAL" "$JOURNAL_SERIAL"
CLR_QUICK=1 CLR_OBS=json CLR_THREADS=8 ./target/release/table4 >/dev/null
cmp "$JOURNAL_SERIAL" "$JOURNAL" \
  || { echo "deterministic journal sections diverged across thread counts"; exit 1; }
"$VERIFY" journal "$JOURNAL"
if [ -n "$CSV_BACKUP" ]; then
  mv "$CSV_BACKUP" results/table4.csv
fi

step "clr-serve replay (multi-tenant trace, thread-count byte-compare)"
cargo build --release --quiet -p clr-serve --bin clr-serve
SERVE=target/release/clr-serve
SNAP=target/ci-based.snap
"$SERVE" snapshot "$DB_PARALLEL" "$SNAP" --graph jpeg --platform dac19
"$VERIFY" snapshot "$SNAP"
TRACE=target/ci-serve-trace.jsonl
FLEET=(--tenant "cam=$SNAP@ura:0.8" --tenant "nav=$SNAP@aura:0.5,0.6,0.1" --tenant "audio=$SNAP@hv")
"$SERVE" gen-trace --out "$TRACE" --seed 11 --cycles 20000 --mean-gap 100 "${FLEET[@]}"
OUT1=target/ci-serve-t1
OUT8=target/ci-serve-t8
rm -rf "$OUT1" "$OUT8"
CLR_THREADS=1 "$SERVE" replay --trace "$TRACE" --out-dir "$OUT1" "${FLEET[@]}" 2>/dev/null
CLR_THREADS=8 "$SERVE" replay --trace "$TRACE" --out-dir "$OUT8" "${FLEET[@]}" 2>/dev/null
cmp "$OUT1/decisions.csv" "$OUT8/decisions.csv" \
  || { echo "decision outputs diverged across thread counts"; exit 1; }
cmp "$OUT1/replay.obs.jsonl" "$OUT8/replay.obs.jsonl" \
  || { echo "replay journals diverged across thread counts"; exit 1; }
"$VERIFY" journal "$OUT8/replay.obs.jsonl"

step "clr-chaos campaign (fault-injection survival, thread-count byte-compare)"
cargo build --release --quiet -p clr-chaos-cli --bin clr-chaos
CHAOS=target/release/clr-chaos
PLAN=target/ci-chaos.plan
"$CHAOS" plan --seed 7 --all 0.05 --out "$PLAN"
"$VERIFY" plan "$PLAN"
CH1=target/ci-chaos-t1
CH8=target/ci-chaos-t8
rm -rf "$CH1" "$CH8"
"$CHAOS" campaign --out-dir "$CH1" --seed 7 --cycles 6000 --threads 1 2>/dev/null
"$CHAOS" campaign --out-dir "$CH8" --seed 7 --cycles 6000 --threads 8 2>/dev/null
cmp "$CH1/campaign.csv" "$CH8/campaign.csv" \
  || { echo "campaign survival CSVs diverged across thread counts"; exit 1; }
cmp "$CH1/campaign.obs.jsonl" "$CH8/campaign.obs.jsonl" \
  || { echo "campaign journals diverged across thread counts"; exit 1; }
"$VERIFY" campaign "$CH8/campaign.csv" "$CH8/campaign.obs.jsonl"

step "clr-served daemon (wire round-trip vs batch replay + corruption gate)"
cargo build --release --quiet -p clr-serve --bin clr-served
SERVED=target/release/clr-served
FRAMES=target/ci-serve-frames.bin
RESPONSES=target/ci-serve-responses.bin
SERVED_LOG=target/ci-served.log
"$SERVE" wire-encode --trace "$TRACE" --out "$FRAMES"
CLR_THREADS=8 "$SERVED" "${FLEET[@]}" --batch 64 \
  < "$FRAMES" > "$RESPONSES" 2> "$SERVED_LOG"
grep -q "drained" "$SERVED_LOG" \
  || { cat "$SERVED_LOG"; echo "clr-served did not report a clean drain"; exit 1; }
DAEMON_CSV=target/ci-served-decisions.csv
"$SERVE" wire-decode --in "$RESPONSES" --tenants cam,nav,audio > "$DAEMON_CSV"
cmp "$OUT8/decisions.csv" "$DAEMON_CSV" \
  || { echo "daemon responses diverged from batch replay decisions"; exit 1; }
# Corruption gate: the first frame's payload starts with seq=1 (u64 LE),
# so byte 33 is 0x00 — overwriting it with 0xff guarantees a checksum
# mismatch the daemon must refuse to serve past.
CORRUPT=target/ci-serve-frames-corrupt.bin
cp "$FRAMES" "$CORRUPT"
printf '\xff' | dd of="$CORRUPT" bs=1 seek=33 conv=notrunc status=none
if "$SERVED" "${FLEET[@]}" < "$CORRUPT" > /dev/null 2> "$SERVED_LOG"; then
  echo "clr-served accepted a corrupt frame stream"; exit 1
fi
grep -qi "checksum" "$SERVED_LOG" \
  || { cat "$SERVED_LOG"; echo "corrupt-stream failure did not mention the checksum"; exit 1; }

step "clr-serve stats (live Stats frame, thread-count byte-compare + CLR06x lints)"
STATS_REQ=target/ci-stats-request.bin
STATS_STREAM=target/ci-stats-stream.bin
"$SERVE" stats --request-out "$STATS_REQ" --flight true --seq 90001 2>/dev/null
# The step-10 stream ends with a header-only shutdown frame (32 bytes);
# splice the stats query just before it so the daemon answers, then drains.
head -c -32 "$FRAMES" > "$STATS_STREAM"
cat "$STATS_REQ" >> "$STATS_STREAM"
tail -c 32 "$FRAMES" >> "$STATS_STREAM"
STATS_T1=target/ci-stats-resp-t1.bin
STATS_T8=target/ci-stats-resp-t8.bin
CLR_THREADS=1 "$SERVED" "${FLEET[@]}" --batch 64 \
  < "$STATS_STREAM" > "$STATS_T1" 2>/dev/null
CLR_THREADS=8 "$SERVED" "${FLEET[@]}" --batch 64 \
  < "$STATS_STREAM" > "$STATS_T8" 2>/dev/null
SNAP1=target/ci-stats-t1.json
SNAP8=target/ci-stats-t8.json
"$SERVE" stats --in "$STATS_T1" --json > "$SNAP1"
"$SERVE" stats --in "$STATS_T8" --json > "$SNAP8"
cmp "$SNAP1" "$SNAP8" \
  || { echo "fleet snapshots diverged across thread counts"; exit 1; }
"$VERIFY" stats "$SNAP8"
"$SERVE" stats --snapshot "$SNAP8" | grep -q "^clr_serve_events_total" \
  || { echo "Prometheus exposition missing clr_serve_events_total"; exit 1; }
"$SERVE" top --snapshot "$SNAP8" | grep -q "^cam " \
  || { echo "clr-serve top did not render tenant cam"; exit 1; }

step "bench artifact schema (results/BENCH_*.json)"
cargo build --release --quiet -p clr-experiments --bin telemetry_bench
BENCH_BACKUP=target/ci-bench-telemetry.json.bak
cp results/BENCH_telemetry.json "$BENCH_BACKUP" 2>/dev/null || BENCH_BACKUP=
CLR_QUICK=1 ./target/release/telemetry_bench >/dev/null 2>&1
for f in results/BENCH_*.json; do
  for key in '"schema"' '"commit"' '"events_per_sec"'; do
    grep -q "$key" "$f" \
      || { echo "$f missing the $key field"; exit 1; }
  done
done
if [ -n "$BENCH_BACKUP" ]; then
  mv "$BENCH_BACKUP" results/BENCH_telemetry.json
fi

step "clr-store replication (lineage publish, delta pull, GC, live SwapDb)"
cargo build --release --quiet -p clr-store --bin clr-store
cargo build --release --quiet -p clr-experiments --bin store_bench
STORE_BIN=target/release/clr-store
STORE_LOG=target/ci-store.log
REPLICA_LOG=target/ci-store-replica.log
rm -f "$STORE_LOG" "$REPLICA_LOG"
# Generation 0: the exported BaseD database becomes a lineage root,
# replicated to a second store by full-snapshot pull.
"$STORE_BIN" publish "$STORE_LOG" "$DB_PARALLEL" --publisher ci --graph jpeg --platform dac19
"$STORE_BIN" pull "$STORE_LOG" "$REPLICA_LOG"
# Generation 1: mutate one design point's metrics and republish; the
# replica pulls the delta, which must ride a changeset, not a snapshot.
DB_MUT=target/ci-based-mut.db
awk '/^metrics / && !done {$2="999.5"; done=1} {print}' "$DB_PARALLEL" > "$DB_MUT"
"$STORE_BIN" publish "$STORE_LOG" "$DB_MUT" --publisher ci --graph jpeg --platform dac19
PULL_LOG=target/ci-store-pull.log
"$STORE_BIN" pull "$STORE_LOG" "$REPLICA_LOG" --mode delta | tee "$PULL_LOG"
grep -q "via changeset" "$PULL_LOG" \
  || { echo "delta pull did not ship a changeset"; exit 1; }
"$STORE_BIN" verify "$STORE_LOG"
"$STORE_BIN" verify "$REPLICA_LOG"
"$STORE_BIN" log "$STORE_LOG"
CS_FILE=target/ci-store.changeset
"$STORE_BIN" changeset "$STORE_LOG" --from 0 --to 1 --out "$CS_FILE"
"$VERIFY" store "$STORE_LOG" "$CS_FILE"
# Node-local GC on the replica (keep the head only): the CLR08x lints
# must still pass — collection below the floor is not a lineage hole.
"$STORE_BIN" gc "$REPLICA_LOG" --keep 0
"$VERIFY" store "$REPLICA_LOG"
# Seal generation 1 back out as a CLRSNAP2 rollout artifact and audit
# it through the same snapshot lints a v1 export gets.
SWAP_SNAP=target/ci-rollout.snap
"$STORE_BIN" export "$STORE_LOG" "$SWAP_SNAP" --generation 1
"$VERIFY" snapshot "$SWAP_SNAP"
# Mid-stream hot swap: split the step-8 trace in half, splice a SwapDb
# frame for tenant cam between the halves, and serve the spliced stream
# at CLR_THREADS=1 and 8. Response frames and obs journals must be
# byte-identical, the drain must seat cam at generation 1, and the
# journal must carry the db_swap event in stream position.
SWAP_REQ=target/ci-swap-request.bin
"$SERVE" swap-db --request-out "$SWAP_REQ" --tenant cam --path "$SWAP_SNAP" \
  --expect 1 --seq 90002 2>/dev/null
TRACE_LINES=$(wc -l < "$TRACE")
MID=$(( (TRACE_LINES - 1) / 2 ))
TRACE_A=target/ci-swap-trace-a.jsonl
TRACE_B=target/ci-swap-trace-b.jsonl
head -n $((MID + 1)) "$TRACE" > "$TRACE_A"
head -n 1 "$TRACE" > "$TRACE_B"
tail -n +$((MID + 2)) "$TRACE" >> "$TRACE_B"
FRAMES_A=target/ci-swap-frames-a.bin
FRAMES_B=target/ci-swap-frames-b.bin
"$SERVE" wire-encode --trace "$TRACE_A" --out "$FRAMES_A" --shutdown false
"$SERVE" wire-encode --trace "$TRACE_B" --out "$FRAMES_B"
SWAP_STREAM=target/ci-swap-stream.bin
cat "$FRAMES_A" "$SWAP_REQ" "$FRAMES_B" > "$SWAP_STREAM"
SWAP_T1=target/ci-swap-resp-t1.bin
SWAP_T8=target/ci-swap-resp-t8.bin
SWAP_OBS1=target/ci-swap-obs-t1
SWAP_OBS8=target/ci-swap-obs-t8
rm -rf "$SWAP_OBS1" "$SWAP_OBS8"
SWAP_LOG=target/ci-swap-served.log
CLR_THREADS=1 "$SERVED" "${FLEET[@]}" --batch 64 --obs-dir "$SWAP_OBS1" \
  < "$SWAP_STREAM" > "$SWAP_T1" 2>/dev/null
CLR_THREADS=8 "$SERVED" "${FLEET[@]}" --batch 64 --obs-dir "$SWAP_OBS8" \
  < "$SWAP_STREAM" > "$SWAP_T8" 2> "$SWAP_LOG"
cmp "$SWAP_T1" "$SWAP_T8" \
  || { echo "swap response frames diverged across thread counts"; exit 1; }
cmp "$SWAP_OBS1/served.obs.jsonl" "$SWAP_OBS8/served.obs.jsonl" \
  || { echo "swap journals diverged across thread counts"; exit 1; }
grep -q '"type":"db_swap"' "$SWAP_OBS8/served.obs.jsonl" \
  || { echo "journal is missing the db_swap event"; exit 1; }
grep -q "tenant cam (gen 1)" "$SWAP_LOG" \
  || { cat "$SWAP_LOG"; echo "drain did not seat cam at generation 1"; exit 1; }
"$VERIFY" journal "$SWAP_OBS8/served.obs.jsonl"
# The delta-sync economics artifact: quick-scale run, then check the
# committed full-scale numbers keep the schema shape (step 12 greps).
STORE_BENCH_BACKUP=target/ci-bench-store.json.bak
cp results/BENCH_store.json "$STORE_BENCH_BACKUP" 2>/dev/null || STORE_BENCH_BACKUP=
CLR_QUICK=1 ./target/release/store_bench >/dev/null 2>&1
for key in '"schema"' '"commit"' '"events_per_sec"'; do
  grep -q "$key" results/BENCH_store.json \
    || { echo "results/BENCH_store.json missing the $key field"; exit 1; }
done
if [ -n "$STORE_BENCH_BACKUP" ]; then
  mv "$STORE_BENCH_BACKUP" results/BENCH_store.json
fi

step "clr-learn online serve (A/B fleet, mid-stream Promote, CLR09x gate)"
# cam seed 1 → treatment (serves the online shadow table), nav seed 5 →
# control (serves the frozen live incumbent): the seeded assignment is a
# pure function of (seed, name), so the arms are pinned by construction.
LEARN_FLEET=(--tenant "cam=$SNAP@aura+learn:0.5,0.6,0.2,0.05@1"
             --tenant "nav=$SNAP@aura+learn:0.5,0.6,0.2,0.05@5"
             --tenant "audio=$SNAP@aura:0.5,0.6,0.1")
# A regime shift mid-stream: two trace halves from different seeds give
# the learner a sample-path drift to adapt to, and the Promote frame for
# cam lands exactly at the splice — learned state must swap live at a
# deterministic stream position.
LTRACE_A=target/ci-learn-trace-a.jsonl
LTRACE_B=target/ci-learn-trace-b.jsonl
"$SERVE" gen-trace --out "$LTRACE_A" --seed 31 --cycles 12000 --mean-gap 100 "${LEARN_FLEET[@]}"
"$SERVE" gen-trace --out "$LTRACE_B" --seed 87 --cycles 12000 --mean-gap 100 "${LEARN_FLEET[@]}"
LFRAMES_A=target/ci-learn-frames-a.bin
LFRAMES_B=target/ci-learn-frames-b.bin
"$SERVE" wire-encode --trace "$LTRACE_A" --out "$LFRAMES_A" --shutdown false
"$SERVE" wire-encode --trace "$LTRACE_B" --out "$LFRAMES_B"
PROMOTE_REQ=target/ci-learn-promote.bin
"$SERVE" promote --request-out "$PROMOTE_REQ" --tenant cam --seq 95001 2>/dev/null
LSTREAM=target/ci-learn-stream.bin
cat "$LFRAMES_A" "$PROMOTE_REQ" "$LFRAMES_B" > "$LSTREAM"
LEARN_LOG=target/ci-learn-served.log
for T in 1 8; do
  LDIR=target/ci-learn-t$T
  rm -rf "$LDIR"
  mkdir -p "$LDIR/ckpt" "$LDIR/obs"
  CLR_THREADS=$T "$SERVED" "${LEARN_FLEET[@]}" --batch 64 \
    --obs-dir "$LDIR/obs" --learn-dir "$LDIR/ckpt" \
    < "$LSTREAM" > "$LDIR/responses.bin" 2> "$LEARN_LOG"
done
cmp target/ci-learn-t1/responses.bin target/ci-learn-t8/responses.bin \
  || { echo "learn response frames diverged across thread counts"; exit 1; }
cmp target/ci-learn-t1/obs/served.obs.jsonl target/ci-learn-t8/obs/served.obs.jsonl \
  || { echo "learn journals diverged across thread counts"; exit 1; }
for ckpt in cam.learn nav.learn; do
  cmp "target/ci-learn-t1/ckpt/$ckpt" "target/ci-learn-t8/ckpt/$ckpt" \
    || { echo "learner checkpoint $ckpt diverged across thread counts"; exit 1; }
done
LEARN_JOURNAL=target/ci-learn-t8/obs/served.obs.jsonl
grep -q '"type":"shadow"' "$LEARN_JOURNAL" \
  || { echo "journal is missing shadow events"; exit 1; }
grep -q '"type":"promote"' "$LEARN_JOURNAL" \
  || { echo "journal is missing the promote event"; exit 1; }
grep -q "1 promotes" "$LEARN_LOG" \
  || { cat "$LEARN_LOG"; echo "drain did not answer the Promote frame"; exit 1; }
grep -q "cam: treatment serving live" "$LEARN_LOG" \
  || { cat "$LEARN_LOG"; echo "cam is not serving the promoted table"; exit 1; }
grep -q "nav: control serving live" "$LEARN_LOG" \
  || { cat "$LEARN_LOG"; echo "nav is not pinned to the control arm"; exit 1; }
"$VERIFY" journal "$LEARN_JOURNAL"
"$VERIFY" learn target/ci-learn-t8/ckpt/cam.learn target/ci-learn-t8/ckpt/nav.learn \
  "$LEARN_JOURNAL"
AB_REPORT=target/ci-learn-ab.txt
"$SERVE" ab --journal "$LEARN_JOURNAL" > "$AB_REPORT"
grep -q "arm treatment" "$AB_REPORT" \
  || { cat "$AB_REPORT"; echo "clr-serve ab did not refold the treatment arm"; exit 1; }
# The drifting-fault-rate bench artifact: quick-scale run, then keep the
# committed full-scale numbers (schema shape is checked by step 12).
cargo build --release --quiet -p clr-experiments --bin learn_bench
LEARN_BENCH_BACKUP=target/ci-bench-learn.json.bak
cp results/BENCH_learn.json "$LEARN_BENCH_BACKUP" 2>/dev/null || LEARN_BENCH_BACKUP=
CLR_QUICK=1 ./target/release/learn_bench >/dev/null 2>&1
for key in '"schema"' '"commit"' '"events_per_sec"' '"prefetch_hit_rate_pct"'; do
  grep -q "$key" results/BENCH_learn.json \
    || { echo "results/BENCH_learn.json missing the $key field"; exit 1; }
done
if [ -n "$LEARN_BENCH_BACKUP" ]; then
  mv "$LEARN_BENCH_BACKUP" results/BENCH_learn.json
fi

step "clr-audit (workspace-wide CLR1xx source lints)"
cargo build --release --quiet -p clr-audit --bin clr-audit
AUDIT=target/release/clr-audit
AUDIT_REPORT=target/ci-audit.json
"$AUDIT" --json > "$AUDIT_REPORT" \
  || { cat "$AUDIT_REPORT"; echo "clr-audit found deny-level source findings"; exit 1; }

printf '\nci.sh: all gates passed.\n'
