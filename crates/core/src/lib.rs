//! End-to-end orchestration of the hybrid design methodology (paper
//! Fig. 3).
//!
//! [`HybridFlow`] wires the whole pipeline together:
//!
//! ```text
//! design time:  system-level MOEA ──► BaseD ──► ReD (reconfig-cost-aware)
//!                                              │
//! run time:     Monte-Carlo prior ──► value functions
//!               discrete events  ──► uRA / AuRA adaptation
//! ```
//!
//! The [`prelude`] re-exports the workspace's commonly used types so
//! downstream code can `use clr_core::prelude::*`.
//!
//! # Examples
//!
//! ```
//! use clr_core::prelude::*;
//! use clr_core::{DbChoice, HybridFlow};
//!
//! let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(5);
//! let platform = Platform::dac19();
//! let flow = HybridFlow::builder(&graph, &platform)
//!     .ga(GaParams::small())
//!     .red(RedConfig { ga: GaParams::small(), ..RedConfig::default() })
//!     .seed(5)
//!     .run();
//!
//! assert!(flow.based().len() > 0);
//! let result = flow.simulate_ura(DbChoice::Red, 0.5, &SimConfig::quick(1));
//! assert!(result.events > 0);
//! ```

mod error;
mod flow;
pub mod prelude;
pub mod scenario;

pub use error::{Error, Result};
pub use flow::{DbChoice, HybridFlow, HybridFlowBuilder};
pub use scenario::{ScenarioConfig, ScenarioInstance, ScenarioKind, ScenarioSuite};

// Re-export the member crates so a single dependency gives access to the
// full stack.
pub use clr_dse as dse;
pub use clr_moea as moea;
pub use clr_obs as obs;
pub use clr_platform as platform;
pub use clr_reliability as reliability;
pub use clr_runtime as runtime;
pub use clr_sched as sched;
pub use clr_serve as serve;
pub use clr_stats as stats;
pub use clr_taskgraph as taskgraph;
