//! Operating-scenario instances (paper §4).
//!
//! The paper's working scenario keeps resource availability and the SEU
//! rate constant while QoS requirements vary, and notes: *"Variations in
//! other factors can be considered as separate instances of this scenario
//! with different values for λ_SEU, and the number of available PEs."*
//! [`ScenarioSuite`] builds exactly those instances — the nominal system,
//! degraded-platform instances (one per failed PE) and shifted-λ
//! instances — runs the design-time exploration per instance, and lets the
//! run-time layer switch databases when the scenario changes.

use clr_dse::RedConfig;
use clr_moea::GaParams;
use clr_platform::{PeId, Platform};
use clr_reliability::{ConfigSpace, FaultModel};
use clr_runtime::SimConfig;
use clr_runtime::SimResult;
use clr_taskgraph::TaskGraph;

use crate::{DbChoice, HybridFlow};

/// Identifies one operating-scenario instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// The nominal system: all PEs available, baseline λ_SEU.
    Nominal,
    /// A permanent fault removed one PE.
    PeFailure {
        /// The failed PE (index in the *nominal* platform).
        failed: PeId,
    },
    /// The environment's SEU rate changed (e.g. orbital vs terrestrial).
    LambdaShift {
        /// The new raw SEU rate.
        lambda_seu: f64,
    },
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioKind::Nominal => write!(f, "nominal"),
            ScenarioKind::PeFailure { failed } => write!(f, "pe-failure:{failed}"),
            ScenarioKind::LambdaShift { lambda_seu } => write!(f, "lambda:{lambda_seu:e}"),
        }
    }
}

/// One prepared instance: the (possibly degraded) platform and its own
/// design-point databases.
#[derive(Debug)]
pub struct ScenarioInstance {
    kind: ScenarioKind,
    platform: Platform,
    fault_model: FaultModel,
}

impl ScenarioInstance {
    /// The instance's identity.
    pub fn kind(&self) -> &ScenarioKind {
        &self.kind
    }

    /// The instance's platform (degraded for PE-failure instances).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The instance's fault environment.
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault_model
    }

    /// `true` if every task of `graph` has an implementation compatible
    /// with this instance's (possibly degraded) platform. A PE failure can
    /// orphan tasks whose only implementations target the failed PE's
    /// type; such instances cannot host the application at all.
    pub fn supports(&self, graph: &TaskGraph) -> bool {
        graph.task_ids().all(|t| {
            graph.implementations(t).iter().any(|im| {
                self.platform
                    .pes()
                    .iter()
                    .any(|pe| pe.type_id() == im.pe_type())
            })
        })
    }

    /// Runs the hybrid design-time flow for this instance.
    ///
    /// # Panics
    ///
    /// Panics if the application cannot be mapped on the instance's
    /// platform (check [`ScenarioInstance::supports`] first — e.g. the
    /// failed PE may have hosted the only compatible type).
    pub fn explore<'a>(&'a self, graph: &'a TaskGraph, config: &ScenarioConfig) -> HybridFlow<'a> {
        let mut builder = HybridFlow::builder(graph, &self.platform)
            .fault_model(self.fault_model)
            .ga(config.ga)
            .config_space(config.config_space.clone())
            .seed(config.seed);
        if let Some(red) = config.red {
            builder = builder.red(red);
        }
        if let Some(cap) = config.storage_limit {
            builder = builder.storage_limit(cap);
        }
        builder.run()
    }

    /// Convenience: explore + simulate uRA in one call, returning the
    /// Monte-Carlo outcome for this instance.
    pub fn evaluate(
        &self,
        graph: &TaskGraph,
        config: &ScenarioConfig,
        p_rc: f64,
        sim: &SimConfig,
    ) -> SimResult {
        let flow = self.explore(graph, config);
        flow.simulate_ura(DbChoice::Red, p_rc, sim)
    }
}

/// Exploration configuration shared by all instances of a suite.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// GA parameters of each instance's exploration.
    pub ga: GaParams,
    /// ReD stage (None = BaseD only).
    pub red: Option<RedConfig>,
    /// CLR configuration space.
    pub config_space: ConfigSpace,
    /// Storage constraint per instance.
    pub storage_limit: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            ga: GaParams::default(),
            red: Some(RedConfig::default()),
            config_space: ConfigSpace::fine(),
            storage_limit: Some(24),
            seed: 0,
        }
    }
}

/// Builds the set of operating-scenario instances for one system.
///
/// # Examples
///
/// ```
/// use clr_core::scenario::ScenarioSuite;
/// use clr_core::prelude::*;
///
/// let platform = Platform::dac19();
/// let suite = ScenarioSuite::new(&platform, FaultModel::default())
///     .with_pe_failures()
///     .with_lambda_shifts(&[1e-3]);
/// // nominal + 5 single-PE failures + 1 lambda shift
/// assert_eq!(suite.instances().len(), 7);
/// ```
#[derive(Debug)]
pub struct ScenarioSuite {
    instances: Vec<ScenarioInstance>,
}

impl ScenarioSuite {
    /// Starts a suite with the nominal instance.
    pub fn new(platform: &Platform, fault_model: FaultModel) -> Self {
        Self {
            instances: vec![ScenarioInstance {
                kind: ScenarioKind::Nominal,
                platform: platform.clone(),
                fault_model,
            }],
        }
    }

    /// Adds one degraded instance per single-PE failure (failures leaving
    /// the platform empty are skipped).
    pub fn with_pe_failures(mut self) -> Self {
        let nominal = self.instances[0].platform.clone();
        let fm = self.instances[0].fault_model;
        for id in nominal.pe_ids() {
            if let Ok(degraded) = nominal.without_pe(id) {
                self.instances.push(ScenarioInstance {
                    kind: ScenarioKind::PeFailure { failed: id },
                    platform: degraded,
                    fault_model: fm,
                });
            }
        }
        self
    }

    /// Adds one instance per shifted SEU rate.
    pub fn with_lambda_shifts(mut self, lambdas: &[f64]) -> Self {
        let nominal = self.instances[0].platform.clone();
        let fm = self.instances[0].fault_model;
        for &lambda in lambdas {
            self.instances.push(ScenarioInstance {
                kind: ScenarioKind::LambdaShift { lambda_seu: lambda },
                platform: nominal.clone(),
                fault_model: fm.with_lambda_seu(lambda),
            });
        }
        self
    }

    /// The prepared instances (nominal first).
    pub fn instances(&self) -> &[ScenarioInstance] {
        &self.instances
    }

    /// Finds an instance by kind.
    pub fn instance(&self, kind: &ScenarioKind) -> Option<&ScenarioInstance> {
        self.instances.iter().find(|i| i.kind() == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_runtime::SimConfig;
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn config() -> ScenarioConfig {
        ScenarioConfig {
            ga: GaParams::small(),
            red: None,
            seed: 3,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn suite_enumerates_instances() {
        let platform = Platform::dac19();
        let suite = ScenarioSuite::new(&platform, FaultModel::default())
            .with_pe_failures()
            .with_lambda_shifts(&[1e-3, 5e-3]);
        assert_eq!(suite.instances().len(), 1 + 5 + 2);
        assert!(suite.instance(&ScenarioKind::Nominal).is_some());
        assert!(suite
            .instance(&ScenarioKind::PeFailure {
                failed: PeId::new(4)
            })
            .is_some());
    }

    #[test]
    fn degraded_instances_explore_and_simulate() {
        let platform = Platform::dac19();
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(3);
        let suite = ScenarioSuite::new(&platform, FaultModel::default()).with_pe_failures();
        let degraded = suite
            .instances()
            .iter()
            .skip(1)
            .find(|i| i.supports(&graph))
            .expect("some single-pe failure leaves the app mappable");
        assert_eq!(degraded.platform().num_pes(), platform.num_pes() - 1);
        let r = degraded.evaluate(&graph, &config(), 0.5, &SimConfig::quick(1));
        assert!(r.events > 0);
    }

    #[test]
    fn lambda_shift_raises_error_rates() {
        let platform = Platform::dac19();
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(4);
        let suite =
            ScenarioSuite::new(&platform, FaultModel::default()).with_lambda_shifts(&[5e-3]);
        let cfg = config();
        let nominal_flow = suite.instances()[0].explore(&graph, &cfg);
        let harsh_flow = suite.instances()[1].explore(&graph, &cfg);
        let best_nominal = nominal_flow
            .based()
            .iter()
            .map(|p| p.metrics.reliability)
            .fold(0.0f64, f64::max);
        let best_harsh = harsh_flow
            .based()
            .iter()
            .map(|p| p.metrics.reliability)
            .fold(0.0f64, f64::max);
        assert!(
            best_harsh <= best_nominal + 1e-12,
            "harsher environment cannot be more reliable: {best_harsh} vs {best_nominal}"
        );
    }
}
