//! The workspace-wide error API.
//!
//! Lower crates keep their own precise error types ([`CodecError`],
//! [`SnapshotError`], [`TraceError`], …); this module unifies them into
//! one [`enum@Error`] with `From` conversions, so application code —
//! CLIs, examples, the `experiments` bins — can use a single
//! [`Result<T>`](Result) and `?` across layer boundaries instead of
//! stringly-typed `Result<_, String>` plumbing.
//!
//! The enum is `#[non_exhaustive]`: downstream matches need a wildcard
//! arm, so future layers can add variants without a breaking release.

use std::fmt;
use std::io;

use clr_dse::CodecError;
use clr_runtime::RuntimeError;
use clr_serve::{FaultPlanError, ReplayError, SnapshotError, TraceError};
use clr_taskgraph::TgffParseError;

/// The unified workspace result type.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Any error the hybrid-clr stack can surface to application code.
///
/// # Examples
///
/// ```
/// use clr_core::prelude::{Error, Result};
///
/// fn load(text: &str) -> Result<clr_serve::Trace> {
///     // `?` converts the layer's typed error into the unified enum.
///     Ok(clr_serve::Trace::from_jsonl(text)?)
/// }
/// assert!(matches!(load("garbage"), Err(Error::Trace(_))));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A design-point database failed to decode ([`clr_dse::CodecError`]).
    Codec(CodecError),
    /// A snapshot container was rejected ([`clr_serve::SnapshotError`]).
    Snapshot(SnapshotError),
    /// A QoS trace failed to decode ([`clr_serve::TraceError`]).
    Trace(TraceError),
    /// A TGFF document failed to parse ([`clr_taskgraph::TgffParseError`]).
    Tgff(TgffParseError),
    /// Run-time inputs were invalid ([`clr_runtime::RuntimeError`]).
    Runtime(RuntimeError),
    /// A fleet replay could not start ([`clr_serve::ReplayError`]).
    Replay(ReplayError),
    /// A fault plan was invalid ([`clr_serve::FaultPlanError`]).
    FaultPlan(FaultPlanError),
    /// No stored design point satisfies the requirement.
    Infeasible {
        /// Human-readable description of the unsatisfiable requirement.
        detail: String,
    },
    /// An adaptation policy failed to produce a decision.
    PolicyFailure {
        /// What the policy reported.
        detail: String,
    },
    /// A `clr-verify` lint wall rejected an artifact.
    Lint {
        /// The rendered lint findings.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Codec(e) => write!(f, "database codec error: {e}"),
            Self::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Self::Trace(e) => write!(f, "trace error: {e}"),
            Self::Tgff(e) => write!(f, "tgff parse error: {e}"),
            Self::Runtime(e) => write!(f, "runtime error: {e}"),
            Self::Replay(e) => write!(f, "replay error: {e}"),
            Self::FaultPlan(e) => write!(f, "fault plan error: {e}"),
            Self::Infeasible { detail } => write!(f, "infeasible requirement: {detail}"),
            Self::PolicyFailure { detail } => write!(f, "policy failure: {detail}"),
            Self::Lint { detail } => write!(f, "lint wall rejected artifact: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Codec(e) => Some(e),
            Self::Snapshot(e) => Some(e),
            Self::Trace(e) => Some(e),
            Self::Tgff(e) => Some(e),
            Self::Runtime(e) => Some(e),
            Self::Replay(e) => Some(e),
            Self::FaultPlan(e) => Some(e),
            Self::Infeasible { .. } | Self::PolicyFailure { .. } | Self::Lint { .. } => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Self::Trace(e)
    }
}

impl From<TgffParseError> for Error {
    fn from(e: TgffParseError) -> Self {
        Self::Tgff(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

impl From<ReplayError> for Error {
    fn from(e: ReplayError) -> Self {
        Self::Replay(e)
    }
}

impl From<FaultPlanError> for Error {
    fn from(e: FaultPlanError) -> Self {
        Self::FaultPlan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_mark_converts_each_layer_error() {
        fn codec() -> Result<clr_dse::DesignPointDb> {
            Ok(clr_dse::DesignPointDb::from_text("garbage")?)
        }
        fn snapshot() -> Result<clr_serve::Snapshot> {
            Ok(clr_serve::Snapshot::from_bytes(b"nonsense")?)
        }
        fn trace() -> Result<clr_serve::Trace> {
            Ok(clr_serve::Trace::from_jsonl("nonsense")?)
        }
        fn tgff() -> Result<clr_taskgraph::TaskGraph> {
            Ok(clr_taskgraph::parse_tgff(
                "nonsense",
                &clr_taskgraph::TgffParseOptions::default(),
            )?)
        }
        fn plan() -> Result<clr_serve::FaultPlan> {
            Ok(clr_serve::FaultPlan::from_text("nonsense")?)
        }
        fn io() -> Result<String> {
            Ok(std::fs::read_to_string("/nonexistent/definitely/missing")?)
        }
        assert!(matches!(codec(), Err(Error::Codec(_))));
        assert!(matches!(snapshot(), Err(Error::Snapshot(_))));
        assert!(matches!(trace(), Err(Error::Trace(_))));
        assert!(matches!(tgff(), Err(Error::Tgff(_))));
        assert!(matches!(plan(), Err(Error::FaultPlan(_))));
        assert!(matches!(io(), Err(Error::Io(_))));
    }

    #[test]
    fn displays_name_the_failing_layer() {
        let e = Error::from(RuntimeError::EmptyDatabase);
        assert!(e.to_string().contains("runtime error"));
        let e = Error::Infeasible {
            detail: "s_max 0".into(),
        };
        assert!(e.to_string().contains("infeasible"));
        use std::error::Error as _;
        assert!(Error::from(RuntimeError::EmptyDatabase).source().is_some());
        assert!(e.source().is_none());
    }
}
