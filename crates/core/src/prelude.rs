//! Convenience re-exports of the types most programs need.
//!
//! # Examples
//!
//! ```
//! use clr_core::prelude::*;
//!
//! let platform = Platform::dac19();
//! let graph = jpeg_encoder();
//! let eval = Evaluator::new(&graph, &platform, FaultModel::default());
//! let mapping = Mapping::first_fit(&graph, &platform).unwrap();
//! let _ = eval.evaluate(&mapping);
//! ```

pub use clr_dse::{
    explore_based, explore_red, ClrMappingProblem, CodecError, DesignPoint, DesignPointDb,
    DseConfig, ExplorationMode, FeasibilityIndex, PointOrigin, ProblemVariant, QosSpec, RedConfig,
};
pub use clr_moea::{GaParams, HvGa, Nsga2, ParetoArchive};
pub use clr_obs::{Obs, ObsMode};
pub use clr_platform::{Interconnect, Pe, PeId, PeKind, PeType, PeTypeId, Platform, Prr, PrrId};
pub use clr_reliability::{
    AswMethod, ClrConfig, ConfigSpace, FaultInjector, FaultModel, HwMethod, SswMethod, TaskMetrics,
};
pub use clr_runtime::{
    simulate, simulate_checked, simulate_obs, AuraAgent, DecisionInput, DecisionOutcome,
    EventStream, Feedback, HvPolicy, QosVariationModel, RuntimeContext, RuntimeError,
    RuntimePolicy, SimConfig, SimResult, UraPolicy, VariationMode,
};
pub use clr_sched::{
    gantt_ascii, heft_mapping, list_schedule, reconfiguration_cost, schedule_csv, Evaluator, Gene,
    Mapping, Schedule, SystemMetrics,
};
pub use clr_serve::{
    generate_trace, replay, FaultKind, FaultPlan, FaultRates, LineageSnapshot, PolicySpec,
    ReplayConfig, ReplayReport, ServeStatus, Snapshot, SnapshotError, Tenant, Trace, TraceError,
    TraceEvent,
};
pub use clr_stats::{Normal, Summary};
pub use clr_taskgraph::{
    jpeg_encoder, parse_tgff, Edge, Implementation, SwStack, Task, TaskGraph, TaskGraphBuilder,
    TaskId, TgffConfig, TgffGenerator, TgffParseError, TgffParseOptions,
};

pub use crate::error::{Error, Result};
pub use crate::scenario::{ScenarioConfig, ScenarioInstance, ScenarioKind, ScenarioSuite};
pub use crate::{DbChoice, HybridFlow, HybridFlowBuilder};
