//! The hybrid design-time/run-time flow.

use clr_dse::{
    explore_based_with, explore_red_with, DesignPointDb, DseConfig, ExplorationMode, RedConfig,
};
use clr_moea::GaParams;
use clr_obs::Obs;
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_runtime::{
    simulate_obs, AuraAgent, QosVariationModel, RuntimeContext, SimConfig, SimResult, UraPolicy,
};
use clr_taskgraph::TaskGraph;

/// Which stored database a run-time simulation adapts over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbChoice {
    /// The Pareto-only database (the state-of-the-art baseline, (ref.\ 11)).
    Based,
    /// The reconfiguration-cost-aware database (falls back to BaseD when
    /// the ReD stage was not run).
    Red,
}

/// Builder for [`HybridFlow`]; see the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct HybridFlowBuilder<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    fault_model: FaultModel,
    config_space: ConfigSpace,
    dse: DseConfig,
    red: Option<RedConfig>,
    qos_sigma_frac: f64,
    qos_correlation: f64,
    seed: u64,
    obs: Obs,
}

impl<'a> HybridFlowBuilder<'a> {
    /// Sets the fault environment (default: [`FaultModel::default`]).
    pub fn fault_model(mut self, fm: FaultModel) -> Self {
        self.fault_model = fm;
        self
    }

    /// Sets the CLR configuration space (default: [`ConfigSpace::fine`]).
    pub fn config_space(mut self, space: ConfigSpace) -> Self {
        self.config_space = space;
        self
    }

    /// Sets the GA parameters of the system-level MOEA.
    pub fn ga(mut self, ga: GaParams) -> Self {
        self.dse.ga = ga;
        self
    }

    /// Sets the exploration mode (default: [`ExplorationMode::Full`]).
    pub fn mode(mut self, mode: ExplorationMode) -> Self {
        self.dse.mode = mode;
        self
    }

    /// Supplies an explicit hyper-volume reference point.
    pub fn reference(mut self, reference: Vec<f64>) -> Self {
        self.dse.reference = Some(reference);
        self
    }

    /// Caps the stored Pareto database at `max_points` design points
    /// (paper Fig. 3's storage constraint); larger fronts are
    /// crowding-pruned.
    pub fn storage_limit(mut self, max_points: usize) -> Self {
        self.dse.max_points = Some(max_points);
        self
    }

    /// Enables the reconfiguration-cost-aware second stage (ReD).
    pub fn red(mut self, red: RedConfig) -> Self {
        self.red = Some(red);
        self
    }

    /// Parameterises the QoS-variation model used for simulations and the
    /// Monte-Carlo prior (σ as a fraction of the achievable QoS range, and
    /// the correlation between the two requirements).
    pub fn qos_variation(mut self, sigma_frac: f64, correlation: f64) -> Self {
        self.qos_sigma_frac = sigma_frac;
        self.qos_correlation = correlation;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an observability handle (default: disabled): design-time
    /// stages and run-time simulations journal their progress through it.
    /// The handle is shared — clone one [`Obs`] across flows to collect a
    /// whole experiment in a single journal.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the design-time stages and returns the completed flow.
    ///
    /// # Panics
    ///
    /// Panics if the application cannot be mapped on the platform (see
    /// [`clr_dse::explore_based`]).
    pub fn run(self) -> HybridFlow<'a> {
        // When a storage budget is set and the ReD stage runs, BaseD gets
        // two thirds of it so the reconfiguration-aware extras have room.
        let mut dse = self.dse.clone();
        if let (Some(total), true) = (dse.max_points, self.red.is_some()) {
            dse.max_points = Some((total * 2 / 3).max(2));
        }
        let based = {
            let _t = self.obs.wall_timer("flow.based");
            explore_based_with(
                self.graph,
                self.platform,
                self.fault_model,
                self.config_space.clone(),
                &dse,
                self.seed,
                &self.obs,
            )
        };
        let red = self.red.as_ref().map(|red_cfg| {
            // The Fig. 3 storage constraint bounds the *whole* stored
            // database, so the ReD stage inherits it unless the caller set
            // an explicit total.
            let mut red_cfg = *red_cfg;
            if red_cfg.max_total.is_none() {
                red_cfg.max_total = self.dse.max_points;
            }
            let _t = self.obs.wall_timer("flow.red");
            explore_red_with(
                self.graph,
                self.platform,
                self.fault_model,
                self.config_space.clone(),
                self.dse.mode,
                &based,
                &red_cfg,
                self.seed.wrapping_add(1),
                &self.obs,
            )
        });
        HybridFlow {
            graph: self.graph,
            platform: self.platform,
            qos_sigma_frac: self.qos_sigma_frac,
            qos_correlation: self.qos_correlation,
            seed: self.seed,
            based,
            red,
            obs: self.obs,
        }
    }
}

/// A completed design-time exploration, ready for run-time simulation.
#[derive(Debug, Clone)]
pub struct HybridFlow<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    qos_sigma_frac: f64,
    qos_correlation: f64,
    seed: u64,
    based: DesignPointDb,
    red: Option<DesignPointDb>,
    obs: Obs,
}

impl<'a> HybridFlow<'a> {
    /// Starts configuring a flow.
    pub fn builder(graph: &'a TaskGraph, platform: &'a Platform) -> HybridFlowBuilder<'a> {
        HybridFlowBuilder {
            graph,
            platform,
            fault_model: FaultModel::default(),
            config_space: ConfigSpace::fine(),
            dse: DseConfig::default(),
            red: None,
            qos_sigma_frac: 0.25,
            qos_correlation: 0.3,
            seed: 0,
            obs: Obs::off(),
        }
    }

    /// The observability handle the flow journals through (disabled unless
    /// one was attached via [`HybridFlowBuilder::obs`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The application graph.
    pub fn graph(&self) -> &'a TaskGraph {
        self.graph
    }

    /// The platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The Pareto-only database.
    pub fn based(&self) -> &DesignPointDb {
        &self.based
    }

    /// The ReD database, if the second stage ran.
    pub fn red(&self) -> Option<&DesignPointDb> {
        self.red.as_ref()
    }

    /// Resolves a database choice (ReD falls back to BaseD when absent).
    pub fn db(&self, choice: DbChoice) -> &DesignPointDb {
        match choice {
            DbChoice::Based => &self.based,
            DbChoice::Red => self.red.as_ref().unwrap_or(&self.based),
        }
    }

    /// Builds a run-time context over the chosen database.
    pub fn context(&self, choice: DbChoice) -> RuntimeContext<'_> {
        RuntimeContext::new(self.graph, self.platform, self.db(choice))
    }

    /// The QoS-variation model calibrated against the chosen database.
    pub fn qos_model(&self, choice: DbChoice) -> QosVariationModel {
        QosVariationModel::calibrated_walk(
            self.db(choice),
            self.qos_sigma_frac,
            self.qos_correlation,
        )
    }

    /// Runs a uRA Monte-Carlo simulation over the chosen database.
    ///
    /// # Panics
    ///
    /// Panics if `p_rc` is outside `[0, 1]`.
    pub fn simulate_ura(&self, choice: DbChoice, p_rc: f64, config: &SimConfig) -> SimResult {
        let ctx = self.context(choice);
        let qos = self.qos_model(choice);
        let mut policy = UraPolicy::new(p_rc).expect("p_rc must be in [0, 1]");
        simulate_obs(
            &ctx,
            &mut policy,
            &qos,
            config,
            &self.obs,
            &label("ura", choice),
        )
    }

    /// Runs an AuRA Monte-Carlo simulation over the chosen database: the
    /// agent is first bootstrapped by `prior_episodes` offline episodes
    /// against the known QoS-variation distribution, then evaluated.
    ///
    /// # Panics
    ///
    /// Panics if the agent parameters are invalid (see [`AuraAgent::new`]).
    pub fn simulate_aura(
        &self,
        choice: DbChoice,
        p_rc: f64,
        gamma: f64,
        alpha: f64,
        prior_episodes: usize,
        config: &SimConfig,
    ) -> SimResult {
        let ctx = self.context(choice);
        let qos = self.qos_model(choice);
        let mut agent =
            AuraAgent::new(ctx.len(), p_rc, gamma, alpha).expect("agent parameters must be valid");
        if prior_episodes > 0 {
            agent.train_prior_obs(
                &ctx,
                &qos,
                prior_episodes,
                config.episode_cycles,
                self.seed,
                0,
                &self.obs,
            );
        }
        simulate_obs(
            &ctx,
            &mut agent,
            &qos,
            config,
            &self.obs,
            &label("aura", choice),
        )
    }
}

/// Journal label for a run-time simulation: policy plus database choice.
fn label(policy: &str, choice: DbChoice) -> String {
    match choice {
        DbChoice::Based => format!("{policy}-based"),
        DbChoice::Red => format!("{policy}-red"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn flow<'a>(graph: &'a TaskGraph, platform: &'a Platform, with_red: bool) -> HybridFlow<'a> {
        let mut b = HybridFlow::builder(graph, platform)
            .ga(GaParams::small())
            .mode(ExplorationMode::Full)
            .seed(13);
        if with_red {
            b = b.red(RedConfig {
                ga: GaParams::small(),
                ..RedConfig::default()
            });
        }
        b.run()
    }

    #[test]
    fn flow_without_red_falls_back() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(2);
        let platform = Platform::dac19();
        let f = flow(&graph, &platform, false);
        assert!(f.red().is_none());
        assert_eq!(f.db(DbChoice::Red).len(), f.based().len());
    }

    #[test]
    fn flow_with_red_extends_database() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(3);
        let platform = Platform::dac19();
        let f = flow(&graph, &platform, true);
        let red = f.red().expect("red stage ran");
        assert!(red.len() >= f.based().len());
    }

    #[test]
    fn both_policies_simulate() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(4);
        let platform = Platform::dac19();
        let f = flow(&graph, &platform, false);
        let ura = f.simulate_ura(DbChoice::Based, 0.5, &SimConfig::quick(5));
        let aura = f.simulate_aura(DbChoice::Based, 0.5, 0.6, 0.1, 10, &SimConfig::quick(5));
        assert!(ura.events > 0 && aura.events > 0);
    }

    #[test]
    fn attached_obs_journals_the_whole_flow() {
        use clr_obs::{Event, Obs, ObsMode};
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(6);
        let platform = Platform::dac19();
        let obs = Obs::new(ObsMode::Json);
        let f = HybridFlow::builder(&graph, &platform)
            .ga(GaParams::small())
            .red(RedConfig {
                ga: GaParams::small(),
                ..RedConfig::default()
            })
            .seed(6)
            .obs(obs.clone())
            .run();
        let _ = f.simulate_aura(DbChoice::Red, 0.5, 0.6, 0.1, 10, &SimConfig::quick(2));
        let events = obs.det_events();
        let stages: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                Event::DseStage { stage, .. } => Some(stage.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(stages, ["based", "red"]);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::GaGen { hv: Some(_), .. })));
        assert!(events.iter().any(|e| matches!(e, Event::Episode { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::SimStart { label, .. } if label == "aura-red")));
        assert!(events.iter().any(|e| matches!(e, Event::Decision { .. })));
        // The shared handle is reachable from the finished flow.
        assert!(f.obs().enabled());
    }
}
