//! The JPEG-encoder sample application of paper Fig. 2b.
//!
//! The figure shows an 11-task, 13-edge graph: a source `S`, a quantisation
//! stage `QZ`, five Huffman-related tasks `H1..H5`, and four DCT tasks `D`,
//! converging into the entropy-coded output. The exact wiring in the figure
//! is stylised; we reproduce the same node/edge counts and the
//! split-process-merge structure of a JPEG encoder.

use clr_platform::PeTypeId;

use crate::{ImplId, Implementation, SwStack, TaskGraph, TaskGraphBuilder, TaskTypeId};

/// Builds the JPEG-encoder task graph of Fig. 2b (11 tasks, 13 edges).
///
/// Tasks: `S` (colour-space + block split), `D0..D3` (parallel DCT over
/// four block stripes), `QZ` (quantisation), `H1..H4` (Huffman stages),
/// `OUT` (bit-stream assembly). The four DCT tasks share one functionality
/// type, so they can share a binary / accelerator bit-stream.
///
/// # Examples
///
/// ```
/// let g = clr_taskgraph::jpeg_encoder();
/// assert_eq!(g.num_tasks(), 11);
/// assert_eq!(g.num_edges(), 13);
/// ```
pub fn jpeg_encoder() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("jpeg-encoder", 2000.0);

    let dct_type = TaskTypeId::new(100);

    // T0: source / block split.
    b.task("S")
        .implementation(PeTypeId::new(0), SwStack::Rtos, 40.0)
        .implementation(PeTypeId::new(1), SwStack::Rtos, 28.0);

    // T1..T4: DCT stripes — compute-heavy, accelerator candidates.
    for i in 0..4 {
        let mut h = b.task_with_type(format!("D{i}"), dct_type);
        h.implementation(PeTypeId::new(1), SwStack::BareMetal, 110.0)
            .implementation(PeTypeId::new(2), SwStack::BareMetal, 135.0);
        h.implementation_full(
            Implementation::new(ImplId::new(0), PeTypeId::new(1), SwStack::BareMetal, 30.0)
                .with_binary_kib(72)
                .with_power_scale(1.5)
                .with_accelerated(true),
        );
    }

    // T5: quantisation.
    b.task("QZ")
        .implementation(PeTypeId::new(0), SwStack::Rtos, 55.0)
        .implementation(PeTypeId::new(2), SwStack::Rtos, 48.0);

    // T6..T9: Huffman pipeline stages.
    for i in 1..=4 {
        b.task(format!("H{i}"))
            .implementation(PeTypeId::new(0), SwStack::Rtos, 60.0 + 5.0 * i as f64)
            .implementation(PeTypeId::new(2), SwStack::BareMetal, 50.0 + 5.0 * i as f64);
    }

    // T10: output assembly.
    b.task("OUT")
        .implementation(PeTypeId::new(0), SwStack::Rtos, 35.0)
        .implementation(PeTypeId::new(1), SwStack::Rtos, 25.0);

    // 13 edges: S fans out to the 4 DCTs, DCTs converge on QZ, QZ feeds the
    // Huffman chain H1→H2→H3→H4, H2 and H4 feed OUT.
    for i in 1..=4 {
        b.edge(0.into(), i.into(), 8.0, 24.0); // S  -> Di   (4)
        b.edge(i.into(), 5.into(), 6.0, 24.0); // Di -> QZ   (4)
    }
    b.edge(5.into(), 6.into(), 5.0, 16.0); // QZ -> H1
    b.edge(6.into(), 7.into(), 4.0, 12.0); // H1 -> H2
    b.edge(7.into(), 8.into(), 4.0, 12.0); // H2 -> H3
    b.edge(8.into(), 9.into(), 4.0, 12.0); // H3 -> H4
    b.edge(9.into(), 10.into(), 3.0, 8.0); // H4 -> OUT

    b.build().expect("jpeg encoder sample graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fig_2b_counts() {
        let g = jpeg_encoder();
        assert_eq!(g.num_tasks(), 11);
        assert_eq!(g.num_edges(), 13);
    }

    #[test]
    fn dct_tasks_share_type_and_have_accelerators() {
        let g = jpeg_encoder();
        let dcts: Vec<_> = g
            .tasks()
            .iter()
            .filter(|t| t.name().starts_with('D') && t.name() != "OUT")
            .collect();
        assert_eq!(dcts.len(), 4);
        let ty = dcts[0].type_id();
        for d in &dcts {
            assert_eq!(d.type_id(), ty);
            assert!(g
                .implementations(d.id())
                .iter()
                .any(super::super::implementation::Implementation::accelerated));
        }
    }

    #[test]
    fn single_source_single_sink() {
        let g = jpeg_encoder();
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.task(g.sources()[0]).name(), "S");
        assert_eq!(g.task(g.sinks()[0]).name(), "OUT");
    }
}
