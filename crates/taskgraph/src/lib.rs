//! Application model (paper §3.2, Fig. 2b) and synthetic workload generator.
//!
//! An application is a periodic task graph `G_app = (T_app, E_app, P_app)`:
//! task nodes, directed dependency edges with data-transfer times, and the
//! application period. Each task carries a set of candidate
//! *implementations* `Impl(t, i)` — combinations of target PE type, system
//! software and application software — among which the design-space
//! exploration chooses.
//!
//! The paper generates its 10–100-task synthetic applications with the TGFF
//! tool; [`TgffGenerator`] is a faithful stand-in producing seeded,
//! reproducible layered DAGs with TGFF-style parameters. The JPEG-encoder
//! example of Fig. 2b is available as [`jpeg_encoder`].
//!
//! # Examples
//!
//! ```
//! use clr_taskgraph::{TgffConfig, TgffGenerator};
//!
//! let graph = TgffGenerator::new(TgffConfig::with_tasks(20)).generate(42);
//! assert_eq!(graph.num_tasks(), 20);
//! assert!(graph.topological_order().len() == 20);
//! ```

mod builder;
mod dot;
mod edge;
mod error;
mod forkjoin;
mod graph;
mod implementation;
mod jpeg;
mod metrics;
mod task;
mod tgff;
mod tgff_parse;

pub use builder::{TaskGraphBuilder, TaskHandle};
pub use dot::to_dot;
pub use edge::{Edge, EdgeId};
pub use error::GraphError;
pub use forkjoin::fork_join_graph;
pub use graph::TaskGraph;
pub use implementation::{ImplId, Implementation, SwStack};
pub use jpeg::jpeg_encoder;
pub use metrics::{graph_metrics, GraphMetrics};
pub use task::{Task, TaskId, TaskTypeId};
pub use tgff::{TgffConfig, TgffGenerator};
pub use tgff_parse::{parse_tgff, TgffParseError, TgffParseOptions};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_dags_with_impls() {
        for seed in 0..5 {
            let g = TgffGenerator::new(TgffConfig::with_tasks(30)).generate(seed);
            assert_eq!(g.num_tasks(), 30);
            assert_eq!(g.topological_order().len(), 30);
            for t in g.tasks() {
                assert!(
                    !g.implementations(t.id()).is_empty(),
                    "task {} has no implementations",
                    t.id()
                );
            }
        }
    }
}
