//! Parser for the textual output format of the original TGFF tool
//! (Dick, Rhodes & Wolf, CODES'98) — `.tgff` files.
//!
//! The paper generated its workloads with TGFF; this parser lets the
//! library consume graphs produced by the real tool, not only by the
//! built-in [`crate::TgffGenerator`]. The supported subset covers the
//! task-graph sections TGFF emits by default:
//!
//! ```text
//! @TASK_GRAPH 0 {
//!   PERIOD 300
//!   TASK t0_0  TYPE 2
//!   TASK t0_1  TYPE 0
//!   ARC a0_0  FROM t0_0 TO t0_1  TYPE 1
//! }
//! ```
//!
//! Task `TYPE n` indexes a functionality type; arc `TYPE n` indexes a
//! message type whose size/latency TGFF tabulates separately — here arcs
//! get a transfer time proportional to the type index (callers can rescale
//! with [`TgffParseOptions`]). Every parsed task receives one default
//! implementation per configured PE type, scaled by its task type, so the
//! graph is immediately usable by the DSE.

use std::collections::BTreeMap;

use clr_platform::PeTypeId;

use crate::{GraphError, SwStack, TaskGraph, TaskGraphBuilder, TaskId, TaskTypeId};

/// Options controlling how raw TGFF records map onto model quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct TgffParseOptions {
    /// Base nominal execution time of a type-0 task.
    pub base_task_time: f64,
    /// Additional time per task-type index (type `n` costs
    /// `base + n × per_type`).
    pub time_per_type: f64,
    /// Base transfer time of a type-0 arc.
    pub base_comm_time: f64,
    /// Additional transfer time per arc-type index.
    pub comm_per_type: f64,
    /// Payload KiB per arc-type index (plus 4 KiB base).
    pub kib_per_type: f64,
    /// PE types implementations are generated for.
    pub num_pe_types: usize,
}

impl Default for TgffParseOptions {
    fn default() -> Self {
        Self {
            base_task_time: 40.0,
            time_per_type: 15.0,
            base_comm_time: 4.0,
            comm_per_type: 2.0,
            kib_per_type: 4.0,
            num_pe_types: 3,
        }
    }
}

/// Error produced while parsing a `.tgff` document.
#[derive(Debug, Clone, PartialEq)]
pub enum TgffParseError {
    /// The document contains no `@TASK_GRAPH` section.
    NoTaskGraph,
    /// A malformed record (line contents attached).
    Malformed {
        /// The offending line.
        line: String,
    },
    /// An arc references an undeclared task name.
    UnknownTask {
        /// The dangling task name.
        name: String,
    },
    /// The assembled graph failed validation.
    Graph(GraphError),
}

impl std::fmt::Display for TgffParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TgffParseError::NoTaskGraph => write!(f, "no @TASK_GRAPH section found"),
            TgffParseError::Malformed { line } => write!(f, "malformed tgff record: {line}"),
            TgffParseError::UnknownTask { name } => {
                write!(f, "arc references undeclared task {name}")
            }
            TgffParseError::Graph(e) => write!(f, "invalid parsed graph: {e}"),
        }
    }
}

impl std::error::Error for TgffParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TgffParseError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for TgffParseError {
    fn from(e: GraphError) -> Self {
        TgffParseError::Graph(e)
    }
}

/// Parses the **first** `@TASK_GRAPH` section of a `.tgff` document.
///
/// # Errors
///
/// Returns [`TgffParseError`] on malformed records, dangling arc
/// endpoints, or an invalid resulting graph.
///
/// # Examples
///
/// ```
/// let doc = r"
/// @TASK_GRAPH 0 {
///   PERIOD 300
///   TASK t0_0 TYPE 2
///   TASK t0_1 TYPE 0
///   ARC a0_0 FROM t0_0 TO t0_1 TYPE 1
/// }";
/// let g = clr_taskgraph::parse_tgff(doc, &Default::default())?;
/// assert_eq!(g.num_tasks(), 2);
/// assert_eq!(g.num_edges(), 1);
/// assert_eq!(g.period(), 300.0);
/// # Ok::<(), clr_taskgraph::TgffParseError>(())
/// ```
pub fn parse_tgff(doc: &str, options: &TgffParseOptions) -> Result<TaskGraph, TgffParseError> {
    let mut in_graph = false;
    let mut graph_name = String::from("tgff-import");
    let mut period = 0.0f64;
    let mut tasks: Vec<(String, usize)> = Vec::new();
    let mut arcs: Vec<(String, String, usize)> = Vec::new();

    for raw in doc.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !in_graph {
            if let Some(rest) = line.strip_prefix("@TASK_GRAPH") {
                in_graph = true;
                let id = rest.trim().trim_end_matches('{').trim();
                if !id.is_empty() {
                    graph_name = format!("tgff-import-{id}");
                }
            }
            continue;
        }
        if line.starts_with('}') {
            break; // only the first task graph
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("PERIOD") => {
                period = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| TgffParseError::Malformed { line: line.into() })?;
            }
            Some("TASK") => {
                let name = words
                    .next()
                    .ok_or_else(|| TgffParseError::Malformed { line: line.into() })?;
                let ty = parse_keyed(&mut words, "TYPE")
                    .ok_or_else(|| TgffParseError::Malformed { line: line.into() })?;
                tasks.push((name.to_string(), ty));
            }
            Some("ARC") => {
                let _arc_name = words
                    .next()
                    .ok_or_else(|| TgffParseError::Malformed { line: line.into() })?;
                let mut from = None;
                let mut to = None;
                let mut ty = 0usize;
                let rest: Vec<&str> = words.collect();
                let mut i = 0;
                while i + 1 < rest.len() + 1 {
                    match rest.get(i) {
                        Some(&"FROM") => {
                            from = rest.get(i + 1).map(std::string::ToString::to_string);
                            i += 2;
                        }
                        Some(&"TO") => {
                            to = rest.get(i + 1).map(std::string::ToString::to_string);
                            i += 2;
                        }
                        Some(&"TYPE") => {
                            ty = rest
                                .get(i + 1)
                                .and_then(|w| w.parse().ok())
                                .ok_or_else(|| TgffParseError::Malformed { line: line.into() })?;
                            i += 2;
                        }
                        Some(_) => i += 1,
                        None => break,
                    }
                }
                let (Some(from), Some(to)) = (from, to) else {
                    return Err(TgffParseError::Malformed { line: line.into() });
                };
                arcs.push((from, to, ty));
            }
            // TGFF emits other attributes (HARD_DEADLINE etc.); skip them.
            _ => {}
        }
    }

    if !in_graph {
        return Err(TgffParseError::NoTaskGraph);
    }

    let index: BTreeMap<&str, usize> = tasks
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.as_str(), i))
        .collect();

    let mut b = TaskGraphBuilder::new(graph_name, if period > 0.0 { period } else { 1000.0 });
    for (name, ty) in &tasks {
        let nominal = options.base_task_time + options.time_per_type * *ty as f64;
        let mut h = b.task_with_type(name.clone(), TaskTypeId::new(*ty));
        for pe_ty in 0..options.num_pe_types.max(1) {
            // Mild heterogeneity: later PE types run a task type faster or
            // slower deterministically, so implementations differ.
            let affinity = 1.0 + 0.15 * ((pe_ty + ty) % 3) as f64 - 0.15;
            h.implementation(PeTypeId::new(pe_ty), SwStack::Rtos, nominal * affinity);
        }
    }
    for (from, to, ty) in &arcs {
        let src = *index
            .get(from.as_str())
            .ok_or_else(|| TgffParseError::UnknownTask { name: from.clone() })?;
        let dst = *index
            .get(to.as_str())
            .ok_or_else(|| TgffParseError::UnknownTask { name: to.clone() })?;
        let comm = options.base_comm_time + options.comm_per_type * *ty as f64;
        let kib = 4.0 + options.kib_per_type * *ty as f64;
        b.edge(TaskId::new(src), TaskId::new(dst), comm, kib);
    }
    Ok(b.build()?)
}

fn parse_keyed<'a, I: Iterator<Item = &'a str>>(words: &mut I, key: &str) -> Option<usize> {
    let mut saw_key = false;
    for w in words {
        if saw_key {
            return w.parse().ok();
        }
        if w == key {
            saw_key = true;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# generated by tgff
@HYPERPERIOD 1200

@TASK_GRAPH 0 {
  PERIOD 300
  TASK t0_0  TYPE 2
  TASK t0_1  TYPE 0
  TASK t0_2  TYPE 1
  TASK t0_3  TYPE 2
  ARC a0_0  FROM t0_0 TO t0_1 TYPE 0
  ARC a0_1  FROM t0_0 TO t0_2 TYPE 1
  ARC a0_2  FROM t0_1 TO t0_3 TYPE 2
  ARC a0_3  FROM t0_2 TO t0_3 TYPE 0
  HARD_DEADLINE d0_0 ON t0_3 AT 300
}

@TASK_GRAPH 1 {
  PERIOD 100
  TASK t1_0  TYPE 0
}
";

    #[test]
    fn parses_first_graph_only() {
        let g = parse_tgff(SAMPLE, &TgffParseOptions::default()).unwrap();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.period(), 300.0);
        assert_eq!(g.name(), "tgff-import-0");
    }

    #[test]
    fn task_types_and_times_follow_records() {
        let opts = TgffParseOptions::default();
        let g = parse_tgff(SAMPLE, &opts).unwrap();
        assert_eq!(g.task(TaskId::new(0)).type_id(), TaskTypeId::new(2));
        assert_eq!(g.task(TaskId::new(1)).type_id(), TaskTypeId::new(0));
        // Type-2 tasks are slower than type-0 tasks on the same PE type.
        let t0 = g.implementations(TaskId::new(0))[0].nominal_time();
        let t1 = g.implementations(TaskId::new(1))[0].nominal_time();
        assert!(t0 > t1);
    }

    #[test]
    fn arcs_carry_type_scaled_comm() {
        let opts = TgffParseOptions::default();
        let g = parse_tgff(SAMPLE, &opts).unwrap();
        let e_type0 = &g.edges()[0];
        let e_type2 = &g.edges()[2];
        assert!(e_type2.comm_time() > e_type0.comm_time());
    }

    #[test]
    fn rejects_missing_section_and_dangling_arcs() {
        assert_eq!(
            parse_tgff("TASK a TYPE 0", &TgffParseOptions::default()).unwrap_err(),
            TgffParseError::NoTaskGraph
        );
        let bad = "@TASK_GRAPH 0 {\n TASK a TYPE 0\n ARC x FROM a TO ghost TYPE 0\n}";
        assert!(matches!(
            parse_tgff(bad, &TgffParseOptions::default()).unwrap_err(),
            TgffParseError::UnknownTask { .. }
        ));
    }

    #[test]
    fn rejects_malformed_records() {
        let bad = "@TASK_GRAPH 0 {\n PERIOD abc\n}";
        assert!(matches!(
            parse_tgff(bad, &TgffParseOptions::default()).unwrap_err(),
            TgffParseError::Malformed { .. }
        ));
        let bad2 = "@TASK_GRAPH 0 {\n TASK t0\n}";
        assert!(matches!(
            parse_tgff(bad2, &TgffParseOptions::default()).unwrap_err(),
            TgffParseError::Malformed { .. }
        ));
    }

    #[test]
    fn comments_and_unknown_records_are_skipped() {
        let doc =
            "@TASK_GRAPH 0 {\n # comment\n TASK a TYPE 0 # trailing\n SOFT_DEADLINE x ON a AT 5\n}";
        let g = parse_tgff(doc, &TgffParseOptions::default()).unwrap();
        assert_eq!(g.num_tasks(), 1);
    }

    #[test]
    fn parsed_graph_is_schedulable() {
        use clr_platform::Platform;
        let g = parse_tgff(SAMPLE, &TgffParseOptions::default()).unwrap();
        let p = Platform::dac19();
        let m = tests_support::first_fit(&g, &p);
        assert!(m.is_some());
    }
}

/// Test-only helper shared with integration points that need a quick
/// validity probe without depending on `clr-sched`.
#[cfg(test)]
pub(crate) mod tests_support {
    use clr_platform::Platform;

    use crate::TaskGraph;

    /// `Some(())` if every task has a platform-compatible implementation.
    pub fn first_fit(graph: &TaskGraph, platform: &Platform) -> Option<()> {
        for t in graph.task_ids() {
            let ok = graph
                .implementations(t)
                .iter()
                .any(|im| platform.pes().iter().any(|pe| pe.type_id() == im.pe_type()));
            if !ok {
                return None;
            }
        }
        Some(())
    }
}
