//! TGFF-style synthetic task-graph generator.
//!
//! The paper generates its synthetic applications (10–100 tasks) with the
//! *Task Graphs For Free* tool (Dick, Rhodes & Wolf, CODES'98). TGFF is
//! itself a seeded pseudo-random generator of layered fan-in/fan-out DAGs
//! with user-chosen task counts, degrees and attribute ranges — this module
//! reimplements that generation scheme so the evaluation is fully
//! self-contained and reproducible from a `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{SwStack, TaskGraph, TaskGraphBuilder};
use clr_platform::PeTypeId;

/// Parameters of the synthetic generator (TGFF-style).
///
/// # Examples
///
/// ```
/// use clr_taskgraph::TgffConfig;
/// let cfg = TgffConfig::with_tasks(40);
/// assert_eq!(cfg.num_tasks, 40);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TgffConfig {
    /// Number of task nodes to generate.
    pub num_tasks: usize,
    /// Maximum out-degree of any node (fan-out limit).
    pub max_out_degree: usize,
    /// Maximum in-degree of any non-source node (fan-in limit).
    pub max_in_degree: usize,
    /// Average number of tasks per DAG layer (controls depth vs. width).
    pub avg_layer_width: f64,
    /// Nominal task execution time range `[min, max)`.
    pub time_range: (f64, f64),
    /// Communication-to-computation ratio: edge transfer times are drawn
    /// from `ccr × time_range`.
    pub ccr: f64,
    /// Number of PE types implementations may target (matches the hosting
    /// platform's type count).
    pub num_pe_types: usize,
    /// Probability that a task also gets a PRR-hosted accelerator
    /// implementation.
    pub accel_fraction: f64,
    /// Task binary size range in KiB `[min, max)`.
    pub binary_kib_range: (u32, u32),
    /// Application period as a multiple of the sum of average task times
    /// divided by a nominal PE count (slack for scheduling).
    pub period_slack: f64,
}

impl TgffConfig {
    /// A configuration matching the paper's setup for `num_tasks` tasks:
    /// 3 PE types, moderate fan-out, CCR 0.2, ~25 % accelerated tasks.
    pub fn with_tasks(num_tasks: usize) -> Self {
        Self {
            num_tasks,
            max_out_degree: 3,
            max_in_degree: 3,
            avg_layer_width: (num_tasks as f64 / 5.0).max(2.0),
            time_range: (20.0, 120.0),
            ccr: 0.2,
            num_pe_types: 3,
            accel_fraction: 0.25,
            binary_kib_range: (16, 96),
            period_slack: 3.0,
        }
    }
}

impl Default for TgffConfig {
    fn default() -> Self {
        Self::with_tasks(20)
    }
}

/// Seeded generator of TGFF-style task graphs.
///
/// # Examples
///
/// ```
/// use clr_taskgraph::{TgffConfig, TgffGenerator};
/// let gen = TgffGenerator::new(TgffConfig::with_tasks(10));
/// let a = gen.generate(1);
/// let b = gen.generate(1);
/// assert_eq!(a, b); // fully deterministic per seed
/// ```
#[derive(Debug, Clone)]
pub struct TgffGenerator {
    config: TgffConfig,
}

impl TgffGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: TgffConfig) -> Self {
        Self { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &TgffConfig {
        &self.config
    }

    /// Generates one task graph from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero tasks or zero PE types
    /// (a configuration bug, not a data-dependent condition).
    pub fn generate(&self, seed: u64) -> TaskGraph {
        let c = &self.config;
        assert!(c.num_tasks > 0, "tgff config must request at least 1 task");
        assert!(
            c.num_pe_types > 0,
            "tgff config must have at least 1 pe type"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7a5f_00d5_c0ff_ee00);

        // --- 1. Assign tasks to layers. -------------------------------
        let mut layers: Vec<Vec<usize>> = Vec::new();
        let mut t = 0usize;
        while t < c.num_tasks {
            let width = (rng.gen_range(0.5..1.5) * c.avg_layer_width)
                .round()
                .max(1.0) as usize;
            let width = width.min(c.num_tasks - t);
            layers.push((t..t + width).collect());
            t += width;
        }

        // --- 2. Build nodes + implementations. ------------------------
        let mut avg_time_sum = 0.0f64;
        let mut b = TaskGraphBuilder::new(format!("tgff-{}-{seed}", c.num_tasks), 0.0);
        let mut node_base_times = Vec::with_capacity(c.num_tasks);
        for i in 0..c.num_tasks {
            let base = rng.gen_range(c.time_range.0..c.time_range.1);
            node_base_times.push(base);
            avg_time_sum += base;
            let mut h = b.task(format!("t{i}"));
            // Each task supports a random non-empty subset of PE types with
            // type-affinity-scaled nominal times.
            let mut any = false;
            for ty in 0..c.num_pe_types {
                if rng.gen_bool(0.7) {
                    any = true;
                    add_sw_impl(&mut h, &mut rng, ty, base, c);
                }
            }
            if !any {
                let ty = rng.gen_range(0..c.num_pe_types);
                add_sw_impl(&mut h, &mut rng, ty, base, c);
            }
            if rng.gen_bool(c.accel_fraction) {
                // Accelerators are much faster but occupy a PRR; they
                // target the type hosting the reconfigurable fabric (we use
                // type 0's id space — the scheduler only constrains by
                // pe_type compatibility).
                let ty = rng.gen_range(0..c.num_pe_types);
                let speedup = rng.gen_range(2.0..5.0);
                let im = crate::Implementation::new(
                    crate::ImplId::new(0),
                    PeTypeId::new(ty),
                    SwStack::BareMetal,
                    base / speedup,
                )
                .with_binary_kib(rng.gen_range(c.binary_kib_range.0..c.binary_kib_range.1))
                .with_power_scale(rng.gen_range(1.2..1.8))
                .with_accelerated(true);
                h.implementation_full(im);
            }
        }

        // --- 3. Wire layered edges. ------------------------------------
        let mut in_deg = vec![0usize; c.num_tasks];
        let mut out_deg = vec![0usize; c.num_tasks];
        for li in 1..layers.len() {
            // Candidate parents: previous layer primarily, occasionally any
            // earlier layer (TGFF's "hops").
            let this_layer = layers[li].clone();
            for &node in &this_layer {
                let fan_in = rng.gen_range(1..=c.max_in_degree);
                for _ in 0..fan_in {
                    let parent_layer = if rng.gen_bool(0.8) || li == 1 {
                        li - 1
                    } else {
                        rng.gen_range(0..li)
                    };
                    // Pick a parent with spare out-degree.
                    let candidates: Vec<usize> = layers[parent_layer]
                        .iter()
                        .copied()
                        .filter(|&p| out_deg[p] < c.max_out_degree)
                        .collect();
                    let Some(&parent) = pick(&mut rng, &candidates) else {
                        continue;
                    };
                    if in_deg[node] >= c.max_in_degree {
                        break;
                    }
                    let comm = rng.gen_range(c.time_range.0..c.time_range.1) * c.ccr;
                    let data = rng.gen_range(2.0..32.0);
                    b.edge(parent.into(), node.into(), comm, data);
                    in_deg[node] += 1;
                    out_deg[parent] += 1;
                }
                // Guarantee connectivity: every non-first-layer node needs
                // at least one parent even if degree limits bound above.
                if in_deg[node] == 0 {
                    let parent = *layers[li - 1]
                        .first()
                        .expect("layers are non-empty by construction");
                    let comm = rng.gen_range(c.time_range.0..c.time_range.1) * c.ccr;
                    b.edge(parent.into(), node.into(), comm, 8.0);
                    in_deg[node] += 1;
                    out_deg[parent] += 1;
                }
            }
        }

        // --- 4. Period with slack. --------------------------------------
        // The slack heuristic assumes ~4-way parallelism; clamp to the
        // fastest critical path so deep layered graphs keep a feasible
        // period (the infinite-PE makespan lower bound).
        let mut g = b.build().expect("generated graph is valid by construction");
        let min_times = g.min_nominal_times();
        let floor = g.critical_path(|t| min_times[t.index()]);
        let period = (c.period_slack * avg_time_sum / 4.0).max(floor);
        // Rebuild with the computed period (builder captured period 0).
        g = {
            let mut b2 = TaskGraphBuilder::new(g.name().to_string(), period);
            for task in g.tasks() {
                let mut h = b2.task_with_type(task.name().to_string(), task.type_id());
                for im in g.implementations(task.id()) {
                    h.implementation_full(*im);
                }
            }
            for e in g.edges() {
                b2.edge(e.src(), e.dst(), e.comm_time(), e.data_kib());
            }
            b2.build().expect("period rebuild preserves validity")
        };
        g
    }
}

fn add_sw_impl(
    h: &mut crate::builder::TaskHandle<'_>,
    rng: &mut StdRng,
    ty: usize,
    base: f64,
    c: &TgffConfig,
) {
    let affinity = rng.gen_range(0.7..1.5);
    let stack = if rng.gen_bool(0.5) {
        SwStack::BareMetal
    } else {
        SwStack::Rtos
    };
    let im = crate::Implementation::new(
        crate::ImplId::new(0),
        PeTypeId::new(ty),
        stack,
        base * affinity,
    )
    .with_binary_kib(rng.gen_range(c.binary_kib_range.0..c.binary_kib_range.1))
    .with_power_scale(rng.gen_range(0.8..1.2));
    h.implementation_full(im);
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let gen = TgffGenerator::new(TgffConfig::with_tasks(25));
        assert_eq!(gen.generate(7), gen.generate(7));
    }

    #[test]
    fn different_seeds_differ() {
        let gen = TgffGenerator::new(TgffConfig::with_tasks(25));
        assert_ne!(gen.generate(1), gen.generate(2));
    }

    #[test]
    fn all_paper_sizes_generate() {
        for n in (10..=100).step_by(10) {
            let g = TgffGenerator::new(TgffConfig::with_tasks(n)).generate(n as u64);
            assert_eq!(g.num_tasks(), n);
            assert!(g.num_edges() >= n / 2, "{n} tasks, {} edges", g.num_edges());
            assert!(g.period() > 0.0);
        }
    }

    #[test]
    fn degree_limits_are_respected() {
        let cfg = TgffConfig {
            max_out_degree: 2,
            max_in_degree: 2,
            ..TgffConfig::with_tasks(50)
        };
        let g = TgffGenerator::new(cfg).generate(3);
        for t in g.task_ids() {
            // The connectivity fallback may add one extra edge beyond the
            // planned fan-in, never more.
            assert!(g.predecessors(t).count() <= 3);
        }
    }

    #[test]
    fn some_tasks_are_accelerated() {
        let g = TgffGenerator::new(TgffConfig::with_tasks(60)).generate(11);
        let accel = g
            .task_ids()
            .filter(|&t| {
                g.implementations(t)
                    .iter()
                    .any(super::super::implementation::Implementation::accelerated)
            })
            .count();
        assert!(accel > 0, "expected some accelerated tasks");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn generated_graph_is_always_valid_dag(n in 1usize..60, seed in 0u64..1000) {
            let g = TgffGenerator::new(TgffConfig::with_tasks(n)).generate(seed);
            prop_assert_eq!(g.num_tasks(), n);
            prop_assert_eq!(g.topological_order().len(), n);
            // Every non-source task has a parent (single connected flow per
            // layer chain).
            for t in g.task_ids() {
                prop_assert!(!g.implementations(t).is_empty());
            }
        }
    }
}
