//! Error type for task-graph construction.

use std::fmt;

/// Error produced while validating a [`crate::TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no tasks.
    Empty,
    /// An edge references a task index that does not exist.
    DanglingEdge {
        /// Index of the offending edge.
        edge: usize,
    },
    /// An edge connects a task to itself.
    SelfLoop {
        /// Index of the offending task.
        task: usize,
    },
    /// The dependency relation contains a cycle.
    Cycle,
    /// A task has an empty implementation set.
    NoImplementations {
        /// Index of the offending task.
        task: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph must contain at least one task"),
            GraphError::DanglingEdge { edge } => {
                write!(f, "edge {edge} references a nonexistent task")
            }
            GraphError::SelfLoop { task } => write!(f, "task {task} has a self-loop"),
            GraphError::Cycle => write!(f, "task graph contains a dependency cycle"),
            GraphError::NoImplementations { task } => {
                write!(f, "task {task} has no implementations")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert!(GraphError::Cycle.to_string().contains("cycle"));
        assert!(GraphError::DanglingEdge { edge: 5 }
            .to_string()
            .contains('5'));
    }
}
