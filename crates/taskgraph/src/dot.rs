//! Graphviz (DOT) export for task graphs.

use std::fmt::Write as _;

use crate::TaskGraph;

/// Renders a task graph in Graphviz DOT syntax.
///
/// Nodes are labelled `name (Tn)`, edges carry their transfer time, and
/// tasks with an accelerated implementation are drawn as boxes.
///
/// # Examples
///
/// ```
/// let g = clr_taskgraph::jpeg_encoder();
/// let dot = clr_taskgraph::to_dot(&g);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("QZ"));
/// ```
pub fn to_dot(graph: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for t in graph.tasks() {
        let accelerated = graph
            .implementations(t.id())
            .iter()
            .any(super::implementation::Implementation::accelerated);
        let shape = if accelerated { "box" } else { "ellipse" };
        let _ = writeln!(
            out,
            "  t{} [label=\"{} ({})\", shape={}];",
            t.id().index(),
            t.name(),
            t.id(),
            shape
        );
    }
    for e in graph.edges() {
        let _ = writeln!(
            out,
            "  t{} -> t{} [label=\"{:.1}\"];",
            e.src().index(),
            e.dst().index(),
            e.comm_time()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpeg_encoder;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = jpeg_encoder();
        let dot = to_dot(&g);
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
        for t in g.tasks() {
            assert!(dot.contains(t.name()));
        }
    }

    #[test]
    fn accelerated_tasks_are_boxes() {
        let g = jpeg_encoder();
        let dot = to_dot(&g);
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
    }
}
