//! Fork-join (series-parallel) synthetic graphs.
//!
//! TGFF's generation style produces layered fan-in/fan-out DAGs (see
//! [`crate::TgffGenerator`]); many embedded pipelines are instead strict
//! *series-parallel* compositions — a sequence of fork-join blocks like
//! the JPEG encoder's DCT stage. This generator produces such graphs with
//! the same attribute ranges as the TGFF-style one, giving the experiment
//! harness a second workload shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{SwStack, TaskGraph, TaskGraphBuilder, TaskId, TgffConfig};
use clr_platform::PeTypeId;

/// Generates a series-parallel (fork-join) task graph with exactly
/// `config.num_tasks` tasks, reusing the attribute ranges of a
/// [`TgffConfig`].
///
/// Structure: a chain of blocks; each block is either a single task or a
/// fork of 2–4 parallel branches (1–2 tasks each) closed by a join task.
///
/// # Panics
///
/// Panics if the configuration requests zero tasks or zero PE types.
///
/// # Examples
///
/// ```
/// use clr_taskgraph::{fork_join_graph, graph_metrics, TgffConfig};
/// let g = fork_join_graph(&TgffConfig::with_tasks(20), 3);
/// assert_eq!(g.num_tasks(), 20);
/// // Fork-join graphs are single-source chains of blocks.
/// assert_eq!(g.sources().len(), 1);
/// ```
pub fn fork_join_graph(config: &TgffConfig, seed: u64) -> TaskGraph {
    assert!(config.num_tasks > 0, "need at least one task");
    assert!(config.num_pe_types > 0, "need at least one pe type");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf04c_5011_0000_0007);
    let mut b = TaskGraphBuilder::new(format!("forkjoin-{}-{seed}", config.num_tasks), 0.0);
    let mut avg_time_sum = 0.0f64;

    let add_task = |b: &mut TaskGraphBuilder, rng: &mut StdRng, sum: &mut f64| -> TaskId {
        let base = rng.gen_range(config.time_range.0..config.time_range.1);
        *sum += base;
        let idx = b.num_tasks();
        let mut h = b.task(format!("t{idx}"));
        let mut any = false;
        for ty in 0..config.num_pe_types {
            if rng.gen_bool(0.7) {
                any = true;
                let affinity = rng.gen_range(0.7..1.5);
                let stack = if rng.gen_bool(0.5) {
                    SwStack::BareMetal
                } else {
                    SwStack::Rtos
                };
                let im = crate::Implementation::new(
                    crate::ImplId::new(0),
                    PeTypeId::new(ty),
                    stack,
                    base * affinity,
                )
                .with_binary_kib(
                    rng.gen_range(config.binary_kib_range.0..config.binary_kib_range.1),
                );
                h.implementation_full(im);
            }
        }
        if !any {
            h.implementation(
                PeTypeId::new(rng.gen_range(0..config.num_pe_types)),
                SwStack::Rtos,
                base,
            );
        }
        h.id()
    };

    let comm = |rng: &mut StdRng| -> (f64, f64) {
        (
            rng.gen_range(config.time_range.0..config.time_range.1) * config.ccr,
            rng.gen_range(2.0..32.0),
        )
    };

    // Head of the chain.
    let mut tail = add_task(&mut b, &mut rng, &mut avg_time_sum);
    let mut remaining = config.num_tasks - 1;
    while remaining > 0 {
        // A fork block needs ≥ 3 further tasks (2 branches + join); fall
        // back to chain links otherwise.
        let fork_width = rng.gen_range(2..=4usize);
        let branch_len = rng.gen_range(1..=2usize);
        let block_cost = fork_width * branch_len + 1;
        if remaining >= block_cost && rng.gen_bool(0.6) {
            let mut branch_tails = Vec::with_capacity(fork_width);
            for _ in 0..fork_width {
                let mut prev = tail;
                for _ in 0..branch_len {
                    let t = add_task(&mut b, &mut rng, &mut avg_time_sum);
                    let (ct, kib) = comm(&mut rng);
                    b.edge(prev, t, ct, kib);
                    prev = t;
                }
                branch_tails.push(prev);
            }
            let join = add_task(&mut b, &mut rng, &mut avg_time_sum);
            for bt in branch_tails {
                let (ct, kib) = comm(&mut rng);
                b.edge(bt, join, ct, kib);
            }
            tail = join;
            remaining -= block_cost;
        } else {
            let t = add_task(&mut b, &mut rng, &mut avg_time_sum);
            let (ct, kib) = comm(&mut rng);
            b.edge(tail, t, ct, kib);
            tail = t;
            remaining -= 1;
        }
    }

    // Rebuild with the computed period (mirrors the TGFF-style generator).
    // The slack heuristic assumes ~4-way parallelism, which a mostly
    // serial chain violates, so never drop below the fastest critical
    // path (the infinite-PE makespan lower bound).
    let g = b.build().expect("fork-join construction is valid");
    let min_times = g.min_nominal_times();
    let floor = g.critical_path(|t| min_times[t.index()]);
    let period = (config.period_slack * avg_time_sum / 4.0).max(floor);
    let mut b2 = TaskGraphBuilder::new(g.name().to_string(), period);
    for task in g.tasks() {
        let mut h = b2.task_with_type(task.name().to_string(), task.type_id());
        for im in g.implementations(task.id()) {
            h.implementation_full(*im);
        }
    }
    for e in g.edges() {
        b2.edge(e.src(), e.dst(), e.comm_time(), e.data_kib());
    }
    b2.build().expect("period rebuild preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_metrics;
    use proptest::prelude::*;

    #[test]
    fn exact_task_count_and_single_source() {
        for n in [1usize, 2, 5, 20, 57] {
            let g = fork_join_graph(&TgffConfig::with_tasks(n), 9);
            assert_eq!(g.num_tasks(), n);
            assert!(g.sources().len() == 1 || n == 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TgffConfig::with_tasks(25);
        assert_eq!(fork_join_graph(&cfg, 3), fork_join_graph(&cfg, 3));
        assert_ne!(fork_join_graph(&cfg, 3), fork_join_graph(&cfg, 4));
    }

    #[test]
    fn forks_create_width() {
        let g = fork_join_graph(&TgffConfig::with_tasks(40), 11);
        let m = graph_metrics(&g);
        assert!(
            m.width >= 2,
            "expected at least one fork, width {}",
            m.width
        );
        assert_eq!(g.sinks().len(), 1, "chain of blocks ends in one sink");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn always_valid_dags(n in 1usize..60, seed in 0u64..300) {
            let g = fork_join_graph(&TgffConfig::with_tasks(n), seed);
            prop_assert_eq!(g.num_tasks(), n);
            prop_assert_eq!(g.topological_order().len(), n);
            prop_assert!(g.period() > 0.0);
        }
    }
}
