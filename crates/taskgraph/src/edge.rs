//! Dependency edges.
//!
//! Paper §3.2: each edge `E_e` is characterised by
//! `(ID_e, Src_e, Dst_e, CommT_e)` — index, source and sink task nodes, and
//! the data transfer time. We additionally carry the payload size so the
//! interconnect model can price communication energy.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::TaskId;

/// Index of an edge within a [`crate::TaskGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Creates an edge index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// One directed dependency edge.
///
/// # Examples
///
/// ```
/// use clr_taskgraph::{Edge, EdgeId, TaskId};
/// let e = Edge::new(EdgeId::new(0), TaskId::new(0), TaskId::new(1), 3.5, 16.0);
/// assert_eq!(e.src(), TaskId::new(0));
/// assert_eq!(e.comm_time(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    id: EdgeId,
    src: TaskId,
    dst: TaskId,
    /// Data-transfer time when source and destination run on *different*
    /// PEs (same-PE communication through local memory is free).
    comm_time: f64,
    /// Payload size in KiB (for communication-energy accounting).
    data_kib: f64,
}

impl Edge {
    /// Creates an edge.
    pub fn new(id: EdgeId, src: TaskId, dst: TaskId, comm_time: f64, data_kib: f64) -> Self {
        Self {
            id,
            src,
            dst,
            comm_time,
            data_kib,
        }
    }

    /// This edge's index.
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// Source task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// Destination task.
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// Cross-PE data-transfer time.
    pub fn comm_time(&self) -> f64 {
        self.comm_time
    }

    /// Payload size in KiB.
    pub fn data_kib(&self) -> f64 {
        self.data_kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_accessors() {
        let e = Edge::new(EdgeId::new(2), TaskId::new(0), TaskId::new(3), 1.0, 8.0);
        assert_eq!(e.id().to_string(), "E2");
        assert_eq!(e.dst().index(), 3);
        assert_eq!(e.data_kib(), 8.0);
    }
}
