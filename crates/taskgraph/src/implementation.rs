//! Task implementations.
//!
//! Paper §3.2: each implementation `Impl(t, i)` of task `T_t` is
//! characterised by (1) the type of PE it targets, (2) the system software
//! (bare-metal or an operating system) and (3) the application software
//! (algorithm / language variant). The nominal (fault-free, redundancy-free)
//! execution time, power scaling and binary size stored here are the raw
//! inputs from which `clr-reliability` derives the task-level performance
//! metrics of Table 2 for any cross-layer reliability configuration.

use clr_platform::PeTypeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an implementation within one task's implementation set.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ImplId(usize);

impl ImplId {
    /// Creates an implementation index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ImplId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

impl From<usize> for ImplId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// The system-software stack an implementation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwStack {
    /// Bare-metal execution: lowest overhead, no OS services for temporal
    /// redundancy bookkeeping (retry/checkpoint carry a higher relative
    /// setup cost).
    BareMetal,
    /// A lightweight RTOS: small constant overhead, cheaper checkpoint and
    /// retry orchestration.
    Rtos,
}

impl fmt::Display for SwStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwStack::BareMetal => write!(f, "bare-metal"),
            SwStack::Rtos => write!(f, "rtos"),
        }
    }
}

/// One candidate implementation of a task.
///
/// # Examples
///
/// ```
/// use clr_taskgraph::{ImplId, Implementation, SwStack};
/// use clr_platform::PeTypeId;
///
/// let im = Implementation::new(ImplId::new(0), PeTypeId::new(1), SwStack::Rtos, 120.0)
///     .with_binary_kib(48)
///     .with_power_scale(1.2)
///     .with_accelerated(true);
/// assert!(im.accelerated());
/// assert_eq!(im.nominal_time(), 120.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Implementation {
    id: ImplId,
    pe_type: PeTypeId,
    sw_stack: SwStack,
    /// Fault-free execution time on a speed-factor-1.0 PE of the target
    /// type, with no redundancy applied.
    nominal_time: f64,
    /// Binary (or configuration data) size in KiB that must reside in the
    /// hosting PE's local memory; this is what task migration copies.
    binary_kib: u32,
    /// Multiplier on the hosting PE type's active power while this
    /// implementation executes.
    power_scale: f64,
    /// Whether this implementation is a hardware accelerator that occupies
    /// a partially reconfigurable region (changing it costs a bit-stream
    /// reload in `dRC`).
    accelerated: bool,
}

impl Implementation {
    /// Creates an implementation with 32 KiB binary, power scale 1.0 and no
    /// acceleration; adjust via the `with_*` methods.
    pub fn new(id: ImplId, pe_type: PeTypeId, sw_stack: SwStack, nominal_time: f64) -> Self {
        Self {
            id,
            pe_type,
            sw_stack,
            nominal_time,
            binary_kib: 32,
            power_scale: 1.0,
            accelerated: false,
        }
    }

    /// Sets the binary size in KiB.
    pub fn with_binary_kib(mut self, kib: u32) -> Self {
        self.binary_kib = kib;
        self
    }

    /// Sets the power-scale multiplier.
    pub fn with_power_scale(mut self, scale: f64) -> Self {
        self.power_scale = scale;
        self
    }

    /// Marks this implementation as a PRR-hosted accelerator.
    pub fn with_accelerated(mut self, accelerated: bool) -> Self {
        self.accelerated = accelerated;
        self
    }

    /// This implementation's index within its task's set.
    pub fn id(&self) -> ImplId {
        self.id
    }

    /// The PE type this implementation targets.
    pub fn pe_type(&self) -> PeTypeId {
        self.pe_type
    }

    /// The system-software stack.
    pub fn sw_stack(&self) -> SwStack {
        self.sw_stack
    }

    /// Fault-free, redundancy-free execution time at speed factor 1.0.
    pub fn nominal_time(&self) -> f64 {
        self.nominal_time
    }

    /// Binary size in KiB.
    pub fn binary_kib(&self) -> u32 {
        self.binary_kib
    }

    /// Power-scale multiplier.
    pub fn power_scale(&self) -> f64 {
        self.power_scale
    }

    /// Whether this implementation occupies a PRR.
    pub fn accelerated(&self) -> bool {
        self.accelerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_fields() {
        let im = Implementation::new(ImplId::new(3), PeTypeId::new(0), SwStack::BareMetal, 10.0)
            .with_binary_kib(64)
            .with_power_scale(0.8)
            .with_accelerated(true);
        assert_eq!(im.id().index(), 3);
        assert_eq!(im.binary_kib(), 64);
        assert_eq!(im.power_scale(), 0.8);
        assert!(im.accelerated());
        assert_eq!(im.sw_stack(), SwStack::BareMetal);
    }

    #[test]
    fn defaults_are_sane() {
        let im = Implementation::new(ImplId::new(0), PeTypeId::new(0), SwStack::Rtos, 5.0);
        assert_eq!(im.binary_kib(), 32);
        assert_eq!(im.power_scale(), 1.0);
        assert!(!im.accelerated());
    }

    #[test]
    fn sw_stack_display() {
        assert_eq!(SwStack::BareMetal.to_string(), "bare-metal");
        assert_eq!(SwStack::Rtos.to_string(), "rtos");
    }
}
