//! Task nodes.
//!
//! Paper §3.2: each task `T_t` is characterised by `(ID_t, Type_t, Impl_t)`
//! — index, functionality type, and the set of implementations. The
//! implementation set is stored on the [`crate::TaskGraph`]; this module
//! holds the node itself.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task within a [`crate::TaskGraph`].
///
/// # Examples
///
/// ```
/// use clr_taskgraph::TaskId;
/// assert_eq!(TaskId::new(4).to_string(), "T4");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates a task index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Functionality type of a task (e.g. "DCT", "Huffman"): tasks of the same
/// type can share binaries and accelerator bit-streams.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskTypeId(usize);

impl TaskTypeId {
    /// Creates a task-type index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

impl From<usize> for TaskTypeId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// One task node of the application graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    type_id: TaskTypeId,
    name: String,
}

impl Task {
    /// Creates a task node.
    pub fn new(id: TaskId, type_id: TaskTypeId, name: impl Into<String>) -> Self {
        Self {
            id,
            type_id,
            name: name.into(),
        }
    }

    /// This task's index.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// This task's functionality type.
    pub fn type_id(&self) -> TaskTypeId {
        self.type_id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        assert_eq!(TaskId::from(9).index(), 9);
        assert_eq!(TaskTypeId::from(2).index(), 2);
        assert_eq!(TaskTypeId::new(2).to_string(), "F2");
    }

    #[test]
    fn task_accessors() {
        let t = Task::new(TaskId::new(1), TaskTypeId::new(3), "dct");
        assert_eq!(t.id().index(), 1);
        assert_eq!(t.type_id().index(), 3);
        assert_eq!(t.name(), "dct");
    }
}
