//! The task graph aggregate: nodes, edges, implementation sets, adjacency
//! and graph algorithms (topological order, criticality, critical path).

use serde::{Deserialize, Serialize};

use crate::{Edge, GraphError, ImplId, Implementation, Task, TaskId};

/// A validated, periodic application task graph.
///
/// Construct via [`crate::TaskGraphBuilder`]; validation guarantees the
/// graph is a non-empty DAG, every edge endpoint exists, and every task has
/// at least one implementation.
///
/// # Examples
///
/// ```
/// let g = clr_taskgraph::jpeg_encoder();
/// assert_eq!(g.num_tasks(), 11);
/// assert_eq!(g.num_edges(), 13);
/// let order = g.topological_order();
/// assert_eq!(order.len(), 11);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// `impls[t]` is the implementation set of task `t`.
    impls: Vec<Vec<Implementation>>,
    period: f64,
    /// `preds[t]` / `succs[t]`: edge indices entering / leaving task `t`.
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Internal constructor used by the builder after validation.
    pub(crate) fn from_validated_parts(
        name: String,
        tasks: Vec<Task>,
        edges: Vec<Edge>,
        impls: Vec<Vec<Implementation>>,
        period: f64,
        topology: ValidatedTopology,
    ) -> Self {
        let (preds, succs, topo) = topology;
        Self {
            name,
            tasks,
            edges,
            impls,
            period,
            preds,
            succs,
            topo,
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All task nodes, ordered by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges, ordered by [`crate::EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The application period `P_app`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Looks up a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The implementation set of task `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn implementations(&self, id: TaskId) -> &[Implementation] {
        &self.impls[id.index()]
    }

    /// Looks up one implementation of a task.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn implementation(&self, task: TaskId, im: ImplId) -> &Implementation {
        &self.impls[task.index()][im.index()]
    }

    /// Iterator over all task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::new)
    }

    /// Edges entering `id` (dependencies).
    pub fn in_edges(&self, id: TaskId) -> impl Iterator<Item = &Edge> + '_ {
        self.preds[id.index()].iter().map(|&e| &self.edges[e])
    }

    /// Edges leaving `id` (dependents).
    pub fn out_edges(&self, id: TaskId) -> impl Iterator<Item = &Edge> + '_ {
        self.succs[id.index()].iter().map(|&e| &self.edges[e])
    }

    /// Direct predecessors of `id`.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.in_edges(id).map(super::edge::Edge::src)
    }

    /// Direct successors of `id`.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.out_edges(id).map(super::edge::Edge::dst)
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.preds[t.index()].is_empty())
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.succs[t.index()].is_empty())
            .collect()
    }

    /// A topological ordering of the tasks (computed once at build time).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Number of tasks reachable from `id` (including `id` itself); the raw
    /// ingredient of the criticality weights `ζ_t` in Eq. (2).
    pub fn downstream_reach(&self, id: TaskId) -> usize {
        let mut seen = vec![false; self.tasks.len()];
        let mut stack = vec![id];
        let mut count = 0usize;
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            count += 1;
            for s in self.successors(t) {
                if !seen[s.index()] {
                    stack.push(s);
                }
            }
        }
        count
    }

    /// Normalised task criticalities `ζ_t` (sum to 1): the fraction of the
    /// application's downstream work that depends on each task. A task whose
    /// output feeds many others is more critical to functional reliability
    /// (Eq. 2 uses `F_app = Σ ζ_t · F_t`).
    pub fn criticalities(&self) -> Vec<f64> {
        let reach: Vec<f64> = self
            .task_ids()
            .map(|t| self.downstream_reach(t) as f64)
            .collect();
        let total: f64 = reach.iter().sum();
        if total == 0.0 {
            return vec![1.0 / self.tasks.len() as f64; self.tasks.len()];
        }
        reach.iter().map(|r| r / total).collect()
    }

    /// Length of the critical path through the graph when each task `t`
    /// costs `task_time(t)` and each cross-task edge costs its
    /// `comm_time`. This lower-bounds any schedule's makespan on a platform
    /// with unlimited PEs.
    pub fn critical_path(&self, mut task_time: impl FnMut(TaskId) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        for &t in &self.topo {
            let mut ready = 0.0f64;
            for e in self.in_edges(t) {
                let candidate = finish[e.src().index()] + e.comm_time();
                if candidate > ready {
                    ready = candidate;
                }
            }
            finish[t.index()] = ready + task_time(t);
        }
        finish.iter().copied().fold(0.0, f64::max)
    }

    /// The fastest implementation time of each task (minimum nominal time
    /// over its implementation set).
    pub fn min_nominal_times(&self) -> Vec<f64> {
        self.impls
            .iter()
            .map(|set| {
                set.iter()
                    .map(Implementation::nominal_time)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }
}

/// Adjacency lists (`preds`, `succs`) and a topological order, as produced
/// by [`validate_and_sort`].
pub(crate) type ValidatedTopology = (Vec<Vec<usize>>, Vec<Vec<usize>>, Vec<TaskId>);

/// Validation and topological sorting shared with the builder.
pub(crate) fn validate_and_sort(
    tasks: &[Task],
    edges: &[Edge],
    impls: &[Vec<Implementation>],
) -> Result<ValidatedTopology, GraphError> {
    if tasks.is_empty() {
        return Err(GraphError::Empty);
    }
    let n = tasks.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        if e.src().index() >= n || e.dst().index() >= n {
            return Err(GraphError::DanglingEdge { edge: i });
        }
        if e.src() == e.dst() {
            return Err(GraphError::SelfLoop {
                task: e.src().index(),
            });
        }
        preds[e.dst().index()].push(i);
        succs[e.src().index()].push(i);
    }
    for (t, set) in impls.iter().enumerate() {
        if set.is_empty() {
            return Err(GraphError::NoImplementations { task: t });
        }
    }
    // Kahn's algorithm.
    let mut in_deg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut queue: Vec<TaskId> = (0..n)
        .filter(|&t| in_deg[t] == 0)
        .map(TaskId::new)
        .collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(t) = queue.pop() {
        topo.push(t);
        for &e in &succs[t.index()] {
            let d = edges[e].dst().index();
            in_deg[d] -= 1;
            if in_deg[d] == 0 {
                queue.push(TaskId::new(d));
            }
        }
    }
    if topo.len() != n {
        return Err(GraphError::Cycle);
    }
    Ok((preds, succs, topo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwStack;
    use crate::{jpeg_encoder, TaskGraphBuilder};
    use clr_platform::PeTypeId;

    fn diamond() -> TaskGraph {
        // 0 -> {1, 2} -> 3
        let mut b = TaskGraphBuilder::new("diamond", 100.0);
        for i in 0..4 {
            b.task(format!("t{i}")).implementation(
                PeTypeId::new(0),
                SwStack::BareMetal,
                10.0 + i as f64,
            );
        }
        b.edge(0.into(), 1.into(), 1.0, 4.0);
        b.edge(0.into(), 2.into(), 1.0, 4.0);
        b.edge(1.into(), 3.into(), 1.0, 4.0);
        b.edge(2.into(), 3.into(), 1.0, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = diamond();
        assert_eq!(g.sources(), vec![TaskId::new(0)]);
        assert_eq!(g.sinks(), vec![TaskId::new(3)]);
        let preds: Vec<_> = g.predecessors(3.into()).collect();
        assert_eq!(preds.len(), 2);
        assert_eq!(g.successors(0.into()).count(), 2);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_tasks()];
            for (i, t) in g.topological_order().iter().enumerate() {
                p[t.index()] = i;
            }
            p
        };
        for e in g.edges() {
            assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    #[test]
    fn downstream_reach_counts_descendants() {
        let g = diamond();
        assert_eq!(g.downstream_reach(0.into()), 4);
        assert_eq!(g.downstream_reach(1.into()), 2);
        assert_eq!(g.downstream_reach(3.into()), 1);
    }

    #[test]
    fn criticalities_sum_to_one_and_rank_sources_highest() {
        let g = diamond();
        let z = g.criticalities();
        let sum: f64 = z.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(z[0] > z[1]);
        assert!(z[1] > z[3] - 1e-12);
    }

    #[test]
    fn critical_path_is_longest_chain() {
        let g = diamond();
        // Path 0 -> 2 -> 3: 10 + 1 + 12 + 1 + 13 = 37.
        let cp = g.critical_path(|t| 10.0 + t.index() as f64);
        assert!((cp - 37.0).abs() < 1e-12);
    }

    #[test]
    fn jpeg_sample_has_paper_shape() {
        let g = jpeg_encoder();
        assert_eq!(g.num_tasks(), 11);
        assert_eq!(g.num_edges(), 13);
        assert_eq!(g.sources().len(), 1);
    }

    #[test]
    fn min_nominal_times_pick_fastest_impl() {
        let g = diamond();
        let times = g.min_nominal_times();
        assert_eq!(times[2], 12.0);
    }
}
