//! Incremental construction of task graphs.

use clr_platform::PeTypeId;

use crate::graph::validate_and_sort;
use crate::{
    Edge, EdgeId, GraphError, ImplId, Implementation, SwStack, Task, TaskGraph, TaskId, TaskTypeId,
};

/// Builder for [`TaskGraph`].
///
/// Tasks are appended with [`TaskGraphBuilder::task`], which returns a
/// [`TaskHandle`] used to attach implementations; edges are appended with
/// [`TaskGraphBuilder::edge`]. [`TaskGraphBuilder::build`] validates the
/// whole graph (non-empty, DAG, no dangling edges, every task has at least
/// one implementation).
///
/// # Examples
///
/// ```
/// use clr_taskgraph::{SwStack, TaskGraphBuilder};
/// use clr_platform::PeTypeId;
///
/// let mut b = TaskGraphBuilder::new("pipeline", 500.0);
/// b.task("src").implementation(PeTypeId::new(0), SwStack::BareMetal, 10.0);
/// b.task("dst").implementation(PeTypeId::new(0), SwStack::BareMetal, 20.0);
/// b.edge(0.into(), 1.into(), 2.0, 16.0);
/// let g = b.build()?;
/// assert_eq!(g.num_tasks(), 2);
/// # Ok::<(), clr_taskgraph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskGraphBuilder {
    name: String,
    period: f64,
    tasks: Vec<Task>,
    impls: Vec<Vec<Implementation>>,
    edges: Vec<Edge>,
}

impl TaskGraphBuilder {
    /// Starts a graph with the given name and period.
    pub fn new(name: impl Into<String>, period: f64) -> Self {
        Self {
            name: name.into(),
            period,
            tasks: Vec::new(),
            impls: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Appends a task whose functionality type equals its index (each task
    /// is a distinct function). Returns a handle for adding implementations.
    pub fn task(&mut self, name: impl Into<String>) -> TaskHandle<'_> {
        let id = TaskId::new(self.tasks.len());
        let ty = TaskTypeId::new(self.tasks.len());
        self.tasks.push(Task::new(id, ty, name));
        self.impls.push(Vec::new());
        TaskHandle { builder: self, id }
    }

    /// Appends a task with an explicit functionality type (tasks sharing a
    /// type share binaries/bit-streams).
    pub fn task_with_type(&mut self, name: impl Into<String>, ty: TaskTypeId) -> TaskHandle<'_> {
        let id = TaskId::new(self.tasks.len());
        self.tasks.push(Task::new(id, ty, name));
        self.impls.push(Vec::new());
        TaskHandle { builder: self, id }
    }

    /// Appends a dependency edge with a cross-PE transfer time and payload.
    pub fn edge(&mut self, src: TaskId, dst: TaskId, comm_time: f64, data_kib: f64) -> EdgeId {
        let id = EdgeId::new(self.edges.len());
        self.edges
            .push(Edge::new(id, src, dst, comm_time, data_kib));
        id
    }

    /// Number of tasks added so far.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Validates and finalises the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the graph is empty, has dangling or
    /// self-loop edges, contains a cycle, or any task lacks implementations.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        let topology = validate_and_sort(&self.tasks, &self.edges, &self.impls)?;
        Ok(TaskGraph::from_validated_parts(
            self.name,
            self.tasks,
            self.edges,
            self.impls,
            self.period,
            topology,
        ))
    }
}

/// Handle for attaching implementations to a just-added task.
#[derive(Debug)]
pub struct TaskHandle<'a> {
    builder: &'a mut TaskGraphBuilder,
    id: TaskId,
}

impl TaskHandle<'_> {
    /// The id of the task this handle refers to.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Adds a plain (non-accelerated) implementation and returns the handle
    /// for chaining.
    pub fn implementation(
        &mut self,
        pe_type: PeTypeId,
        sw_stack: SwStack,
        nominal_time: f64,
    ) -> &mut Self {
        let set = &mut self.builder.impls[self.id.index()];
        let im = Implementation::new(ImplId::new(set.len()), pe_type, sw_stack, nominal_time);
        set.push(im);
        self
    }

    /// Adds a fully specified implementation (the implementation's `ImplId`
    /// is rewritten to the next slot in this task's set).
    pub fn implementation_full(&mut self, im: Implementation) -> &mut Self {
        let set = &mut self.builder.impls[self.id.index()];
        let next = ImplId::new(set.len());
        let rebuilt = Implementation::new(next, im.pe_type(), im.sw_stack(), im.nominal_time())
            .with_binary_kib(im.binary_kib())
            .with_power_scale(im.power_scale())
            .with_accelerated(im.accelerated());
        set.push(rebuilt);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_task(b: &mut TaskGraphBuilder, name: &str) -> TaskId {
        let mut h = b.task(name);
        h.implementation(PeTypeId::new(0), SwStack::BareMetal, 1.0);
        h.id()
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(
            TaskGraphBuilder::new("e", 1.0).build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn missing_implementations_are_rejected() {
        let mut b = TaskGraphBuilder::new("m", 1.0);
        b.task("lonely");
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::NoImplementations { task: 0 }
        );
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let mut b = TaskGraphBuilder::new("d", 1.0);
        add_task(&mut b, "a");
        b.edge(0.into(), 7.into(), 1.0, 1.0);
        assert_eq!(b.build().unwrap_err(), GraphError::DanglingEdge { edge: 0 });
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = TaskGraphBuilder::new("s", 1.0);
        add_task(&mut b, "a");
        b.edge(0.into(), 0.into(), 1.0, 1.0);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { task: 0 });
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = TaskGraphBuilder::new("c", 1.0);
        add_task(&mut b, "a");
        add_task(&mut b, "b");
        b.edge(0.into(), 1.into(), 1.0, 1.0);
        b.edge(1.into(), 0.into(), 1.0, 1.0);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn implementations_get_sequential_ids() {
        let mut b = TaskGraphBuilder::new("i", 1.0);
        b.task("a")
            .implementation(PeTypeId::new(0), SwStack::BareMetal, 1.0)
            .implementation(PeTypeId::new(1), SwStack::Rtos, 2.0);
        let g = b.build().unwrap();
        let set = g.implementations(0.into());
        assert_eq!(set.len(), 2);
        assert_eq!(set[0].id().index(), 0);
        assert_eq!(set[1].id().index(), 1);
    }

    #[test]
    fn implementation_full_rewrites_id() {
        let mut b = TaskGraphBuilder::new("f", 1.0);
        let donor = Implementation::new(ImplId::new(9), PeTypeId::new(0), SwStack::Rtos, 3.0)
            .with_accelerated(true);
        b.task("a").implementation_full(donor);
        let g = b.build().unwrap();
        let im = g.implementation(0.into(), ImplId::new(0));
        assert_eq!(im.id().index(), 0);
        assert!(im.accelerated());
    }

    #[test]
    fn shared_task_types_are_preserved() {
        let mut b = TaskGraphBuilder::new("t", 1.0);
        b.task_with_type("a", TaskTypeId::new(5)).implementation(
            PeTypeId::new(0),
            SwStack::BareMetal,
            1.0,
        );
        let g = b.build().unwrap();
        assert_eq!(g.task(0.into()).type_id(), TaskTypeId::new(5));
    }
}
