//! Structural metrics of task graphs.
//!
//! The evaluation sweeps applications from 10 to 100 tasks; these metrics
//! characterise what the generator produced (depth, width, parallelism,
//! communication-to-computation ratio) so experiments can report workload
//! shape alongside results.

use serde::{Deserialize, Serialize};

use crate::{Implementation, TaskGraph};

/// Structural summary of a task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Number of task nodes.
    pub tasks: usize,
    /// Number of dependency edges.
    pub edges: usize,
    /// Longest path length in *hops* (nodes on the longest chain).
    pub depth: usize,
    /// Maximum number of tasks at one depth level (graph width).
    pub width: usize,
    /// `tasks / depth`: the average parallelism available.
    pub parallelism: f64,
    /// Sum of edge transfer times / sum of minimum task execution times —
    /// the communication-to-computation ratio of the graph.
    pub ccr: f64,
    /// Mean implementations per task.
    pub mean_impls_per_task: f64,
    /// Fraction of tasks with at least one accelerated implementation.
    pub accelerated_fraction: f64,
}

/// Computes the structural metrics of a graph.
///
/// # Examples
///
/// ```
/// use clr_taskgraph::{graph_metrics, jpeg_encoder};
/// let m = graph_metrics(&jpeg_encoder());
/// assert_eq!(m.tasks, 11);
/// assert_eq!(m.depth, 8); // S → D → QZ → H1 → H2 → H3 → H4 → OUT
/// assert!(m.parallelism > 1.0);
/// ```
pub fn graph_metrics(graph: &TaskGraph) -> GraphMetrics {
    let n = graph.num_tasks();
    // Depth levels via longest path in hops.
    let mut level = vec![0usize; n];
    for &t in graph.topological_order() {
        let l = graph
            .predecessors(t)
            .map(|p| level[p.index()] + 1)
            .max()
            .unwrap_or(0);
        level[t.index()] = l;
    }
    let depth = level.iter().copied().max().unwrap_or(0) + 1;
    let mut width_at = vec![0usize; depth];
    for &l in &level {
        width_at[l] += 1;
    }
    let width = width_at.iter().copied().max().unwrap_or(0);

    let comm: f64 = graph.edges().iter().map(super::edge::Edge::comm_time).sum();
    let comp: f64 = graph.min_nominal_times().iter().sum();
    let impls: usize = graph
        .task_ids()
        .map(|t| graph.implementations(t).len())
        .sum();
    let accelerated = graph
        .task_ids()
        .filter(|&t| {
            graph
                .implementations(t)
                .iter()
                .any(Implementation::accelerated)
        })
        .count();

    GraphMetrics {
        tasks: n,
        edges: graph.num_edges(),
        depth,
        width,
        parallelism: n as f64 / depth as f64,
        ccr: if comp > 0.0 { comm / comp } else { 0.0 },
        mean_impls_per_task: impls as f64 / n as f64,
        accelerated_fraction: accelerated as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jpeg_encoder, TgffConfig, TgffGenerator};
    use proptest::prelude::*;

    #[test]
    fn jpeg_metrics_match_structure() {
        let m = graph_metrics(&jpeg_encoder());
        assert_eq!(m.tasks, 11);
        assert_eq!(m.edges, 13);
        assert_eq!(m.width, 4); // the four parallel DCT stripes
        assert!(m.accelerated_fraction > 0.3);
        assert!(m.mean_impls_per_task >= 2.0);
    }

    #[test]
    fn chain_has_depth_equal_tasks() {
        use crate::{SwStack, TaskGraphBuilder};
        use clr_platform::PeTypeId;
        let mut b = TaskGraphBuilder::new("chain", 10.0);
        for i in 0..5 {
            b.task(format!("t{i}"))
                .implementation(PeTypeId::new(0), SwStack::BareMetal, 1.0);
        }
        for i in 1..5 {
            b.edge((i - 1).into(), i.into(), 1.0, 1.0);
        }
        let m = graph_metrics(&b.build().unwrap());
        assert_eq!(m.depth, 5);
        assert_eq!(m.width, 1);
        assert!((m.parallelism - 1.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn metric_invariants_hold_for_generated_graphs(n in 2usize..60, seed in 0u64..200) {
            let g = TgffGenerator::new(TgffConfig::with_tasks(n)).generate(seed);
            let m = graph_metrics(&g);
            prop_assert_eq!(m.tasks, n);
            prop_assert!(m.depth >= 1 && m.depth <= n);
            prop_assert!(m.width >= 1 && m.width <= n);
            prop_assert!(m.parallelism >= 1.0 - 1e-12);
            prop_assert!(m.parallelism <= n as f64 + 1e-12);
            prop_assert!(m.ccr >= 0.0);
            prop_assert!((0.0..=1.0).contains(&m.accelerated_fraction));
        }
    }
}
