//! Tenants: the unit of multiplexing in the serving engine.
//!
//! A tenant is one *application × database × policy* triple — one
//! concurrently served application, adapting over its own published
//! design-time artifact with its own adaptation policy. Tenants are
//! fully independent (no shared mutable state), which is what lets the
//! engine fan them across worker threads without changing results.

use std::fmt;

use clr_dse::DesignPointDb;
use clr_learn::LearnConfig;
use clr_platform::Platform;
use clr_runtime::{AuraAgent, HvPolicy, RuntimePolicy, UraPolicy};
use clr_taskgraph::TaskGraph;

use crate::{is_plain_name, Snapshot, SnapshotError};

/// Which adaptation policy a tenant runs, with its parameters.
///
/// The textual form (CLI / config files) is `ura:<p_rc>`,
/// `aura:<p_rc>,<gamma>,<alpha>`,
/// `aura+learn:<p_rc>,<gamma>,<alpha>,<epsilon>@<seed>`, or `hv`:
///
/// ```
/// use clr_serve::PolicySpec;
/// let p: PolicySpec = "aura:0.5,0.6,0.1".parse().unwrap();
/// assert_eq!(p.to_string(), "aura:0.5,0.6,0.1");
/// let l: PolicySpec = "aura+learn:0.5,0.6,0.1,0.05@7".parse().unwrap();
/// assert_eq!(l.to_string(), "aura+learn:0.5,0.6,0.1,0.05@7");
/// assert!(l.learn_config().is_some());
/// assert!("ura:1.5".parse::<PolicySpec>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// Algorithm 1's uRA with user modulation `p_RC`.
    Ura {
        /// User modulation parameter `p_RC ∈ [0, 1]`.
        p_rc: f64,
    },
    /// The AuRA reinforcement-learning agent (frozen at serve time).
    Aura {
        /// User modulation parameter `p_RC ∈ [0, 1]`.
        p_rc: f64,
        /// Discount factor `γ ∈ [0, 1)`.
        gamma: f64,
        /// Learning rate `α ∈ (0, 1]`.
        alpha: f64,
    },
    /// Online AuRA: in-loop learning with shadow evaluation, seeded A/B
    /// rollout, and reconfiguration prefetch (the v2 spec grammar).
    AuraLearn {
        /// User modulation parameter `p_RC ∈ [0, 1]`.
        p_rc: f64,
        /// Discount factor `γ ∈ [0, 1)`.
        gamma: f64,
        /// Learning rate `α ∈ (0, 1]` of the candidate's TD updates.
        alpha: f64,
        /// Exploration rate `ε ∈ [0, 1)` of the serving candidate.
        epsilon: f64,
        /// Seed of the A/B assignment and the exploration stream.
        seed: u64,
    },
    /// The hypervolume baseline (Rehman et al., ref. 11).
    Hv,
}

impl PolicySpec {
    /// Checks the spec's parameters through the runtime crate's own
    /// policy constructors, so the accepted ranges can never drift.
    /// [`Tenant::from_parts`] calls this, which makes the `expect`s in
    /// [`PolicySpec::build`] unreachable for any spec a tenant carries —
    /// including specs assembled directly through the public fields,
    /// which `FromStr` never saw.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Self::Ura { p_rc } => {
                UraPolicy::new(p_rc).map_err(|v| format!("p_rc {v} outside [0, 1]"))?;
            }
            Self::Aura { p_rc, gamma, alpha } => {
                AuraAgent::new(1, p_rc, gamma, alpha)
                    .map_err(|v| format!("aura parameter {v} out of range"))?;
            }
            Self::AuraLearn {
                p_rc,
                gamma,
                alpha,
                epsilon,
                seed,
            } => {
                LearnConfig::new(p_rc, gamma, alpha, epsilon, seed)?;
            }
            Self::Hv => {}
        }
        Ok(())
    }

    /// The learner hyper-parameters this spec carries, `None` for the
    /// frozen policies. A session with a learn config attaches a
    /// [`clr_learn::LearnerState`] in front of the base policy.
    pub fn learn_config(&self) -> Option<LearnConfig> {
        match *self {
            Self::AuraLearn {
                p_rc,
                gamma,
                alpha,
                epsilon,
                seed,
            } => Some(LearnConfig {
                p_rc,
                gamma,
                alpha,
                epsilon,
                seed,
            }),
            Self::Ura { .. } | Self::Aura { .. } | Self::Hv => None,
        }
    }

    /// Instantiates a fresh policy over `num_states` stored points.
    /// Engines build one instance per replay, never sharing learned
    /// state across replays — a replay is a pure function of its inputs.
    pub fn build(&self, num_states: usize) -> Box<dyn RuntimePolicy> {
        match *self {
            Self::Ura { p_rc } => {
                // clr-audit: allow(CLR105) Tenant::from_parts validates every spec this builds
                Box::new(UraPolicy::new(p_rc).expect("checked by PolicySpec::validate"))
            }
            Self::Aura { p_rc, gamma, alpha } => {
                let agent = AuraAgent::new(num_states, p_rc, gamma, alpha);
                // clr-audit: allow(CLR105) Tenant::from_parts validates every spec this builds
                Box::new(agent.expect("checked by PolicySpec::validate"))
            }
            Self::AuraLearn {
                p_rc, gamma, alpha, ..
            } => {
                // The base (incumbent-shaped) agent; the session layers a
                // `LearnerState` over it when `learn_config()` is `Some`.
                let agent = AuraAgent::new(num_states, p_rc, gamma, alpha);
                // clr-audit: allow(CLR105) Tenant::from_parts validates every spec this builds
                Box::new(agent.expect("checked by PolicySpec::validate"))
            }
            Self::Hv => Box::new(HvPolicy::new()),
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ura { p_rc } => write!(f, "ura:{p_rc}"),
            Self::Aura { p_rc, gamma, alpha } => write!(f, "aura:{p_rc},{gamma},{alpha}"),
            Self::AuraLearn {
                p_rc,
                gamma,
                alpha,
                epsilon,
                seed,
            } => write!(f, "aura+learn:{p_rc},{gamma},{alpha},{epsilon}@{seed}"),
            Self::Hv => write!(f, "hv"),
        }
    }
}

impl std::str::FromStr for PolicySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "hv" {
            return Ok(Self::Hv);
        }
        if let Some(arg) = s.strip_prefix("ura:") {
            let p_rc: f64 = arg.parse().map_err(|_| format!("bad p_rc {arg:?}"))?;
            // Validate through the policy constructor so the accepted
            // range can never drift from the runtime crate's.
            UraPolicy::new(p_rc).map_err(|v| format!("p_rc {v} outside [0, 1]"))?;
            return Ok(Self::Ura { p_rc });
        }
        if let Some(args) = s.strip_prefix("aura:") {
            let parts: Vec<&str> = args.split(',').collect();
            if parts.len() != 3 {
                return Err(format!("aura takes p_rc,gamma,alpha — got {args:?}"));
            }
            let num = |p: &str| p.parse::<f64>().map_err(|_| format!("bad number {p:?}"));
            let (p_rc, gamma, alpha) = (num(parts[0])?, num(parts[1])?, num(parts[2])?);
            AuraAgent::new(1, p_rc, gamma, alpha)
                .map_err(|v| format!("aura parameter {v} out of range"))?;
            return Ok(Self::Aura { p_rc, gamma, alpha });
        }
        if let Some(args) = s.strip_prefix("aura+learn:") {
            // v2 grammar: four comma-separated floats, then `@<seed>`.
            let (nums, seed_text) = args
                .split_once('@')
                .ok_or_else(|| format!("aura+learn needs @<seed> — got {args:?}"))?;
            let parts: Vec<&str> = nums.split(',').collect();
            if parts.len() != 4 {
                return Err(format!(
                    "aura+learn takes p_rc,gamma,alpha,epsilon@seed — got {args:?}"
                ));
            }
            let num = |p: &str| p.parse::<f64>().map_err(|_| format!("bad number {p:?}"));
            let (p_rc, gamma, alpha, epsilon) = (
                num(parts[0])?,
                num(parts[1])?,
                num(parts[2])?,
                num(parts[3])?,
            );
            let seed: u64 = seed_text
                .parse()
                .map_err(|_| format!("bad seed {seed_text:?}"))?;
            LearnConfig::new(p_rc, gamma, alpha, epsilon, seed)?;
            return Ok(Self::AuraLearn {
                p_rc,
                gamma,
                alpha,
                epsilon,
                seed,
            });
        }
        Err(format!(
            "unknown policy {s:?} (expected ura:<p_rc>, aura:<p_rc>,<gamma>,<alpha>, \
             aura+learn:<p_rc>,<gamma>,<alpha>,<epsilon>@<seed>, or hv)"
        ))
    }
}

/// One served application: its resolved models, its database, and the
/// policy adapting over it.
#[derive(Debug, Clone)]
pub struct Tenant {
    name: String,
    graph: TaskGraph,
    platform: Platform,
    db: DesignPointDb,
    policy: PolicySpec,
    initial_point: usize,
    /// Snapshot-store generation of the loaded database (0 for an
    /// unlineaged CLRSNAP1 artifact or an in-memory db).
    generation: u64,
}

impl Tenant {
    /// Builds a tenant from a loaded snapshot, resolving its model
    /// descriptors. The initial operating point is index 0.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownModel`] when a descriptor names no bundled
    /// model; [`SnapshotError::Meta`] for an invalid tenant name or an
    /// empty database (an empty artifact cannot serve decisions).
    pub fn from_snapshot(
        name: impl Into<String>,
        snapshot: &Snapshot,
        policy: PolicySpec,
    ) -> Result<Self, SnapshotError> {
        let (graph, platform) = snapshot.resolve()?;
        Self::from_parts(name, graph, platform, snapshot.db().clone(), policy)
    }

    /// Builds a tenant from already-resolved models.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Meta`] for an invalid tenant name, an empty
    /// database, or an out-of-range policy parameter.
    pub fn from_parts(
        name: impl Into<String>,
        graph: TaskGraph,
        platform: Platform,
        db: DesignPointDb,
        policy: PolicySpec,
    ) -> Result<Self, SnapshotError> {
        let name = name.into();
        if !is_plain_name(&name) {
            return Err(SnapshotError::Meta(format!(
                "tenant name {name:?} must match [A-Za-z0-9_-]+"
            )));
        }
        if db.is_empty() {
            return Err(SnapshotError::Meta(format!(
                "tenant {name:?} has an empty database — nothing to serve"
            )));
        }
        policy
            .validate()
            .map_err(|v| SnapshotError::Meta(format!("tenant {name:?} policy: {v}")))?;
        Ok(Self {
            name,
            graph,
            platform,
            db,
            policy,
            initial_point: 0,
            generation: 0,
        })
    }

    /// The tenant's unique name (trace events address tenants by name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resolved task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The resolved platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The tenant's design-point database.
    pub fn db(&self) -> &DesignPointDb {
        &self.db
    }

    /// The adaptation policy specification.
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// The initially active design-point index.
    pub fn initial_point(&self) -> usize {
        self.initial_point
    }

    /// The snapshot-store generation of the loaded database (0 for an
    /// unlineaged artifact). A live `SwapDb` updates the serving
    /// session's generation, not the seated tenant's.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Returns the tenant stamped with the given lineage generation
    /// (what `--tenant` seating records for a CLRSNAP2 artifact).
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Returns the tenant starting from a different stored point.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the database.
    pub fn with_initial_point(mut self, index: usize) -> Self {
        assert!(
            index < self.db.len(),
            "initial point {index} out of range ({} stored)",
            self.db.len()
        );
        self.initial_point = index;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{DesignPoint, PointOrigin};
    use clr_sched::{Mapping, SystemMetrics};
    use clr_taskgraph::jpeg_encoder;

    fn one_point_db() -> DesignPointDb {
        let mut db = DesignPointDb::new("t");
        db.push(DesignPoint::new(
            Mapping::new(vec![]),
            SystemMetrics {
                makespan: 1.0,
                reliability: 0.9,
                energy: 1.0,
                peak_power: 1.0,
                mean_mttf: 1.0,
            },
            PointOrigin::Pareto,
        ));
        db
    }

    #[test]
    fn policy_specs_parse_and_display() {
        for text in [
            "ura:0.5",
            "ura:0",
            "ura:1",
            "aura:0.5,0.6,0.1",
            "aura+learn:0.5,0.6,0.1,0.05@7",
            "aura+learn:0.5,0.6,0.1,0@0",
            "hv",
        ] {
            let p: PolicySpec = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
        }
    }

    #[test]
    fn policy_parse_rejects_bad_parameters() {
        assert!("ura:1.5".parse::<PolicySpec>().is_err());
        assert!("ura:x".parse::<PolicySpec>().is_err());
        assert!("aura:0.5,1.0,0.1".parse::<PolicySpec>().is_err()); // γ < 1
        assert!("aura:0.5,0.5".parse::<PolicySpec>().is_err());
        assert!("mystery".parse::<PolicySpec>().is_err());
        // v2 grammar: strict about arity, the @seed marker, and ranges.
        assert!("aura+learn:0.5,0.6,0.1,0.05".parse::<PolicySpec>().is_err()); // no @seed
        assert!("aura+learn:0.5,0.6,0.1@7".parse::<PolicySpec>().is_err()); // 3 floats
        assert!("aura+learn:0.5,0.6,0.1,1.5@7"
            .parse::<PolicySpec>()
            .is_err()); // ε ≥ 1
        assert!("aura+learn:0.5,0.6,0.1,0.05@x"
            .parse::<PolicySpec>()
            .is_err()); // bad seed
        assert!("aura+learn:0.5,0.6,0.1,0.05@-1"
            .parse::<PolicySpec>()
            .is_err());
    }

    #[test]
    fn learn_config_is_carried_by_the_v2_spec_only() {
        let l: PolicySpec = "aura+learn:0.5,0.6,0.1,0.05@7".parse().unwrap();
        let cfg = l.learn_config().unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.epsilon, 0.05);
        assert!("aura:0.5,0.6,0.1"
            .parse::<PolicySpec>()
            .unwrap()
            .learn_config()
            .is_none());
        assert!(PolicySpec::Hv.learn_config().is_none());
    }

    proptest::proptest! {
        /// v1 and v2 spec grammars round-trip through Display ↔ FromStr.
        #[test]
        fn policy_spec_round_trips(
            p_rc in 0.0f64..=1.0,
            gamma in 0.0f64..0.999,
            alpha in 0.001f64..=1.0,
            epsilon in 0.0f64..0.999,
            seed in 0u64..=u64::MAX,
        ) {
            for spec in [
                PolicySpec::Ura { p_rc },
                PolicySpec::Aura { p_rc, gamma, alpha },
                PolicySpec::AuraLearn { p_rc, gamma, alpha, epsilon, seed },
            ] {
                let back: PolicySpec = spec.to_string().parse().unwrap();
                proptest::prop_assert_eq!(back, spec);
            }
        }
    }

    #[test]
    fn tenant_names_are_validated() {
        let bad = Tenant::from_parts(
            "a b",
            jpeg_encoder(),
            Platform::dac19(),
            one_point_db(),
            PolicySpec::Hv,
        );
        assert!(matches!(bad, Err(SnapshotError::Meta(_))));
    }

    #[test]
    fn empty_databases_are_rejected() {
        let bad = Tenant::from_parts(
            "a",
            jpeg_encoder(),
            Platform::dac19(),
            DesignPointDb::new("empty"),
            PolicySpec::Hv,
        );
        assert!(matches!(bad, Err(SnapshotError::Meta(_))));
    }

    #[test]
    fn out_of_range_policies_are_rejected_even_when_built_directly() {
        // `FromStr` never produces this spec; the public fields can.
        let bad = Tenant::from_parts(
            "a",
            jpeg_encoder(),
            Platform::dac19(),
            one_point_db(),
            PolicySpec::Ura { p_rc: 2.0 },
        );
        assert!(matches!(bad, Err(SnapshotError::Meta(_))));
        assert!(PolicySpec::Aura {
            p_rc: 0.5,
            gamma: 1.5,
            alpha: 0.1
        }
        .validate()
        .is_err());
        assert!(PolicySpec::Hv.validate().is_ok());
    }

    #[test]
    fn snapshot_tenant_resolves_models() {
        let snap = Snapshot::new("jpeg", "dac19", one_point_db());
        let tenant = Tenant::from_snapshot("cam0", &snap, PolicySpec::Ura { p_rc: 0.5 }).unwrap();
        assert_eq!(tenant.name(), "cam0");
        assert_eq!(tenant.db().len(), 1);
        assert_eq!(tenant.initial_point(), 0);
    }

    #[test]
    fn built_policies_implement_the_trait() {
        // Smoke: each spec builds without panicking.
        for spec in [
            PolicySpec::Ura { p_rc: 0.5 },
            PolicySpec::Aura {
                p_rc: 0.5,
                gamma: 0.6,
                alpha: 0.1,
            },
            PolicySpec::Hv,
        ] {
            let _policy = spec.build(4);
        }
    }
}
