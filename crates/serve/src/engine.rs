//! The deterministic multi-tenant event engine.
//!
//! [`replay`] drives a batched QoS-event [`Trace`] through a fleet of
//! [`Tenant`]s: events are routed to tenants by name, each tenant's
//! events are processed in file order through its own
//! [`clr_runtime::RuntimeContext`] and [`clr_runtime::RuntimePolicy`],
//! and independent tenants fan out across `clr-par` workers.
//!
//! ## Determinism contract
//!
//! A replay is a pure function of `(tenants, trace, config)`:
//!
//! - tenants share no mutable state, and each tenant's policy instance
//!   is built fresh inside its worker, so no learned state leaks across
//!   tenants or replays;
//! - `clr_par::par_map` returns tenant outcomes in input order whatever
//!   the thread count;
//! - journal emission ([`ReplayReport::emit_obs`]) and CSV rendering
//!   walk the collected outcomes serially, after the parallel section.
//!
//! `ci.sh` enforces the consequence: `clr-serve replay` byte-identical
//! decision CSVs and deterministic journal sections at `CLR_THREADS=1`
//! and `8`.
//!
//! ## Degradation ladder
//!
//! The engine survives injected decision-layer faults (a seeded
//! [`clr_chaos::FaultPlan`] in [`ReplayConfig::faults`]) instead of
//! panicking. When a fault fires on an event — the policy errors, its
//! time budget is exhausted, or the feasibility index transiently reads
//! empty — the decision is served through a fixed fallback order:
//!
//! 1. **Last-known-good** ([`ServeStatus::DegradedLkg`]): the most
//!    recent successfully decided point, when it still satisfies the
//!    requirement;
//! 2. **Hypervolume baseline** ([`ServeStatus::DegradedBaseline`]):
//!    [`clr_runtime::HvPolicy`]'s max-hypervolume feasible point;
//! 3. **Hold** ([`ServeStatus::DegradedHold`]): keep the current point
//!    and count a violation.
//!
//! A tenant whose stream hits [`ReplayConfig::quarantine_after`]
//! *consecutive* faults is quarantined: its remaining events are
//! recorded (status `quarantined`) but no longer served. Because a
//! fault plan is a pure function of `(seed, rates, tenant index, event
//! ordinal)`, the ladder composes with the parallel tenant fan-out —
//! chaos replays stay bit-identical at any thread count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use clr_chaos::{FaultKind, FaultPlan};
use clr_dse::QosSpec;
use clr_obs::{Event, Obs};

use crate::wire::{PromoteStatus, SwapStatus};
use crate::{Tenant, TenantSession, Trace, TraceEvent};

/// Replay parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Worker threads for the tenant fan-out (`0` = automatic: the
    /// `CLR_THREADS` environment variable, falling back to available
    /// parallelism). The result never depends on this.
    pub threads: usize,
    /// Episode length in cycles for learning policies' value updates
    /// (`f64::INFINITY` disables episode boundaries).
    pub episode_cycles: f64,
    /// The fault-injection plan driving the degradation ladder. The
    /// default is [`FaultPlan::inert`]: no faults, byte-identical to a
    /// pre-chaos replay.
    pub faults: FaultPlan,
    /// Quarantine a tenant after this many *consecutive* faulted events
    /// (`0` disables quarantine).
    pub quarantine_after: usize,
    /// Accumulate per-tenant [`crate::HealthState`] telemetry (on by
    /// default; turn off to shave the last few percent off the serve
    /// hot path when nobody will ask for stats).
    pub telemetry: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            episode_cycles: 1_000.0,
            faults: FaultPlan::inert(0),
            quarantine_after: 3,
            telemetry: true,
        }
    }
}

/// How a decision was served: normally, through a degradation rung, or
/// not at all (quarantined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStatus {
    /// The tenant's own policy decided.
    Normal,
    /// Fault absorbed by re-serving the last-known-good point.
    DegradedLkg,
    /// Fault absorbed by the max-hypervolume baseline policy.
    DegradedBaseline,
    /// Fault absorbed by holding the current point (counts a violation).
    DegradedHold,
    /// The tenant is quarantined; the event was recorded, not served.
    Quarantined,
}

impl ServeStatus {
    /// The stable textual tag (CSV `status` column, journal `action`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Normal => "normal",
            Self::DegradedLkg => "lkg",
            Self::DegradedBaseline => "baseline",
            Self::DegradedHold => "hold",
            Self::Quarantined => "quarantined",
        }
    }

    /// `true` for the three fallback rungs.
    pub fn is_degraded(self) -> bool {
        matches!(
            self,
            Self::DegradedLkg | Self::DegradedBaseline | Self::DegradedHold
        )
    }

    /// `true` when the decision was actually served (degraded or not).
    pub fn is_served(self) -> bool {
        self != Self::Quarantined
    }
}

/// One served decision, as recorded per tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// 1-based event ordinal within the tenant's stream.
    pub event: usize,
    /// Event time (monotonised: a regressing input timestamp is served
    /// at the tenant's current clock).
    pub time: f64,
    /// The requirement served.
    pub spec: QosSpec,
    /// Size of the feasible set.
    pub feasible: usize,
    /// Active point before the event.
    pub from: usize,
    /// Active point after the event.
    pub to: usize,
    /// Reconfiguration cost paid.
    pub drc: f64,
    /// The policy's winning RET score, when it exposes one.
    pub score: Option<f64>,
    /// The policy's `p_RC` parameter, when it exposes one.
    pub p_rc: Option<f64>,
    /// `true` if no stored point satisfied the requirement.
    pub violated: bool,
    /// How the decision was served (which ladder rung, if any).
    pub status: ServeStatus,
    /// The injected fault this decision absorbed, if one fired.
    pub fault: Option<FaultKind>,
}

/// One attempted live database swap, as recorded in the tenant's
/// outcome (successful or not — a failed rollout is an operational
/// event worth journaling, and the ladder's fallback to the running
/// last-known-good database is only visible if the attempt is).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapRecord {
    /// Events served before the swap was applied (the swap takes effect
    /// between event `event` and `event + 1` of the tenant's stream).
    pub event: usize,
    /// Active generation before the attempt.
    pub from_gen: u64,
    /// The offered snapshot's generation (equals `from_gen` when the
    /// artifact never decoded).
    pub to_gen: u64,
    /// Stored points after the attempt (the new db's size on success,
    /// the retained db's size on failure).
    pub points: usize,
    /// How the attempt ended.
    pub status: SwapStatus,
}

/// One attempted candidate-policy promotion, as recorded in the
/// tenant's outcome (a refused promotion — no learner seated — is an
/// operational event worth journaling, like a failed swap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromoteRecord {
    /// Events served before the promotion was applied (it takes effect
    /// between event `event` and `event + 1` of the tenant's stream).
    pub event: usize,
    /// Total promotions applied to the tenant *after* the attempt.
    pub promotions: u64,
    /// How the attempt ended.
    pub status: PromoteStatus,
}

/// Rolled-up online-learning state of one tenant, refreshed after every
/// observed event — what `clr-serve ab` and the prefetch telemetry
/// counters report without walking the full shadow stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnSummary {
    /// Seeded A/B variant the tenant was assigned to.
    pub variant: clr_learn::Variant,
    /// Which value table is currently serving.
    pub serving: clr_learn::Table,
    /// Scored (clean-path) decisions so far.
    pub decisions: u64,
    /// Decisions on which seeded exploration overrode the candidate.
    pub explored: u64,
    /// Reconfigurations whose destination the prefetcher predicted.
    pub prefetch_hits: u64,
    /// Reconfigurations predicted wrongly (or not at all).
    pub prefetch_misses: u64,
    /// Reconfiguration cost overlapped with execution on hits.
    pub prefetch_saved_drc: f64,
    /// Cumulative one-step oracle regret of the incumbent's picks.
    pub cum_live_regret: f64,
    /// Cumulative one-step oracle regret of the candidate's picks.
    pub cum_shadow_regret: f64,
    /// Promotions applied so far.
    pub promotions: u64,
}

impl LearnSummary {
    /// Snapshots the rollup counters of a live learner.
    pub fn of(l: &clr_learn::LearnerState) -> Self {
        Self {
            variant: l.variant(),
            serving: l.serving(),
            decisions: l.decisions(),
            explored: l.explored(),
            prefetch_hits: l.prefetch_hits(),
            prefetch_misses: l.prefetch_misses(),
            prefetch_saved_drc: l.prefetch_saved_drc(),
            cum_live_regret: l.cum_live_regret(),
            cum_shadow_regret: l.cum_shadow_regret(),
            promotions: l.promotions(),
        }
    }
}

/// Aggregate outcome of one tenant's replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Stored design points in the tenant's database.
    pub points: usize,
    /// Events served.
    pub events: usize,
    /// Events that moved the operating point.
    pub reconfigurations: usize,
    /// Events with an empty feasible set.
    pub violations: usize,
    /// Events served through a degradation rung.
    pub degraded: usize,
    /// Events recorded while the tenant was quarantined (not served).
    pub quarantined: usize,
    /// Injected decision-layer faults (every one is absorbed by a rung).
    pub faults: usize,
    /// Sum of paid reconfiguration costs.
    pub total_drc: f64,
    /// Why the tenant could not serve at all (its runtime context failed
    /// to build), when that happened; all its events are then quarantined.
    pub failure: Option<String>,
    /// Active snapshot-store generation of the database that served the
    /// *last* event (seated generation until a successful `SwapDb`).
    pub generation: u64,
    /// Every attempted live database swap, in stream order.
    pub swaps: Vec<SwapRecord>,
    /// Every decision, in service order.
    pub decisions: Vec<DecisionRecord>,
    /// Shadow evaluations of clean scored decisions (learning tenants
    /// only), stamped with stream ordinals, in service order.
    pub shadows: Vec<clr_learn::ShadowRecord>,
    /// Every attempted candidate promotion, in stream order.
    pub promotes: Vec<PromoteRecord>,
    /// Rolled-up online-learning state, `None` for frozen policies.
    pub learn: Option<LearnSummary>,
    /// Live telemetry registry (quantiles, dwell occupancy, rolling
    /// rates, flight recorder), accumulated alongside the counters
    /// above when [`ReplayConfig::telemetry`] is on.
    pub health: crate::HealthState,
}

impl TenantOutcome {
    /// Events actually served, normally or degraded.
    pub fn served(&self) -> usize {
        self.events - self.quarantined
    }
}

/// The outcome of a full replay: per-tenant outcomes in fleet order.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    outcomes: Vec<TenantOutcome>,
    /// Trace events addressed to no tenant in the fleet (counted, not
    /// served — a trace may legitimately cover a larger fleet).
    pub dropped: usize,
    /// The unknown tenant names the dropped events addressed, with their
    /// event counts, in name order. Surfaced as `serve.dropped` counter
    /// increments plus one journal `fault` event per name
    /// ([`ReplayReport::emit_obs`]), warned about by `clr-serve replay`,
    /// and denied by the CLR065 trace lint.
    pub dropped_by_tenant: Vec<(String, usize)>,
}

/// A replay could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// Two tenants share a name, making event routing ambiguous.
    DuplicateTenant(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateTenant(name) => write!(f, "duplicate tenant name {name:?}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Renders the shared per-tenant summary (one line per tenant, fleet
/// order) plus a trailing dropped-events warning when any event
/// addressed a tenant absent from the fleet. Malformed-timestamp
/// absorptions come from the same [`TenantOutcome::health`] registry
/// the telemetry snapshot reports, so the CLI summary and `stats` can
/// never disagree.
pub fn summary_lines(
    outcomes: &[TenantOutcome],
    dropped_by_tenant: &[(String, usize)],
) -> Vec<String> {
    let malformed_slot = FaultKind::ALL
        .iter()
        .position(|k| *k == FaultKind::TraceMalformed)
        .unwrap_or(0);
    let mut lines: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let mut line = format!(
                "tenant {} (gen {}): {} events, {} reconfigurations, {} violations, total dRC {}",
                o.name, o.generation, o.events, o.reconfigurations, o.violations, o.total_drc
            );
            let malformed = o.health.faults_by_kind[malformed_slot];
            if malformed > 0 {
                let _ = write!(line, ", {malformed} malformed");
            }
            if !o.swaps.is_empty() {
                let applied = o
                    .swaps
                    .iter()
                    .filter(|s| s.status == SwapStatus::Swapped)
                    .count();
                let _ = write!(line, ", {}/{} swaps applied", applied, o.swaps.len());
            }
            line
        })
        .collect();
    let dropped: usize = dropped_by_tenant.iter().map(|(_, n)| n).sum();
    if dropped > 0 {
        let names: Vec<String> = dropped_by_tenant
            .iter()
            .map(|(name, count)| format!("{name:?} ({count})"))
            .collect();
        lines.push(format!(
            "warning: {dropped} events dropped — trace addresses tenants absent \
             from the fleet: {}",
            names.join(", ")
        ));
    }
    lines
}

/// Header line of the decision CSV (shared by [`ReplayReport::decisions_csv`]
/// and `clr-serve wire-decode`, so the two outputs stay byte-comparable).
pub const DECISIONS_CSV_HEADER: &str =
    "tenant,event,time,s_max,f_min,feasible,from,to,drc,score,p_rc,violated,status";

impl DecisionRecord {
    /// Renders this decision as one CSV row (no trailing newline), in
    /// the [`DECISIONS_CSV_HEADER`] column order.
    pub fn csv_row(&self, tenant: &str) -> String {
        let opt = |x: Option<f64>| x.map(|v| format!("{v}")).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            tenant,
            self.event,
            self.time,
            self.spec.max_makespan,
            self.spec.min_reliability,
            self.feasible,
            self.from,
            self.to,
            self.drc,
            opt(self.score),
            opt(self.p_rc),
            self.violated,
            self.status.as_str()
        )
    }
}

impl ReplayReport {
    /// Assembles a report from externally collected outcomes (fleet
    /// order) and per-unknown-tenant drop counts (name order) — the
    /// incremental path's bridge to the batch path's renderers:
    /// outcomes accumulated by [`TenantSession`]s or drained from a
    /// daemon render through the same [`Self::decisions_csv`] /
    /// [`Self::emit_obs`] code, so equality of outcomes is equality of
    /// bytes.
    pub fn from_parts(
        outcomes: Vec<TenantOutcome>,
        dropped_by_tenant: Vec<(String, usize)>,
    ) -> Self {
        let dropped = dropped_by_tenant.iter().map(|(_, n)| n).sum();
        Self {
            outcomes,
            dropped,
            dropped_by_tenant,
        }
    }

    /// Per-tenant outcomes, in fleet order.
    pub fn outcomes(&self) -> &[TenantOutcome] {
        &self.outcomes
    }

    /// Total events served across all tenants.
    pub fn total_events(&self) -> usize {
        self.outcomes.iter().map(|o| o.events).sum()
    }

    /// Total decisions actually served (degraded or normal) across all
    /// tenants.
    pub fn total_served(&self) -> usize {
        self.outcomes.iter().map(TenantOutcome::served).sum()
    }

    /// The shared CLI summary: one line per tenant plus (when events
    /// were dropped) a trailing warning line, fed from the same
    /// [`TenantOutcome::health`] registries the telemetry snapshot
    /// reports — `clr-serve replay` and `clr-served` print these
    /// verbatim (with their own program prefix on the warning).
    pub fn summary_lines(&self) -> Vec<String> {
        summary_lines(&self.outcomes, &self.dropped_by_tenant)
    }

    /// Renders the A/B rollout report: per learning tenant one line
    /// (variant, serving table, scored decisions, cumulative regret of
    /// both policies, prefetch hit rate), then per-variant aggregates
    /// and a verdict comparing candidate vs incumbent regret. Empty
    /// when no tenant runs an `aura+learn:` spec.
    pub fn ab_lines(&self) -> Vec<String> {
        use clr_learn::Variant;
        let learners: Vec<(&str, &LearnSummary)> = self
            .outcomes
            .iter()
            .filter_map(|o| o.learn.as_ref().map(|l| (o.name.as_str(), l)))
            .collect();
        if learners.is_empty() {
            return Vec::new();
        }
        let mut lines = Vec::new();
        for (name, l) in &learners {
            let total_moves = l.prefetch_hits + l.prefetch_misses;
            let hit_rate = if total_moves == 0 {
                0.0
            } else {
                #[allow(clippy::cast_precision_loss)]
                let r = l.prefetch_hits as f64 / total_moves as f64;
                r
            };
            lines.push(format!(
                "tenant {name}: {} serving {}, {} scored, regret live {} shadow {}, \
                 prefetch {}/{} ({:.1}% hit), {} explored, {} promotions",
                l.variant,
                l.serving,
                l.decisions,
                l.cum_live_regret,
                l.cum_shadow_regret,
                l.prefetch_hits,
                total_moves,
                hit_rate * 100.0,
                l.explored,
                l.promotions
            ));
        }
        for variant in [Variant::Control, Variant::Treatment] {
            let arm: Vec<&LearnSummary> = learners
                .iter()
                .filter(|(_, l)| l.variant == variant)
                .map(|(_, l)| *l)
                .collect();
            let decisions: u64 = arm.iter().map(|l| l.decisions).sum();
            let live: f64 = arm.iter().map(|l| l.cum_live_regret).sum();
            let shadow: f64 = arm.iter().map(|l| l.cum_shadow_regret).sum();
            lines.push(format!(
                "arm {variant}: {} tenants, {decisions} scored decisions, \
                 cumulative regret live {live} shadow {shadow}",
                arm.len()
            ));
        }
        let live: f64 = learners.iter().map(|(_, l)| l.cum_live_regret).sum();
        let shadow: f64 = learners.iter().map(|(_, l)| l.cum_shadow_regret).sum();
        let saved: f64 = learners.iter().map(|(_, l)| l.prefetch_saved_drc).sum();
        lines.push(format!(
            "verdict: candidate cumulative regret {shadow} vs incumbent {live} — {}; \
             prefetch overlapped {saved} dRC",
            if shadow < live {
                "candidate leads"
            } else if shadow > live {
                "incumbent leads"
            } else {
                "tied"
            }
        ));
        lines
    }

    /// Assembles the schema-v2 fleet telemetry snapshot from the
    /// per-tenant health registries (fleet order) and the
    /// unknown-tenant drop counts (name order) — the same numbers the
    /// CLI summary and a live daemon's `Stats` response report.
    pub fn telemetry(&self, label: &str, include_flight: bool) -> clr_obs::TelemetrySnapshot {
        let dropped: Vec<(String, u64)> = self
            .dropped_by_tenant
            .iter()
            .map(|(name, n)| (name.clone(), u64::try_from(*n).unwrap_or(u64::MAX)))
            .collect();
        crate::health::fleet_snapshot(
            label,
            self.outcomes.iter().map(|o| {
                (
                    o.name.as_str(),
                    o.generation,
                    &o.health,
                    o.decisions.as_slice(),
                )
            }),
            &dropped,
            include_flight,
        )
    }

    /// Renders every decision as CSV
    /// (`tenant,event,time,s_max,f_min,feasible,from,to,drc,score,p_rc,violated,status`),
    /// tenants in fleet order — the byte-comparable decision output.
    pub fn decisions_csv(&self) -> String {
        let mut out = String::from(DECISIONS_CSV_HEADER);
        out.push('\n');
        for o in &self.outcomes {
            for d in &o.decisions {
                let _ = writeln!(out, "{}", d.csv_row(&o.name));
            }
        }
        out
    }

    /// Emits the report into an observability journal: per tenant one
    /// `sim_start`/`sim_end` bracket with a `decision` record per served
    /// event, plus `serve.*` recorder metrics. Call from serial code only
    /// (the deterministic-section contract); [`replay`] has already
    /// collected the outcomes, so this is pure iteration.
    pub fn emit_obs(&self, obs: &Obs) {
        if !obs.enabled() {
            return;
        }
        for o in &self.outcomes {
            obs.emit(Event::SimStart {
                label: o.name.clone(),
                points: o.points,
                seed: 0,
            });
            // Swaps are journaled in stream position: a record with
            // `event == k` applied between the tenant's k-th and
            // (k+1)-th decisions, so it is emitted there.
            let emit_swap = |s: &SwapRecord| {
                obs.emit(Event::DbSwap {
                    label: o.name.clone(),
                    tenant: o.name.clone(),
                    event: s.event,
                    from_gen: s.from_gen,
                    to_gen: s.to_gen,
                    points: s.points,
                    status: s.status.label().to_string(),
                });
                obs.counter_add("serve.db_swaps", 1);
                if s.status == SwapStatus::Swapped {
                    obs.counter_add("serve.db_swaps.applied", 1);
                }
            };
            // Promotions share the swaps' stream-position semantics; a
            // shadow evaluation belongs to exactly one decision and is
            // journaled right after it.
            let emit_promote = |p: &PromoteRecord| {
                obs.emit(Event::Promote {
                    label: o.name.clone(),
                    tenant: o.name.clone(),
                    event: p.event,
                    promotions: p.promotions,
                    status: p.status.label().to_string(),
                });
                obs.counter_add("serve.promotes", 1);
                if p.status == PromoteStatus::Promoted {
                    obs.counter_add("serve.promotes.applied", 1);
                }
            };
            let mut swaps = o.swaps.iter().peekable();
            let mut promotes = o.promotes.iter().peekable();
            let mut shadows = o.shadows.iter().peekable();
            for d in &o.decisions {
                while let Some(s) = swaps.next_if(|s| s.event < d.event) {
                    emit_swap(s);
                }
                while let Some(p) = promotes.next_if(|p| p.event < d.event) {
                    emit_promote(p);
                }
                obs.emit(Event::Decision {
                    event: d.event,
                    cycle: d.time,
                    feasible: d.feasible,
                    from: d.from,
                    to: d.to,
                    drc: d.drc,
                    score: d.score,
                    p_rc: d.p_rc,
                    violated: d.violated,
                });
                while let Some(s) = shadows.next_if(|s| s.event <= d.event) {
                    obs.emit(Event::Shadow {
                        label: o.name.clone(),
                        tenant: o.name.clone(),
                        event: s.event,
                        variant: s.variant.label().to_string(),
                        serving: s.serving.label().to_string(),
                        live_choice: s.live_choice,
                        shadow_choice: s.shadow_choice,
                        live_regret: s.live_regret,
                        shadow_regret: s.shadow_regret,
                    });
                }
                obs.counter_add("serve.events", 1);
                if d.to != d.from {
                    obs.counter_add("serve.reconfigurations", 1);
                }
                if d.violated {
                    obs.counter_add("serve.violations", 1);
                }
                obs.histogram_record("serve.drc", &DRC_BUCKET_BOUNDS, d.drc);
                // One `fault` journal event per absorbed fault (the
                // rung that served it is the action) and one per
                // quarantined event — `clr-verify` cross-checks these
                // counts against the campaign CSV (CLR072).
                if let Some(kind) = d.fault {
                    obs.emit(Event::Fault {
                        label: o.name.clone(),
                        layer: kind.layer().to_string(),
                        kind: kind.name().to_string(),
                        tenant: o.name.clone(),
                        event: d.event,
                        action: d.status.as_str().to_string(),
                    });
                    obs.counter_add("serve.faults.injected", 1);
                    obs.counter_add("serve.faults.absorbed", 1);
                }
                if d.status == ServeStatus::Quarantined {
                    obs.emit(Event::Fault {
                        label: o.name.clone(),
                        layer: "decision".to_string(),
                        kind: "quarantine".to_string(),
                        tenant: o.name.clone(),
                        event: d.event,
                        action: "quarantine".to_string(),
                    });
                    obs.counter_add("serve.quarantined", 1);
                }
                if d.status.is_degraded() {
                    obs.counter_add("serve.degraded", 1);
                }
            }
            for s in swaps {
                emit_swap(s);
            }
            for p in promotes {
                emit_promote(p);
            }
            if let Some(l) = &o.learn {
                obs.counter_add("serve.prefetch_hit", l.prefetch_hits);
                obs.counter_add("serve.prefetch_miss", l.prefetch_misses);
                obs.counter_add("serve.explored", l.explored);
            }
            obs.emit(Event::SimEnd {
                label: o.name.clone(),
                events: o.events,
                reconfigurations: o.reconfigurations,
                violations: o.violations,
                total_drc: o.total_drc,
            });
        }
        // Dropped events are damage, not bookkeeping: one journal `fault`
        // event per unknown tenant name (the `event` field carries the
        // count) so an operator reading the journal sees *which* names
        // the trace addressed in vain.
        for (name, count) in &self.dropped_by_tenant {
            obs.emit(Event::Fault {
                label: name.clone(),
                layer: "serve".to_string(),
                kind: "unknown_tenant".to_string(),
                tenant: name.clone(),
                event: *count,
                action: "dropped".to_string(),
            });
        }
        if self.dropped > 0 {
            obs.counter_add("serve.dropped", self.dropped as u64);
        }
    }
}

/// Upper bucket bounds of the `serve.drc` reconfiguration-cost histogram
/// (mirrors the simulator's `sim.drc`).
const DRC_BUCKET_BOUNDS: [f64; 8] = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0];

/// Replays a trace through a tenant fleet. See the crate docs for the
/// determinism contract.
///
/// Degrades gracefully on edge inputs: an empty fleet serves nothing
/// (all events dropped), an empty trace yields zero-event outcomes,
/// all-infeasible specs count violations while the tenants hold their
/// initial points, and duplicate or regressing timestamps are served in
/// file order on a monotonised clock.
///
/// # Errors
///
/// [`ReplayError::DuplicateTenant`] when two tenants share a name.
pub fn replay(
    tenants: &[Tenant],
    trace: &Trace,
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayError> {
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    for (idx, tenant) in tenants.iter().enumerate() {
        if by_name.insert(tenant.name(), idx).is_some() {
            return Err(ReplayError::DuplicateTenant(tenant.name().to_string()));
        }
    }

    // Route events to tenants; file order within a tenant is preserved.
    // Events addressed to no tenant are *dropped*, counted per unknown
    // name so callers can surface them (journal, CLI warning, CLR065).
    let mut routed: Vec<Vec<&TraceEvent>> = vec![Vec::new(); tenants.len()];
    let mut dropped = 0usize;
    let mut dropped_names: BTreeMap<&str, usize> = BTreeMap::new();
    for event in trace.events() {
        match by_name.get(event.tenant.as_str()) {
            Some(&idx) => routed[idx].push(event),
            None => {
                dropped += 1;
                *dropped_names.entry(event.tenant.as_str()).or_insert(0) += 1;
            }
        }
    }

    // The batch path is a thin loop over the incremental state machine:
    // one `TenantSession` per tenant, fed its routed events in file
    // order. `clr-served` drives the *same* sessions event by event, so
    // batch and incremental serving cannot drift.
    let work: Vec<(usize, Vec<&TraceEvent>)> = routed.into_iter().enumerate().collect();
    let outcomes = clr_par::par_map(config.threads, &work, |_, (idx, events)| {
        let mut session = TenantSession::new(&tenants[*idx], *idx, config);
        for event in events {
            session.feed(event);
        }
        session.into_outcome()
    });

    Ok(ReplayReport {
        outcomes,
        dropped,
        dropped_by_tenant: dropped_names
            .into_iter()
            .map(|(name, count)| (name.to_string(), count))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_trace, PolicySpec, Snapshot};
    use clr_dse::{explore_based, DesignPointDb, DseConfig, ExplorationMode};
    use clr_moea::GaParams;
    use clr_obs::ObsMode;
    use clr_platform::Platform;
    use clr_reliability::{ConfigSpace, FaultModel};
    use clr_runtime::{HvPolicy, RuntimeContext};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn explored_db(seed: u64) -> (clr_taskgraph::TaskGraph, Platform, DesignPointDb) {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(seed);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            seed,
        );
        (graph, platform, db)
    }

    fn tenant(name: &str, seed: u64, policy: PolicySpec) -> Tenant {
        let (graph, platform, db) = explored_db(seed);
        Tenant::from_parts(name, graph, platform, db, policy).unwrap()
    }

    fn fleet() -> Vec<Tenant> {
        vec![
            tenant("cam0", 61, PolicySpec::Ura { p_rc: 0.5 }),
            tenant(
                "nav",
                62,
                PolicySpec::Aura {
                    p_rc: 0.5,
                    gamma: 0.6,
                    alpha: 0.1,
                },
            ),
            tenant("audio", 63, PolicySpec::Hv),
        ]
    }

    #[test]
    fn empty_trace_yields_zero_event_outcomes() {
        let tenants = fleet();
        let report = replay(&tenants, &Trace::default(), &ReplayConfig::default()).unwrap();
        assert_eq!(report.outcomes().len(), 3);
        assert_eq!(report.total_events(), 0);
        assert_eq!(report.dropped, 0);
        // The CSV still has its header.
        assert_eq!(report.decisions_csv().lines().count(), 1);
    }

    #[test]
    fn empty_fleet_drops_everything_gracefully() {
        let tenants = fleet();
        let trace = generate_trace(&tenants, 7, 2_000.0, 100.0);
        assert!(!trace.is_empty());
        let report = replay(&[], &trace, &ReplayConfig::default()).unwrap();
        assert!(report.outcomes().is_empty());
        assert_eq!(report.dropped, trace.len());
        let counted: usize = report.dropped_by_tenant.iter().map(|(_, n)| n).sum();
        assert_eq!(counted, trace.len());
        assert_eq!(report.dropped_by_tenant.len(), 3, "one entry per name");
    }

    #[test]
    fn dropped_events_are_journaled_per_unknown_tenant() {
        // Two tenants in the fleet, a trace addressing a third: the
        // drops must surface as a counter and a journal fault event, not
        // vanish into a silent tally.
        let tenants = vec![tenant("cam0", 61, PolicySpec::Ura { p_rc: 0.5 })];
        let lax = QosSpec::new(f64::MAX, 0.0);
        let mk = |name: &str, time| TraceEvent {
            tenant: name.into(),
            time,
            spec: lax,
        };
        let trace = Trace::new(vec![
            mk("cam0", 0.0),
            mk("ghost", 1.0),
            mk("ghost", 2.0),
            mk("phantom", 3.0),
        ]);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        assert_eq!(report.dropped, 3);
        assert_eq!(
            report.dropped_by_tenant,
            vec![("ghost".to_string(), 2), ("phantom".to_string(), 1)]
        );
        let obs = Obs::new(ObsMode::Json);
        report.emit_obs(&obs);
        let dropped_events: Vec<(String, usize)> = obs
            .det_events()
            .iter()
            .filter_map(|e| match e {
                Event::Fault {
                    kind,
                    tenant,
                    event,
                    action,
                    ..
                } if action == "dropped" => {
                    assert_eq!(kind, "unknown_tenant");
                    Some((tenant.clone(), *event))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            dropped_events,
            vec![("ghost".to_string(), 2), ("phantom".to_string(), 1)]
        );
    }

    #[test]
    fn single_event_single_tenant() {
        let tenants = vec![tenant("solo", 64, PolicySpec::Ura { p_rc: 0.5 })];
        let trace = Trace::new(vec![TraceEvent {
            tenant: "solo".into(),
            time: 10.0,
            spec: QosSpec::new(f64::MAX, 0.0),
        }]);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let o = &report.outcomes()[0];
        assert_eq!(o.events, 1);
        assert_eq!(o.violations, 0);
        assert_eq!(o.decisions[0].feasible, o.points);
    }

    #[test]
    fn all_infeasible_specs_hold_position_and_count_violations() {
        let tenants = vec![tenant("solo", 65, PolicySpec::Ura { p_rc: 0.5 })];
        let impossible = QosSpec::new(0.0, 1.0);
        let trace = Trace::new(
            (0..5)
                .map(|i| TraceEvent {
                    tenant: "solo".into(),
                    time: f64::from(i) * 10.0,
                    spec: impossible,
                })
                .collect(),
        );
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let o = &report.outcomes()[0];
        assert_eq!(o.violations, 5);
        assert_eq!(o.reconfigurations, 0);
        assert!(o.decisions.iter().all(|d| d.to == 0 && d.violated));
    }

    #[test]
    fn duplicate_timestamps_serve_in_file_order() {
        let tenants = vec![tenant("solo", 66, PolicySpec::Ura { p_rc: 1.0 })];
        let lax = QosSpec::new(f64::MAX, 0.0);
        let trace = Trace::new(vec![
            TraceEvent {
                tenant: "solo".into(),
                time: 10.0,
                spec: lax,
            },
            TraceEvent {
                tenant: "solo".into(),
                time: 10.0,
                spec: QosSpec::new(0.0, 1.0),
            },
            // Regressing timestamp: monotonised to 10.0, still served.
            TraceEvent {
                tenant: "solo".into(),
                time: 5.0,
                spec: lax,
            },
        ]);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let o = &report.outcomes()[0];
        assert_eq!(o.events, 3);
        assert_eq!(o.decisions[1].time, 10.0);
        assert_eq!(o.decisions[2].time, 10.0);
        assert!(o.decisions[1].violated);
        assert!(!o.decisions[2].violated);
    }

    #[test]
    fn duplicate_tenant_names_are_rejected() {
        let t = tenant("twin", 67, PolicySpec::Hv);
        let tenants = vec![t.clone(), t];
        let err = replay(&tenants, &Trace::default(), &ReplayConfig::default()).unwrap_err();
        assert_eq!(err, ReplayError::DuplicateTenant("twin".into()));
    }

    #[test]
    fn replay_is_bit_identical_across_thread_counts() {
        let tenants = fleet();
        let trace = generate_trace(&tenants, 11, 5_000.0, 100.0);
        assert!(trace.len() > 50, "trace has {} events", trace.len());
        let run = |threads: usize| {
            let config = ReplayConfig {
                threads,
                ..ReplayConfig::default()
            };
            let report = replay(&tenants, &trace, &config).unwrap();
            let obs = Obs::new(ObsMode::Json);
            report.emit_obs(&obs);
            (
                report.decisions_csv(),
                obs.render_det_jsonl_labeled("replay"),
                report,
            )
        };
        let (csv1, journal1, report1) = run(1);
        let (csv8, journal8, report8) = run(8);
        assert_eq!(report1, report8);
        assert_eq!(csv1, csv8, "decision CSV must be byte-identical");
        assert_eq!(journal1, journal8, "journal must be byte-identical");
        assert!(report1.total_events() > 0);
    }

    #[test]
    fn inert_fault_plan_serves_everything_normally() {
        let tenants = fleet();
        let trace = generate_trace(&tenants, 13, 3_000.0, 100.0);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        assert_eq!(report.total_served(), report.total_events());
        for o in report.outcomes() {
            assert_eq!(o.degraded, 0);
            assert_eq!(o.quarantined, 0);
            assert_eq!(o.faults, 0);
            assert!(o.failure.is_none());
            assert!(o
                .decisions
                .iter()
                .all(|d| d.status == ServeStatus::Normal && d.fault.is_none()));
        }
        // The CSV carries the status column.
        assert!(report
            .decisions_csv()
            .lines()
            .nth(1)
            .unwrap()
            .ends_with(",normal"));
    }

    #[test]
    fn fallback_order_is_lkg_then_baseline_then_hold() {
        use clr_chaos::FaultRates;
        let tenants = vec![tenant("solo", 64, PolicySpec::Ura { p_rc: 0.5 })];
        let lax = QosSpec::new(f64::MAX, 0.0);
        let impossible = QosSpec::new(0.0, 1.0);
        // Find a seed where, for tenant 0, event 1 is clean and events
        // 2–4 are faulted — fault plans are pure functions, so the search
        // is deterministic.
        let seed = (0..10_000u64)
            .find(|&s| {
                let p = FaultPlan::new(s, FaultRates::only(FaultKind::PolicyFailure, 0.5)).unwrap();
                let hit = |e| p.fires(FaultKind::PolicyFailure, 0, e);
                !hit(1) && hit(2) && hit(3) && hit(4)
            })
            .expect("a clean-then-faulted seed exists");
        let plan = FaultPlan::new(seed, FaultRates::only(FaultKind::PolicyFailure, 0.5)).unwrap();
        let config = ReplayConfig {
            faults: plan,
            quarantine_after: 0, // isolate the fallback order from quarantine
            ..ReplayConfig::default()
        };
        let mk = |time, spec| TraceEvent {
            tenant: "solo".into(),
            time,
            spec,
        };
        // Event 1 decides normally (establishing the LKG), event 2 must
        // fall back to it, event 3 (LKG infeasible, baseline available)
        // must take the baseline, event 4 (nothing feasible) must hold.
        let trace = Trace::new(vec![
            mk(0.0, lax),
            mk(10.0, lax),
            mk(20.0, impossible),
            mk(30.0, impossible),
        ]);
        let report = replay(&tenants, &trace, &config).unwrap();
        let d = &report.outcomes()[0].decisions;
        assert_eq!(d[0].status, ServeStatus::Normal);
        assert!(!d[0].violated);
        assert_eq!(d[1].status, ServeStatus::DegradedLkg);
        assert_eq!(d[1].to, d[0].to, "LKG re-serves the last good point");
        assert_eq!(d[1].fault, Some(FaultKind::PolicyFailure));
        // Impossible spec: no LKG (infeasible), no baseline → hold.
        assert_eq!(d[2].status, ServeStatus::DegradedHold);
        assert!(d[2].violated);
        assert_eq!(d[2].to, d[1].to);
        assert_eq!(d[3].status, ServeStatus::DegradedHold);
        assert_eq!(report.outcomes()[0].degraded, 3);
        assert_eq!(report.outcomes()[0].quarantined, 0);
    }

    #[test]
    fn first_event_fault_takes_the_baseline_rung() {
        use clr_chaos::FaultRates;
        // Rate 1.0: every event is faulted. With no LKG established the
        // ladder must land on the hypervolume baseline.
        let tenants = vec![tenant("solo", 64, PolicySpec::Ura { p_rc: 0.5 })];
        let plan = FaultPlan::new(3, FaultRates::only(FaultKind::BudgetExhausted, 1.0)).unwrap();
        let config = ReplayConfig {
            faults: plan,
            quarantine_after: 0,
            ..ReplayConfig::default()
        };
        let trace = Trace::new(vec![TraceEvent {
            tenant: "solo".into(),
            time: 0.0,
            spec: QosSpec::new(f64::MAX, 0.0),
        }]);
        let report = replay(&tenants, &trace, &config).unwrap();
        let d = &report.outcomes()[0].decisions[0];
        assert_eq!(d.status, ServeStatus::DegradedBaseline);
        assert!(!d.violated);
        // The baseline rung is exactly HvPolicy's choice.
        let t = &tenants[0];
        let ctx = RuntimeContext::new(t.graph(), t.platform(), t.db());
        let expect = HvPolicy::new().select(&ctx, &QosSpec::new(f64::MAX, 0.0));
        assert_eq!(Some(d.to), expect);
    }

    #[test]
    fn quarantine_fires_after_exactly_k_consecutive_faults() {
        use clr_chaos::FaultRates;
        let k = 3usize;
        let tenants = vec![tenant("solo", 64, PolicySpec::Ura { p_rc: 0.5 })];
        let plan = FaultPlan::new(9, FaultRates::only(FaultKind::PolicyFailure, 1.0)).unwrap();
        let config = ReplayConfig {
            faults: plan,
            quarantine_after: k,
            ..ReplayConfig::default()
        };
        let lax = QosSpec::new(f64::MAX, 0.0);
        let trace = Trace::new(
            (0..6)
                .map(|i| TraceEvent {
                    tenant: "solo".into(),
                    time: f64::from(i) * 10.0,
                    spec: lax,
                })
                .collect(),
        );
        let report = replay(&tenants, &trace, &config).unwrap();
        let o = &report.outcomes()[0];
        // Events 1..=k are served degraded; everything after is
        // quarantined — not k-1, not k+1.
        for d in &o.decisions[..k] {
            assert!(d.status.is_degraded(), "event {} should degrade", d.event);
        }
        for d in &o.decisions[k..] {
            assert_eq!(d.status, ServeStatus::Quarantined);
        }
        assert_eq!(o.quarantined, 6 - k);
        assert_eq!(o.served(), k);
        assert_eq!(o.faults, k);
        // Quarantine disabled: the same plan degrades every event instead.
        let relaxed = ReplayConfig {
            quarantine_after: 0,
            ..config
        };
        let report = replay(&tenants, &trace, &relaxed).unwrap();
        assert_eq!(report.outcomes()[0].quarantined, 0);
        assert_eq!(report.outcomes()[0].degraded, 6);
    }

    #[test]
    fn clean_event_resets_the_quarantine_counter() {
        use clr_chaos::FaultRates;
        // Find a seed whose fault pattern for events 1..=5 is
        // fault,fault,clean,fault,fault — no 3 consecutive, so a K=3
        // quarantine must never trigger.
        let rates = FaultRates::only(FaultKind::BudgetExhausted, 0.5);
        let seed = (0..100_000u64)
            .find(|&s| {
                let p = FaultPlan::new(s, rates).unwrap();
                let hit = |e| p.fires(FaultKind::BudgetExhausted, 0, e);
                hit(1) && hit(2) && !hit(3) && hit(4) && hit(5)
            })
            .expect("pattern seed exists");
        let tenants = vec![tenant("solo", 64, PolicySpec::Ura { p_rc: 0.5 })];
        let config = ReplayConfig {
            faults: FaultPlan::new(seed, rates).unwrap(),
            quarantine_after: 3,
            ..ReplayConfig::default()
        };
        let lax = QosSpec::new(f64::MAX, 0.0);
        let trace = Trace::new(
            (0..5)
                .map(|i| TraceEvent {
                    tenant: "solo".into(),
                    time: f64::from(i) * 10.0,
                    spec: lax,
                })
                .collect(),
        );
        let report = replay(&tenants, &trace, &config).unwrap();
        let o = &report.outcomes()[0];
        assert_eq!(o.quarantined, 0, "interrupted runs must not quarantine");
        assert_eq!(o.degraded, 4);
        assert_eq!(o.decisions[2].status, ServeStatus::Normal);
    }

    #[test]
    fn chaos_replay_is_bit_identical_across_thread_counts() {
        use clr_chaos::FaultRates;
        let tenants = fleet();
        let trace = generate_trace(&tenants, 11, 5_000.0, 100.0);
        let plan = FaultPlan::new(77, FaultRates::default_campaign()).unwrap();
        let run = |threads: usize| {
            let config = ReplayConfig {
                threads,
                faults: plan,
                ..ReplayConfig::default()
            };
            let report = replay(&tenants, &trace, &config).unwrap();
            let obs = Obs::new(ObsMode::Json);
            report.emit_obs(&obs);
            (
                report.decisions_csv(),
                obs.render_det_jsonl_labeled("chaos"),
                report,
            )
        };
        let (csv1, journal1, report1) = run(1);
        let (csv8, journal8, report8) = run(8);
        assert_eq!(report1, report8);
        assert_eq!(csv1, csv8);
        assert_eq!(journal1, journal8);
        // The default campaign rate actually exercises the ladder …
        let degraded: usize = report1.outcomes().iter().map(|o| o.degraded).sum();
        assert!(degraded > 0, "no fault fired at the default rate");
        // … while keeping service above the survival bar.
        assert!(
            report1.total_served() * 100 >= report1.total_events() * 95,
            "served {}/{}",
            report1.total_served(),
            report1.total_events()
        );
    }

    #[test]
    fn fault_journal_events_match_decision_records() {
        use clr_chaos::FaultRates;
        let tenants = fleet();
        let trace = generate_trace(&tenants, 17, 4_000.0, 100.0);
        let config = ReplayConfig {
            faults: FaultPlan::new(5, FaultRates::default_campaign()).unwrap(),
            ..ReplayConfig::default()
        };
        let report = replay(&tenants, &trace, &config).unwrap();
        let obs = Obs::new(ObsMode::Json);
        report.emit_obs(&obs);
        let events = obs.det_events();
        let fault_events = events
            .iter()
            .filter(|e| matches!(e, Event::Fault { action, .. } if action != "quarantine"))
            .count();
        let quarantine_events = events
            .iter()
            .filter(|e| matches!(e, Event::Fault { action, .. } if action == "quarantine"))
            .count();
        let faults: usize = report.outcomes().iter().map(|o| o.faults).sum();
        let quarantined: usize = report.outcomes().iter().map(|o| o.quarantined).sum();
        assert!(faults > 0);
        assert_eq!(fault_events, faults, "one fault event per absorbed fault");
        assert_eq!(quarantine_events, quarantined);
    }

    #[test]
    fn snapshot_round_trip_preserves_decisions() {
        // Publishing a tenant's database through the snapshot container
        // and reloading it serves identical decisions.
        let (graph, platform, db) = explored_db(68);
        let direct = Tenant::from_parts(
            "t",
            graph,
            platform,
            db.clone(),
            PolicySpec::Ura { p_rc: 0.5 },
        )
        .unwrap();
        let snap = Snapshot::new("jpeg", "dac19", db);
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded.db(), direct.db());
    }

    #[test]
    fn trace_generation_is_deterministic_and_sorted() {
        let tenants = fleet();
        let a = generate_trace(&tenants, 21, 3_000.0, 100.0);
        let b = generate_trace(&tenants, 21, 3_000.0, 100.0);
        assert_eq!(a, b);
        let c = generate_trace(&tenants, 22, 3_000.0, 100.0);
        assert_ne!(a, c, "different seeds give different workloads");
        for w in a.events().windows(2) {
            assert!(w[1].time >= w[0].time, "merged trace is time-sorted");
        }
        // Every tenant is exercised.
        for t in &tenants {
            assert!(a.events().iter().any(|e| e.tenant == t.name()));
        }
    }

    #[test]
    fn journal_brackets_are_well_formed_per_tenant() {
        let tenants = fleet();
        let trace = generate_trace(&tenants, 31, 2_000.0, 100.0);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let obs = Obs::new(ObsMode::Json);
        report.emit_obs(&obs);
        let events = obs.det_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::SimStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::SimEnd { .. }))
            .count();
        assert_eq!(starts, tenants.len());
        assert_eq!(ends, tenants.len());
        let decisions = events
            .iter()
            .filter(|e| matches!(e, Event::Decision { .. }))
            .count();
        assert_eq!(decisions, report.total_events());
    }
}
