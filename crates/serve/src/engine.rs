//! The deterministic multi-tenant event engine.
//!
//! [`replay`] drives a batched QoS-event [`Trace`] through a fleet of
//! [`Tenant`]s: events are routed to tenants by name, each tenant's
//! events are processed in file order through its own
//! [`clr_runtime::RuntimeContext`] and [`clr_runtime::AdaptationPolicy`],
//! and independent tenants fan out across `clr-par` workers.
//!
//! ## Determinism contract
//!
//! A replay is a pure function of `(tenants, trace, config)`:
//!
//! - tenants share no mutable state, and each tenant's policy instance
//!   is built fresh inside its worker, so no learned state leaks across
//!   tenants or replays;
//! - `clr_par::par_map` returns tenant outcomes in input order whatever
//!   the thread count;
//! - journal emission ([`ReplayReport::emit_obs`]) and CSV rendering
//!   walk the collected outcomes serially, after the parallel section.
//!
//! `ci.sh` enforces the consequence: `clr-serve replay` byte-identical
//! decision CSVs and deterministic journal sections at `CLR_THREADS=1`
//! and `8`.

use std::collections::HashMap;
use std::fmt::Write as _;

use clr_dse::QosSpec;
use clr_obs::{Event, Obs};
use clr_runtime::RuntimeContext;

use crate::{Tenant, Trace, TraceEvent};

/// Replay parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Worker threads for the tenant fan-out (`0` = automatic: the
    /// `CLR_THREADS` environment variable, falling back to available
    /// parallelism). The result never depends on this.
    pub threads: usize,
    /// Episode length in cycles for learning policies' value updates
    /// (`f64::INFINITY` disables episode boundaries).
    pub episode_cycles: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            episode_cycles: 1_000.0,
        }
    }
}

/// One served decision, as recorded per tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// 1-based event ordinal within the tenant's stream.
    pub event: usize,
    /// Event time (monotonised: a regressing input timestamp is served
    /// at the tenant's current clock).
    pub time: f64,
    /// The requirement served.
    pub spec: QosSpec,
    /// Size of the feasible set.
    pub feasible: usize,
    /// Active point before the event.
    pub from: usize,
    /// Active point after the event.
    pub to: usize,
    /// Reconfiguration cost paid.
    pub drc: f64,
    /// The policy's winning RET score, when it exposes one.
    pub score: Option<f64>,
    /// The policy's `p_RC` parameter, when it exposes one.
    pub p_rc: Option<f64>,
    /// `true` if no stored point satisfied the requirement.
    pub violated: bool,
}

/// Aggregate outcome of one tenant's replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Stored design points in the tenant's database.
    pub points: usize,
    /// Events served.
    pub events: usize,
    /// Events that moved the operating point.
    pub reconfigurations: usize,
    /// Events with an empty feasible set.
    pub violations: usize,
    /// Sum of paid reconfiguration costs.
    pub total_drc: f64,
    /// Every decision, in service order.
    pub decisions: Vec<DecisionRecord>,
}

/// The outcome of a full replay: per-tenant outcomes in fleet order.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    outcomes: Vec<TenantOutcome>,
    /// Trace events addressed to no tenant in the fleet (counted, not
    /// served — a trace may legitimately cover a larger fleet).
    pub dropped: usize,
}

/// A replay could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// Two tenants share a name, making event routing ambiguous.
    DuplicateTenant(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateTenant(name) => write!(f, "duplicate tenant name {name:?}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl ReplayReport {
    /// Per-tenant outcomes, in fleet order.
    pub fn outcomes(&self) -> &[TenantOutcome] {
        &self.outcomes
    }

    /// Total events served across all tenants.
    pub fn total_events(&self) -> usize {
        self.outcomes.iter().map(|o| o.events).sum()
    }

    /// Renders every decision as CSV
    /// (`tenant,event,time,s_max,f_min,feasible,from,to,drc,score,p_rc,violated`),
    /// tenants in fleet order — the byte-comparable decision output.
    pub fn decisions_csv(&self) -> String {
        let mut out = String::from(
            "tenant,event,time,s_max,f_min,feasible,from,to,drc,score,p_rc,violated\n",
        );
        let opt = |x: Option<f64>| x.map(|v| format!("{v}")).unwrap_or_default();
        for o in &self.outcomes {
            for d in &o.decisions {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{}",
                    o.name,
                    d.event,
                    d.time,
                    d.spec.max_makespan,
                    d.spec.min_reliability,
                    d.feasible,
                    d.from,
                    d.to,
                    d.drc,
                    opt(d.score),
                    opt(d.p_rc),
                    d.violated
                );
            }
        }
        out
    }

    /// Emits the report into an observability journal: per tenant one
    /// `sim_start`/`sim_end` bracket with a `decision` record per served
    /// event, plus `serve.*` recorder metrics. Call from serial code only
    /// (the deterministic-section contract); [`replay`] has already
    /// collected the outcomes, so this is pure iteration.
    pub fn emit_obs(&self, obs: &Obs) {
        if !obs.enabled() {
            return;
        }
        for o in &self.outcomes {
            obs.emit(Event::SimStart {
                label: o.name.clone(),
                points: o.points,
                seed: 0,
            });
            for d in &o.decisions {
                obs.emit(Event::Decision {
                    event: d.event,
                    cycle: d.time,
                    feasible: d.feasible,
                    from: d.from,
                    to: d.to,
                    drc: d.drc,
                    score: d.score,
                    p_rc: d.p_rc,
                    violated: d.violated,
                });
                obs.counter_add("serve.events", 1);
                if d.to != d.from {
                    obs.counter_add("serve.reconfigurations", 1);
                }
                if d.violated {
                    obs.counter_add("serve.violations", 1);
                }
                obs.histogram_record("serve.drc", &DRC_BUCKET_BOUNDS, d.drc);
            }
            obs.emit(Event::SimEnd {
                label: o.name.clone(),
                events: o.events,
                reconfigurations: o.reconfigurations,
                violations: o.violations,
                total_drc: o.total_drc,
            });
        }
        if self.dropped > 0 {
            obs.counter_add("serve.dropped", self.dropped as u64);
        }
    }
}

/// Upper bucket bounds of the `serve.drc` reconfiguration-cost histogram
/// (mirrors the simulator's `sim.drc`).
const DRC_BUCKET_BOUNDS: [f64; 8] = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0];

/// Replays a trace through a tenant fleet. See the
/// [module docs](self) for the determinism contract.
///
/// Degrades gracefully on edge inputs: an empty fleet serves nothing
/// (all events dropped), an empty trace yields zero-event outcomes,
/// all-infeasible specs count violations while the tenants hold their
/// initial points, and duplicate or regressing timestamps are served in
/// file order on a monotonised clock.
///
/// # Errors
///
/// [`ReplayError::DuplicateTenant`] when two tenants share a name.
pub fn replay(
    tenants: &[Tenant],
    trace: &Trace,
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayError> {
    let mut by_name: HashMap<&str, usize> = HashMap::with_capacity(tenants.len());
    for (idx, tenant) in tenants.iter().enumerate() {
        if by_name.insert(tenant.name(), idx).is_some() {
            return Err(ReplayError::DuplicateTenant(tenant.name().to_string()));
        }
    }

    // Route events to tenants; file order within a tenant is preserved.
    let mut routed: Vec<Vec<&TraceEvent>> = vec![Vec::new(); tenants.len()];
    let mut dropped = 0usize;
    for event in trace.events() {
        match by_name.get(event.tenant.as_str()) {
            Some(&idx) => routed[idx].push(event),
            None => dropped += 1,
        }
    }

    let work: Vec<(usize, Vec<&TraceEvent>)> = routed.into_iter().enumerate().collect();
    let episode_cycles = config.episode_cycles;
    let outcomes = clr_par::par_map(config.threads, &work, |_, (idx, events)| {
        replay_tenant(&tenants[*idx], events, episode_cycles)
    });

    Ok(ReplayReport { outcomes, dropped })
}

/// Serves one tenant's event stream (runs on a worker thread; touches
/// only that tenant's state).
fn replay_tenant(tenant: &Tenant, events: &[&TraceEvent], episode_cycles: f64) -> TenantOutcome {
    let ctx = RuntimeContext::new(tenant.graph(), tenant.platform(), tenant.db());
    let mut policy = tenant.policy().build(tenant.db().len());
    let mut current = tenant.initial_point();
    let mut now = 0.0f64;
    let mut next_episode_end = episode_cycles;
    let mut feas_buf: Vec<usize> = Vec::new();

    let mut outcome = TenantOutcome {
        name: tenant.name().to_string(),
        points: tenant.db().len(),
        events: 0,
        reconfigurations: 0,
        violations: 0,
        total_drc: 0.0,
        decisions: Vec::with_capacity(events.len()),
    };

    for event in events {
        // Monotonised clock: duplicate timestamps serve in file order at
        // the same instant; a regressing timestamp serves "now".
        let time = if event.time.is_finite() {
            event.time.max(now)
        } else {
            now
        };
        now = time;
        if episode_cycles.is_finite() && episode_cycles > 0.0 {
            while next_episode_end <= time {
                policy.end_episode();
                next_episode_end += episode_cycles;
            }
        }

        ctx.feasible_into(&event.spec, &mut feas_buf);
        let (decision, score, p_rc) =
            policy.decide_scored_from(&ctx, current, &event.spec, &feas_buf);
        let (to, violated) = match decision {
            Some(p) => (p, false),
            None => (current, true),
        };
        let drc = ctx.drc(current, to);
        policy.observe(&ctx, current, to);

        outcome.events += 1;
        if violated {
            outcome.violations += 1;
        }
        if to != current {
            outcome.reconfigurations += 1;
        }
        outcome.total_drc += drc;
        outcome.decisions.push(DecisionRecord {
            event: outcome.events,
            time,
            spec: event.spec,
            feasible: feas_buf.len(),
            from: current,
            to,
            drc,
            score,
            p_rc,
            violated,
        });
        current = to;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_trace, PolicySpec, Snapshot};
    use clr_dse::{explore_based, DesignPointDb, DseConfig, ExplorationMode};
    use clr_moea::GaParams;
    use clr_obs::ObsMode;
    use clr_platform::Platform;
    use clr_reliability::{ConfigSpace, FaultModel};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn explored_db(seed: u64) -> (clr_taskgraph::TaskGraph, Platform, DesignPointDb) {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(seed);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            seed,
        );
        (graph, platform, db)
    }

    fn tenant(name: &str, seed: u64, policy: PolicySpec) -> Tenant {
        let (graph, platform, db) = explored_db(seed);
        Tenant::from_parts(name, graph, platform, db, policy).unwrap()
    }

    fn fleet() -> Vec<Tenant> {
        vec![
            tenant("cam0", 61, PolicySpec::Ura { p_rc: 0.5 }),
            tenant(
                "nav",
                62,
                PolicySpec::Aura {
                    p_rc: 0.5,
                    gamma: 0.6,
                    alpha: 0.1,
                },
            ),
            tenant("audio", 63, PolicySpec::Hv),
        ]
    }

    #[test]
    fn empty_trace_yields_zero_event_outcomes() {
        let tenants = fleet();
        let report = replay(&tenants, &Trace::default(), &ReplayConfig::default()).unwrap();
        assert_eq!(report.outcomes().len(), 3);
        assert_eq!(report.total_events(), 0);
        assert_eq!(report.dropped, 0);
        // The CSV still has its header.
        assert_eq!(report.decisions_csv().lines().count(), 1);
    }

    #[test]
    fn empty_fleet_drops_everything_gracefully() {
        let tenants = fleet();
        let trace = generate_trace(&tenants, 7, 2_000.0, 100.0);
        assert!(!trace.is_empty());
        let report = replay(&[], &trace, &ReplayConfig::default()).unwrap();
        assert!(report.outcomes().is_empty());
        assert_eq!(report.dropped, trace.len());
    }

    #[test]
    fn single_event_single_tenant() {
        let tenants = vec![tenant("solo", 64, PolicySpec::Ura { p_rc: 0.5 })];
        let trace = Trace::new(vec![TraceEvent {
            tenant: "solo".into(),
            time: 10.0,
            spec: QosSpec::new(f64::MAX, 0.0),
        }]);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let o = &report.outcomes()[0];
        assert_eq!(o.events, 1);
        assert_eq!(o.violations, 0);
        assert_eq!(o.decisions[0].feasible, o.points);
    }

    #[test]
    fn all_infeasible_specs_hold_position_and_count_violations() {
        let tenants = vec![tenant("solo", 65, PolicySpec::Ura { p_rc: 0.5 })];
        let impossible = QosSpec::new(0.0, 1.0);
        let trace = Trace::new(
            (0..5)
                .map(|i| TraceEvent {
                    tenant: "solo".into(),
                    time: f64::from(i) * 10.0,
                    spec: impossible,
                })
                .collect(),
        );
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let o = &report.outcomes()[0];
        assert_eq!(o.violations, 5);
        assert_eq!(o.reconfigurations, 0);
        assert!(o.decisions.iter().all(|d| d.to == 0 && d.violated));
    }

    #[test]
    fn duplicate_timestamps_serve_in_file_order() {
        let tenants = vec![tenant("solo", 66, PolicySpec::Ura { p_rc: 1.0 })];
        let lax = QosSpec::new(f64::MAX, 0.0);
        let trace = Trace::new(vec![
            TraceEvent {
                tenant: "solo".into(),
                time: 10.0,
                spec: lax,
            },
            TraceEvent {
                tenant: "solo".into(),
                time: 10.0,
                spec: QosSpec::new(0.0, 1.0),
            },
            // Regressing timestamp: monotonised to 10.0, still served.
            TraceEvent {
                tenant: "solo".into(),
                time: 5.0,
                spec: lax,
            },
        ]);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let o = &report.outcomes()[0];
        assert_eq!(o.events, 3);
        assert_eq!(o.decisions[1].time, 10.0);
        assert_eq!(o.decisions[2].time, 10.0);
        assert!(o.decisions[1].violated);
        assert!(!o.decisions[2].violated);
    }

    #[test]
    fn duplicate_tenant_names_are_rejected() {
        let t = tenant("twin", 67, PolicySpec::Hv);
        let tenants = vec![t.clone(), t];
        let err = replay(&tenants, &Trace::default(), &ReplayConfig::default()).unwrap_err();
        assert_eq!(err, ReplayError::DuplicateTenant("twin".into()));
    }

    #[test]
    fn replay_is_bit_identical_across_thread_counts() {
        let tenants = fleet();
        let trace = generate_trace(&tenants, 11, 5_000.0, 100.0);
        assert!(trace.len() > 50, "trace has {} events", trace.len());
        let run = |threads: usize| {
            let config = ReplayConfig {
                threads,
                ..ReplayConfig::default()
            };
            let report = replay(&tenants, &trace, &config).unwrap();
            let obs = Obs::new(ObsMode::Json);
            report.emit_obs(&obs);
            (
                report.decisions_csv(),
                obs.render_det_jsonl_labeled("replay"),
                report,
            )
        };
        let (csv1, journal1, report1) = run(1);
        let (csv8, journal8, report8) = run(8);
        assert_eq!(report1, report8);
        assert_eq!(csv1, csv8, "decision CSV must be byte-identical");
        assert_eq!(journal1, journal8, "journal must be byte-identical");
        assert!(report1.total_events() > 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_decisions() {
        // Publishing a tenant's database through the snapshot container
        // and reloading it serves identical decisions.
        let (graph, platform, db) = explored_db(68);
        let direct = Tenant::from_parts(
            "t",
            graph,
            platform,
            db.clone(),
            PolicySpec::Ura { p_rc: 0.5 },
        )
        .unwrap();
        let snap = Snapshot::new("jpeg", "dac19", db);
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded.db(), direct.db());
    }

    #[test]
    fn trace_generation_is_deterministic_and_sorted() {
        let tenants = fleet();
        let a = generate_trace(&tenants, 21, 3_000.0, 100.0);
        let b = generate_trace(&tenants, 21, 3_000.0, 100.0);
        assert_eq!(a, b);
        let c = generate_trace(&tenants, 22, 3_000.0, 100.0);
        assert_ne!(a, c, "different seeds give different workloads");
        for w in a.events().windows(2) {
            assert!(w[1].time >= w[0].time, "merged trace is time-sorted");
        }
        // Every tenant is exercised.
        for t in &tenants {
            assert!(a.events().iter().any(|e| e.tenant == t.name()));
        }
    }

    #[test]
    fn journal_brackets_are_well_formed_per_tenant() {
        let tenants = fleet();
        let trace = generate_trace(&tenants, 31, 2_000.0, 100.0);
        let report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        let obs = Obs::new(ObsMode::Json);
        report.emit_obs(&obs);
        let events = obs.det_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::SimStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::SimEnd { .. }))
            .count();
        assert_eq!(starts, tenants.len());
        assert_eq!(ends, tenants.len());
        let decisions = events
            .iter()
            .filter(|e| matches!(e, Event::Decision { .. }))
            .count();
        assert_eq!(decisions, report.total_events());
    }
}
