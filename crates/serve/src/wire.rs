//! `CLRWIRE1`: the length-prefixed framed binary protocol `clr-served`
//! speaks.
//!
//! Every frame is a fixed 32-byte header followed by a checksummed
//! payload — the same integrity discipline as the `CLRSNAP1` snapshot
//! container:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CLRWIRE1"
//! 8       2     protocol version, u16 LE (currently 1)
//! 10      1     frame kind, u8 (1 request, 2 response, 3 error,
//!               4 shutdown, 5 stats request, 6 stats response,
//!               7 swap-db request, 8 swap-db response,
//!               9 promote request, 10 promote response)
//! 11      5     reserved, must be 0
//! 16      8     payload length in bytes, u64 LE (capped at 64 KiB)
//! 24      8     FNV-1a 64 checksum of the payload, u64 LE
//! 32      n     payload
//! ```
//!
//! All payload integers and float bit patterns are little-endian; floats
//! travel as raw IEEE-754 bits, so a decision's numbers round-trip
//! exactly and the daemon's responses can be byte-compared against batch
//! replay output. Payloads:
//!
//! - **Request**: `seq` u64, `time` f64, `s_max` f64, `f_min` f64,
//!   tenant name (u16 length + UTF-8, `[A-Za-z0-9_-]+`). Carries one QoS
//!   requirement change addressed to a tenant — the wire form of a
//!   [`TraceEvent`].
//! - **Response**: `seq` u64, tenant name, then the full
//!   [`DecisionRecord`]: `event` u64, `time`/`s_max`/`f_min` f64,
//!   `feasible`/`from`/`to` u64, `drc` f64, optional `score`/`p_rc`
//!   (presence u8 + f64), `violated` u8, `status` u8, `fault` u8
//!   (0 = none, else 1 + index into [`FaultKind::ALL`]).
//! - **Error**: `seq` u64 (0 when the offending frame's seq is
//!   unrecoverable), message (u16 length + UTF-8).
//! - **Shutdown**: empty payload; asks the daemon to drain and exit.
//! - **Stats request** (`kind = 5`): `seq` u64, `stats_version` u16,
//!   `flight` u8, optional tenant filter (u16 length + UTF-8, length 0
//!   = whole fleet). Asks a live daemon for its telemetry snapshot.
//!   The version field is decoded leniently so a daemon can answer a
//!   too-new request with a clean error frame instead of a decode
//!   failure; a pre-stats daemon rejects kind 5 outright with its
//!   `unknown frame kind 5` error frame — the version gate for old
//!   peers.
//! - **Stats response** (`kind = 6`): `seq` u64, then the
//!   [`clr_obs::TelemetrySnapshot`] JSON line (u32 length + UTF-8).
//!   A snapshot that would not fit the payload cap is never encoded —
//!   the daemon answers an error frame suggesting a tenant filter.
//! - **Swap-db request** (`kind = 7`): `seq` u64, tenant name, optional
//!   expected generation (presence u8 + u64), snapshot path (u16
//!   length + UTF-8). Asks the daemon to hot-swap the database to the
//!   CLRSNAP1/CLRSNAP2 container at the path — by reference, because a
//!   database does not fit the payload cap. When the expected
//!   generation is present and the loaded snapshot's generation
//!   differs, the swap is refused (compare-and-swap for rollouts).
//! - **Swap-db response** (`kind = 8`): `seq` u64, tenant name, status
//!   u8 (0 swapped, 1 verify-failed, 2 unknown-tenant, 3 io-error),
//!   active generation u64 — the generation actually serving after the
//!   attempt, i.e. the last-known-good one when the swap was refused.
//! - **Promote request** (`kind = 9`): `seq` u64, tenant name. Asks
//!   the daemon to promote the tenant's shadow (candidate) value table
//!   to live — the A/B rollout's "ship it" step. Only meaningful for
//!   tenants running an `aura+learn` policy.
//! - **Promote response** (`kind = 10`): `seq` u64, tenant name,
//!   status u8 (0 promoted, 1 no-learner, 2 unknown-tenant), total
//!   promotions u64 applied to that tenant so far (0 when refused).
//!
//! A decoder rejects bad magic, unsupported versions, unknown kinds,
//! nonzero reserved bytes, over-cap or mismatched lengths and checksum
//! mismatches — a corrupted frame is refused loudly, never served.

use std::io::{Read, Write};

use clr_chaos::FaultKind;
use clr_dse::QosSpec;

use crate::{fnv1a64, is_plain_name, DecisionRecord, ServeStatus, TraceEvent};

/// Magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 8] = *b"CLRWIRE1";

/// The protocol version this build speaks.
pub const WIRE_VERSION: u16 = 1;

/// Size of the fixed frame header.
pub const WIRE_HEADER_LEN: usize = 32;

/// Upper bound on a frame payload. Tenant names are short and decision
/// records are fixed-size, so any larger declared length is hostile or
/// corrupt input, refused before allocation. Telemetry snapshots are
/// the one variable-size payload; the daemon refuses to encode one
/// over this cap (answering an error frame instead).
pub const MAX_PAYLOAD_LEN: usize = 64 * 1024;

/// The stats-payload schema this build speaks (independent of
/// [`WIRE_VERSION`]: the frame layer decodes any declared stats
/// version, the daemon answers a mismatch with an error frame).
/// Version 2 added the per-tenant active db generation.
pub const STATS_VERSION: u16 = 2;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A QoS requirement change addressed to a tenant.
    Request(Request),
    /// The decision serving one request.
    Response(Response),
    /// The request could not be served (unknown tenant, corrupt frame).
    Error(ErrorFrame),
    /// Drain everything admitted so far and exit gracefully.
    Shutdown,
    /// A live telemetry query.
    Stats(StatsRequest),
    /// The telemetry snapshot answering one stats query.
    StatsResponse(StatsResponse),
    /// A live database hot-swap command.
    SwapDb(SwapDbRequest),
    /// The outcome of one swap command.
    SwapDbResponse(SwapDbResponse),
    /// A shadow→live policy promotion command.
    Promote(PromoteRequest),
    /// The outcome of one promotion command.
    PromoteResponse(PromoteResponse),
}

/// The wire form of one QoS event (`kind = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen sequence number, echoed on the response.
    pub seq: u64,
    /// Target tenant name.
    pub tenant: String,
    /// Event time in application-cycle units. Non-finite bit patterns
    /// are representable on the wire; the engine classifies them as
    /// malformed input and serves them through the degradation ladder.
    pub time: f64,
    /// The new requirement.
    pub spec: QosSpec,
}

impl Request {
    /// The trace event this request carries.
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent {
            tenant: self.tenant.clone(),
            time: self.time,
            spec: self.spec,
        }
    }

    /// Wraps a trace event as a request frame.
    pub fn from_event(seq: u64, event: &TraceEvent) -> Self {
        Self {
            seq,
            tenant: event.tenant.clone(),
            time: event.time,
            spec: event.spec,
        }
    }
}

/// The wire form of one served decision (`kind = 2`).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's sequence number.
    pub seq: u64,
    /// The tenant that served it.
    pub tenant: String,
    /// The decision, exactly as the batch engine would record it.
    pub decision: DecisionRecord,
}

/// A live telemetry query (`kind = 5`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsRequest {
    /// Client-chosen sequence number, echoed on the response.
    pub seq: u64,
    /// The stats schema the client speaks ([`STATS_VERSION`]); the
    /// daemon answers other versions with an error frame.
    pub version: u16,
    /// Ask for every tenant's flight-recorder tail (quarantined
    /// tenants' tails are always included).
    pub flight: bool,
    /// Restrict the snapshot to one tenant (also the escape hatch when
    /// a whole-fleet snapshot would exceed the payload cap).
    pub tenant: Option<String>,
}

impl StatsRequest {
    /// A whole-fleet query at this build's stats version.
    pub fn fleet(seq: u64, flight: bool) -> Self {
        Self {
            seq,
            version: STATS_VERSION,
            flight,
            tenant: None,
        }
    }
}

/// The snapshot answering one stats query (`kind = 6`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsResponse {
    /// The query's sequence number.
    pub seq: u64,
    /// The [`clr_obs::TelemetrySnapshot`] v1 canonical JSON line.
    pub snapshot: String,
}

/// A live database hot-swap command (`kind = 7`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapDbRequest {
    /// Client-chosen sequence number, echoed on the response.
    pub seq: u64,
    /// The tenant whose database is swapped.
    pub tenant: String,
    /// Compare-and-swap guard: refuse unless the loaded snapshot's
    /// generation equals this (`None` = unconditional).
    pub expected_generation: Option<u64>,
    /// Filesystem path of the CLRSNAP1/CLRSNAP2 container to load —
    /// by reference, since databases exceed the payload cap.
    pub path: String,
}

/// How one swap command ended (`kind = 8`, the `status` byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapStatus {
    /// The tenant is now serving the new generation.
    Swapped,
    /// The snapshot failed verification (or the generation guard); the
    /// tenant keeps serving its last-known-good database.
    VerifyFailed,
    /// No such tenant in the fleet.
    UnknownTenant,
    /// The snapshot file could not be read.
    IoError,
}

impl SwapStatus {
    /// Stable wire code (append-only).
    pub fn code(self) -> u8 {
        match self {
            Self::Swapped => 0,
            Self::VerifyFailed => 1,
            Self::UnknownTenant => 2,
            Self::IoError => 3,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Swapped),
            1 => Some(Self::VerifyFailed),
            2 => Some(Self::UnknownTenant),
            3 => Some(Self::IoError),
            _ => None,
        }
    }

    /// Stable lowercase label (journal/summary vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            Self::Swapped => "swapped",
            Self::VerifyFailed => "verify-failed",
            Self::UnknownTenant => "unknown-tenant",
            Self::IoError => "io-error",
        }
    }
}

/// The outcome of one swap command (`kind = 8`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapDbResponse {
    /// The command's sequence number.
    pub seq: u64,
    /// The tenant addressed.
    pub tenant: String,
    /// What happened.
    pub status: SwapStatus,
    /// The generation actually serving after the attempt (the
    /// last-known-good one when the swap was refused; 0 for an unknown
    /// tenant).
    pub generation: u64,
}

/// A shadow→live policy promotion command (`kind = 9`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromoteRequest {
    /// Client-chosen sequence number, echoed on the response.
    pub seq: u64,
    /// The tenant whose candidate table is promoted.
    pub tenant: String,
}

/// How one promotion command ended (`kind = 10`, the `status` byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteStatus {
    /// The shadow table now serves as the live incumbent.
    Promoted,
    /// The tenant exists but runs a non-learning policy; nothing to
    /// promote.
    NoLearner,
    /// No such tenant in the fleet.
    UnknownTenant,
}

impl PromoteStatus {
    /// Stable wire code (append-only).
    pub fn code(self) -> u8 {
        match self {
            Self::Promoted => 0,
            Self::NoLearner => 1,
            Self::UnknownTenant => 2,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Promoted),
            1 => Some(Self::NoLearner),
            2 => Some(Self::UnknownTenant),
            _ => None,
        }
    }

    /// Stable lowercase label (journal/summary vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            Self::Promoted => "promoted",
            Self::NoLearner => "no-learner",
            Self::UnknownTenant => "unknown-tenant",
        }
    }
}

/// The outcome of one promotion command (`kind = 10`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromoteResponse {
    /// The command's sequence number.
    pub seq: u64,
    /// The tenant addressed.
    pub tenant: String,
    /// What happened.
    pub status: PromoteStatus,
    /// Total promotions applied to this tenant so far (0 when the
    /// command was refused).
    pub promotions: u64,
}

/// A request-level failure (`kind = 3`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The offending request's sequence number (0 when unrecoverable).
    pub seq: u64,
    /// Human-readable reason.
    pub message: String,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame (header or payload).
    Truncated,
    /// The first 8 bytes are not [`WIRE_MAGIC`].
    BadMagic,
    /// The header declares a version this build does not speak.
    UnsupportedVersion {
        /// Declared version.
        version: u16,
    },
    /// The header's kind byte names no frame type.
    BadKind {
        /// Declared kind byte.
        kind: u8,
    },
    /// Reserved header bytes are nonzero.
    BadReserved,
    /// The declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    OversizedPayload {
        /// Declared length.
        declared: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum declared in the header.
        declared: u64,
        /// Checksum of the bytes present.
        actual: u64,
    },
    /// The payload's fields are malformed (bad name, bad enum code,
    /// wrong length for its kind).
    Malformed(String),
    /// The underlying reader/writer failed.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "stream truncated inside a frame"),
            Self::BadMagic => write!(f, "bad magic (not a CLRWIRE1 frame)"),
            Self::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported protocol version {version} (this build speaks {WIRE_VERSION})"
                )
            }
            Self::BadKind { kind } => write!(f, "unknown frame kind {kind}"),
            Self::BadReserved => write!(f, "reserved header bytes are nonzero"),
            Self::OversizedPayload { declared } => {
                write!(
                    f,
                    "declared payload length {declared} exceeds the {MAX_PAYLOAD_LEN}-byte cap"
                )
            }
            Self::ChecksumMismatch { declared, actual } => {
                write!(
                    f,
                    "payload checksum mismatch (header {declared:#018x}, payload {actual:#018x})"
                )
            }
            Self::Malformed(m) => write!(f, "malformed payload: {m}"),
            Self::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Stable status codes for [`ServeStatus`] on the wire (append-only).
fn status_code(status: ServeStatus) -> u8 {
    match status {
        ServeStatus::Normal => 0,
        ServeStatus::DegradedLkg => 1,
        ServeStatus::DegradedBaseline => 2,
        ServeStatus::DegradedHold => 3,
        ServeStatus::Quarantined => 4,
    }
}

fn status_from_code(code: u8) -> Option<ServeStatus> {
    match code {
        0 => Some(ServeStatus::Normal),
        1 => Some(ServeStatus::DegradedLkg),
        2 => Some(ServeStatus::DegradedBaseline),
        3 => Some(ServeStatus::DegradedHold),
        4 => Some(ServeStatus::Quarantined),
        _ => None,
    }
}

/// `0` = no fault, else `1 + index` into [`FaultKind::ALL`].
fn fault_code(fault: Option<FaultKind>) -> u8 {
    match fault {
        None => 0,
        Some(kind) => {
            let idx = FaultKind::ALL
                .iter()
                .position(|&k| k == kind)
                .unwrap_or_default();
            u8::try_from(idx + 1).unwrap_or_default()
        }
    }
}

fn fault_from_code(code: u8) -> Result<Option<FaultKind>, WireError> {
    if code == 0 {
        return Ok(None);
    }
    FaultKind::ALL
        .get(usize::from(code) - 1)
        .copied()
        .map(Some)
        .ok_or_else(|| WireError::Malformed(format!("unknown fault code {code}")))
}

/// Little-endian payload writer.
#[derive(Default)]
struct PayloadWriter {
    bytes: Vec<u8>,
}

impl PayloadWriter {
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => {
                self.u8(0);
                self.f64(0.0);
            }
        }
    }
    fn name(&mut self, name: &str) {
        debug_assert!(is_plain_name(name), "wire names are [A-Za-z0-9_-]+");
        let len = u16::try_from(name.len()).unwrap_or(u16::MAX);
        self.bytes.extend_from_slice(&len.to_le_bytes());
        self.bytes
            .extend_from_slice(&name.as_bytes()[..usize::from(len)]);
    }
}

/// Little-endian payload reader.
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WireError::Malformed("payload shorter than its fields".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let raw = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        let raw = self.take(2)?;
        Ok(u16::from_le_bytes([raw[0], raw[1]]))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        let present = self.u8()?;
        let value = self.f64()?;
        match present {
            0 => Ok(None),
            1 => Ok(Some(value)),
            other => Err(WireError::Malformed(format!(
                "bad option flag {other} (expected 0 or 1)"
            ))),
        }
    }
    fn name(&mut self) -> Result<String, WireError> {
        let raw = self.take(2)?;
        let len = usize::from(u16::from_le_bytes([raw[0], raw[1]]));
        let bytes = self.take(len)?;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| WireError::Malformed("tenant name is not UTF-8".into()))?;
        if !is_plain_name(name) {
            return Err(WireError::Malformed(format!("bad tenant name {name:?}")));
        }
        Ok(name.to_string())
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

impl Frame {
    /// The header kind byte of this frame.
    pub fn kind(&self) -> u8 {
        match self {
            Self::Request(_) => 1,
            Self::Response(_) => 2,
            Self::Error(_) => 3,
            Self::Shutdown => 4,
            Self::Stats(_) => 5,
            Self::StatsResponse(_) => 6,
            Self::SwapDb(_) => 7,
            Self::SwapDbResponse(_) => 8,
            Self::Promote(_) => 9,
            Self::PromoteResponse(_) => 10,
        }
    }

    /// Encodes the frame (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = PayloadWriter::default();
        match self {
            Self::Request(r) => {
                payload.u64(r.seq);
                payload.f64(r.time);
                payload.f64(r.spec.max_makespan);
                payload.f64(r.spec.min_reliability);
                payload.name(&r.tenant);
            }
            Self::Response(r) => {
                let d = &r.decision;
                payload.u64(r.seq);
                payload.name(&r.tenant);
                payload.u64(d.event as u64);
                payload.f64(d.time);
                payload.f64(d.spec.max_makespan);
                payload.f64(d.spec.min_reliability);
                payload.u64(d.feasible as u64);
                payload.u64(d.from as u64);
                payload.u64(d.to as u64);
                payload.f64(d.drc);
                payload.opt_f64(d.score);
                payload.opt_f64(d.p_rc);
                payload.u8(u8::from(d.violated));
                payload.u8(status_code(d.status));
                payload.u8(fault_code(d.fault));
            }
            Self::Error(e) => {
                payload.u64(e.seq);
                let msg = e.message.as_bytes();
                let len = u16::try_from(msg.len()).unwrap_or(u16::MAX);
                payload.bytes.extend_from_slice(&len.to_le_bytes());
                payload.bytes.extend_from_slice(&msg[..usize::from(len)]);
            }
            Self::Shutdown => {}
            Self::Stats(s) => {
                payload.u64(s.seq);
                payload.u16(s.version);
                payload.u8(u8::from(s.flight));
                match &s.tenant {
                    Some(name) => payload.name(name),
                    None => payload.u16(0), // length 0 = whole fleet
                }
            }
            Self::StatsResponse(s) => {
                payload.u64(s.seq);
                let text = s.snapshot.as_bytes();
                let len = u32::try_from(text.len()).unwrap_or(u32::MAX);
                payload.bytes.extend_from_slice(&len.to_le_bytes());
                payload
                    .bytes
                    .extend_from_slice(&text[..usize::try_from(len).unwrap_or(0)]);
            }
            Self::SwapDb(s) => {
                payload.u64(s.seq);
                payload.name(&s.tenant);
                match s.expected_generation {
                    Some(g) => {
                        payload.u8(1);
                        payload.u64(g);
                    }
                    None => {
                        payload.u8(0);
                        payload.u64(0);
                    }
                }
                let path = s.path.as_bytes();
                let len = u16::try_from(path.len()).unwrap_or(u16::MAX);
                payload.bytes.extend_from_slice(&len.to_le_bytes());
                payload.bytes.extend_from_slice(&path[..usize::from(len)]);
            }
            Self::SwapDbResponse(s) => {
                payload.u64(s.seq);
                payload.name(&s.tenant);
                payload.u8(s.status.code());
                payload.u64(s.generation);
            }
            Self::Promote(p) => {
                payload.u64(p.seq);
                payload.name(&p.tenant);
            }
            Self::PromoteResponse(p) => {
                payload.u64(p.seq);
                payload.name(&p.tenant);
                payload.u8(p.status.code());
                payload.u64(p.promotions);
            }
        }
        let payload = payload.bytes;
        let mut out = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(self.kind());
        out.extend_from_slice(&[0u8; 5]);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes one frame from a validated header + payload pair.
    fn from_parts(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = PayloadReader::new(payload);
        let frame = match kind {
            1 => {
                let seq = r.u64()?;
                let time = r.f64()?;
                let s_max = r.f64()?;
                let f_min = r.f64()?;
                let tenant = r.name()?;
                Self::Request(Request {
                    seq,
                    tenant,
                    time,
                    spec: QosSpec::new(s_max, f_min),
                })
            }
            2 => {
                let seq = r.u64()?;
                let tenant = r.name()?;
                let event = usize::try_from(r.u64()?)
                    .map_err(|_| WireError::Malformed("event ordinal overflows usize".into()))?;
                let time = r.f64()?;
                let s_max = r.f64()?;
                let f_min = r.f64()?;
                let idx = |v: u64| {
                    usize::try_from(v)
                        .map_err(|_| WireError::Malformed("point index overflows usize".into()))
                };
                let feasible = idx(r.u64()?)?;
                let from = idx(r.u64()?)?;
                let to = idx(r.u64()?)?;
                let drc = r.f64()?;
                let score = r.opt_f64()?;
                let p_rc = r.opt_f64()?;
                let violated = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "bad violated flag {other} (expected 0 or 1)"
                        )))
                    }
                };
                let status = status_from_code(r.u8()?)
                    .ok_or_else(|| WireError::Malformed("unknown status code".to_string()))?;
                let fault = fault_from_code(r.u8()?)?;
                Self::Response(Response {
                    seq,
                    tenant,
                    decision: DecisionRecord {
                        event,
                        time,
                        spec: QosSpec::new(s_max, f_min),
                        feasible,
                        from,
                        to,
                        drc,
                        score,
                        p_rc,
                        violated,
                        status,
                        fault,
                    },
                })
            }
            3 => {
                let seq = r.u64()?;
                let raw = r.take(2)?;
                let len = usize::from(u16::from_le_bytes([raw[0], raw[1]]));
                let bytes = r.take(len)?;
                let message = std::str::from_utf8(bytes)
                    .map_err(|_| WireError::Malformed("error message is not UTF-8".into()))?
                    .to_string();
                Self::Error(ErrorFrame { seq, message })
            }
            4 => Self::Shutdown,
            5 => {
                let seq = r.u64()?;
                let version = r.u16()?;
                let flight = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "bad flight flag {other} (expected 0 or 1)"
                        )))
                    }
                };
                // Length 0 means "whole fleet"; any other length is a
                // plain tenant name.
                let len = usize::from(r.u16()?);
                let tenant = if len == 0 {
                    None
                } else {
                    let bytes = r.take(len)?;
                    let name = std::str::from_utf8(bytes)
                        .map_err(|_| WireError::Malformed("tenant name is not UTF-8".into()))?;
                    if !is_plain_name(name) {
                        return Err(WireError::Malformed(format!("bad tenant name {name:?}")));
                    }
                    Some(name.to_string())
                };
                Self::Stats(StatsRequest {
                    seq,
                    version,
                    flight,
                    tenant,
                })
            }
            6 => {
                let seq = r.u64()?;
                let raw = r.take(4)?;
                let len = usize::try_from(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
                    .map_err(|_| WireError::Malformed("snapshot length overflows usize".into()))?;
                let bytes = r.take(len)?;
                let snapshot = std::str::from_utf8(bytes)
                    .map_err(|_| WireError::Malformed("snapshot is not UTF-8".into()))?
                    .to_string();
                Self::StatsResponse(StatsResponse { seq, snapshot })
            }
            7 => {
                let seq = r.u64()?;
                let tenant = r.name()?;
                let present = r.u8()?;
                let value = r.u64()?;
                let expected_generation = match present {
                    0 => None,
                    1 => Some(value),
                    other => {
                        return Err(WireError::Malformed(format!(
                            "bad option flag {other} (expected 0 or 1)"
                        )))
                    }
                };
                let raw = r.take(2)?;
                let len = usize::from(u16::from_le_bytes([raw[0], raw[1]]));
                let bytes = r.take(len)?;
                let path = std::str::from_utf8(bytes)
                    .map_err(|_| WireError::Malformed("snapshot path is not UTF-8".into()))?
                    .to_string();
                if path.is_empty() {
                    return Err(WireError::Malformed("empty snapshot path".into()));
                }
                Self::SwapDb(SwapDbRequest {
                    seq,
                    tenant,
                    expected_generation,
                    path,
                })
            }
            8 => {
                let seq = r.u64()?;
                let tenant = r.name()?;
                let status = SwapStatus::from_code(r.u8()?)
                    .ok_or_else(|| WireError::Malformed("unknown swap status code".to_string()))?;
                let generation = r.u64()?;
                Self::SwapDbResponse(SwapDbResponse {
                    seq,
                    tenant,
                    status,
                    generation,
                })
            }
            9 => {
                let seq = r.u64()?;
                let tenant = r.name()?;
                Self::Promote(PromoteRequest { seq, tenant })
            }
            10 => {
                let seq = r.u64()?;
                let tenant = r.name()?;
                let status = PromoteStatus::from_code(r.u8()?).ok_or_else(|| {
                    WireError::Malformed("unknown promote status code".to_string())
                })?;
                let promotions = r.u64()?;
                Self::PromoteResponse(PromoteResponse {
                    seq,
                    tenant,
                    status,
                    promotions,
                })
            }
            other => return Err(WireError::BadKind { kind: other }),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Decodes one frame from a byte buffer, returning the frame and the
    /// total bytes consumed.
    ///
    /// # Errors
    ///
    /// Every structural violation is a typed [`WireError`]; see the
    /// module docs for the rejection rules.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        if bytes.len() < WIRE_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let (kind, declared_len, declared_sum) = decode_header(&bytes[..WIRE_HEADER_LEN])?;
        let total =
            WIRE_HEADER_LEN
                .checked_add(declared_len)
                .ok_or(WireError::OversizedPayload {
                    declared: declared_len as u64,
                })?;
        if bytes.len() < total {
            return Err(WireError::Truncated);
        }
        let payload = &bytes[WIRE_HEADER_LEN..total];
        let actual = fnv1a64(payload);
        if actual != declared_sum {
            return Err(WireError::ChecksumMismatch {
                declared: declared_sum,
                actual,
            });
        }
        Ok((Self::from_parts(kind, payload)?, total))
    }

    /// Writes the encoded frame to `w`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the writer fails.
    pub fn write_to(&self, w: &mut dyn Write) -> Result<(), WireError> {
        w.write_all(&self.to_bytes())
            .map_err(|e| WireError::Io(e.to_string()))
    }

    /// Reads one frame from `r`. Returns `Ok(None)` on a clean EOF at a
    /// frame boundary; EOF inside a frame is [`WireError::Truncated`].
    ///
    /// # Errors
    ///
    /// [`WireError`] for structural violations or reader failures.
    pub fn read_from(r: &mut dyn Read) -> Result<Option<Self>, WireError> {
        let mut header = [0u8; WIRE_HEADER_LEN];
        let mut filled = 0usize;
        while filled < header.len() {
            match r.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
        let (kind, declared_len, declared_sum) = decode_header(&header)?;
        let mut payload = vec![0u8; declared_len];
        r.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e.to_string())
            }
        })?;
        let actual = fnv1a64(&payload);
        if actual != declared_sum {
            return Err(WireError::ChecksumMismatch {
                declared: declared_sum,
                actual,
            });
        }
        Ok(Some(Self::from_parts(kind, &payload)?))
    }
}

/// Validates a frame header, returning `(kind, payload_len, checksum)`.
fn decode_header(header: &[u8]) -> Result<(u8, usize, u64), WireError> {
    debug_assert_eq!(header.len(), WIRE_HEADER_LEN);
    if header[0..8] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([header[8], header[9]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { version });
    }
    let kind = header[10];
    if !(1..=10).contains(&kind) {
        return Err(WireError::BadKind { kind });
    }
    if header[11..16] != [0u8; 5] {
        return Err(WireError::BadReserved);
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&header[16..24]);
    let declared = u64::from_le_bytes(len8);
    let declared_len = usize::try_from(declared)
        .ok()
        .filter(|&n| n <= MAX_PAYLOAD_LEN)
        .ok_or(WireError::OversizedPayload { declared })?;
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&header[24..32]);
    Ok((kind, declared_len, u64::from_le_bytes(sum8)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Frame {
        Frame::Request(Request {
            seq: 7,
            tenant: "cam0".into(),
            time: 103.25,
            spec: QosSpec::new(120.5, 0.92),
        })
    }

    fn sample_response() -> Frame {
        Frame::Response(Response {
            seq: 7,
            tenant: "cam0".into(),
            decision: DecisionRecord {
                event: 3,
                time: 103.25,
                spec: QosSpec::new(120.5, 0.92),
                feasible: 12,
                from: 2,
                to: 5,
                drc: 1.75,
                score: Some(0.875),
                p_rc: None,
                violated: false,
                status: ServeStatus::Normal,
                fault: None,
            },
        })
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            sample_request(),
            sample_response(),
            Frame::Error(ErrorFrame {
                seq: 9,
                message: "unknown tenant \"ghost\"".into(),
            }),
            Frame::Shutdown,
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            let (decoded, consumed) = Frame::from_bytes(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
            // Streaming decode agrees with buffer decode.
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(frame));
            assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
        }
    }

    #[test]
    fn non_finite_floats_round_trip_bitwise() {
        for time in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let frame = Frame::Request(Request {
                seq: 1,
                tenant: "t".into(),
                time,
                spec: QosSpec::new(1.0, 0.5),
            });
            let (decoded, _) = Frame::from_bytes(&frame.to_bytes()).unwrap();
            let Frame::Request(r) = decoded else {
                panic!("kind changed in flight")
            };
            assert_eq!(r.time.to_bits(), time.to_bits());
        }
    }

    #[test]
    fn every_ladder_status_and_fault_round_trips() {
        let statuses = [
            ServeStatus::Normal,
            ServeStatus::DegradedLkg,
            ServeStatus::DegradedBaseline,
            ServeStatus::DegradedHold,
            ServeStatus::Quarantined,
        ];
        for status in statuses {
            for fault in std::iter::once(None).chain(FaultKind::ALL.map(Some)) {
                let mut frame = sample_response();
                let Frame::Response(r) = &mut frame else {
                    unreachable!()
                };
                r.decision.status = status;
                r.decision.fault = fault;
                let (decoded, _) = Frame::from_bytes(&frame.to_bytes()).unwrap();
                assert_eq!(decoded, frame);
            }
        }
    }

    #[test]
    fn corrupted_payload_is_rejected_by_checksum() {
        let mut bytes = sample_request().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_header_fields_are_rejected() {
        let good = sample_request().to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Frame::from_bytes(&bad_magic).unwrap_err(),
            WireError::BadMagic
        );

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert!(matches!(
            Frame::from_bytes(&bad_version),
            Err(WireError::UnsupportedVersion { version: 99 })
        ));

        let mut bad_kind = good.clone();
        bad_kind[10] = 42;
        assert!(matches!(
            Frame::from_bytes(&bad_kind),
            Err(WireError::BadKind { kind: 42 })
        ));

        let mut bad_reserved = good.clone();
        bad_reserved[12] = 1;
        assert_eq!(
            Frame::from_bytes(&bad_reserved).unwrap_err(),
            WireError::BadReserved
        );

        let mut oversized = good.clone();
        oversized[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Frame::from_bytes(&oversized),
            Err(WireError::OversizedPayload { .. })
        ));

        assert_eq!(
            Frame::from_bytes(&good[..WIRE_HEADER_LEN - 1]).unwrap_err(),
            WireError::Truncated
        );
        assert_eq!(
            Frame::from_bytes(&good[..good.len() - 1]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        // Hand-grow the payload while fixing length and checksum: the
        // structure is then valid but the request has trailing garbage.
        let Frame::Request(req) = sample_request() else {
            unreachable!()
        };
        let inner = Frame::Request(req).to_bytes();
        let mut payload = inner[WIRE_HEADER_LEN..].to_vec();
        payload.push(0xAB);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&[0u8; 5]);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn stats_frames_round_trip() {
        let frames = [
            Frame::Stats(StatsRequest::fleet(11, true)),
            Frame::Stats(StatsRequest {
                seq: 12,
                version: STATS_VERSION,
                flight: false,
                tenant: Some("cam0".into()),
            }),
            // A future stats version decodes at the frame layer; the
            // daemon is the one that objects.
            Frame::Stats(StatsRequest {
                seq: 13,
                version: 9,
                flight: false,
                tenant: None,
            }),
            Frame::StatsResponse(StatsResponse {
                seq: 11,
                snapshot: "{\"schema\":1,\"label\":\"fleet\",\"events\":0,\"dropped\":[],\
                           \"tenants\":[]}"
                    .into(),
            }),
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            let (decoded, consumed) = Frame::from_bytes(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn corrupt_stats_frames_are_rejected() {
        // Payload bit flip → checksum mismatch.
        let mut bytes = Frame::Stats(StatsRequest::fleet(1, false)).to_bytes();
        bytes[WIRE_HEADER_LEN + 2] ^= 0x40;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::ChecksumMismatch { .. })
        ));

        // A truncated response payload (checksum refreshed so only the
        // structural check can object) is malformed, not served.
        let good = Frame::StatsResponse(StatsResponse {
            seq: 2,
            snapshot: "{\"schema\":1}".into(),
        })
        .to_bytes();
        let mut payload = good[WIRE_HEADER_LEN..].to_vec();
        payload.truncate(payload.len() - 3); // declared text length now lies
        let mut bytes = good[..WIRE_HEADER_LEN].to_vec();
        bytes[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes[24..32].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));

        // A bad flight flag is malformed.
        let good = Frame::Stats(StatsRequest::fleet(3, false)).to_bytes();
        let mut payload = good[WIRE_HEADER_LEN..].to_vec();
        payload[10] = 7; // the flight byte (after seq u64 + version u16)
        let mut bytes = good[..WIRE_HEADER_LEN].to_vec();
        bytes[24..32].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn swap_db_frames_round_trip() {
        let frames = [
            Frame::SwapDb(SwapDbRequest {
                seq: 21,
                tenant: "cam0".into(),
                expected_generation: Some(3),
                path: "out/fleet.snap".into(),
            }),
            Frame::SwapDb(SwapDbRequest {
                seq: 22,
                tenant: "nav".into(),
                expected_generation: None,
                path: "/tmp/gen 4 (with spaces).snap".into(),
            }),
            Frame::SwapDbResponse(SwapDbResponse {
                seq: 21,
                tenant: "cam0".into(),
                status: SwapStatus::Swapped,
                generation: 3,
            }),
            Frame::SwapDbResponse(SwapDbResponse {
                seq: 22,
                tenant: "nav".into(),
                status: SwapStatus::VerifyFailed,
                generation: 1,
            }),
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            let (decoded, consumed) = Frame::from_bytes(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
        // Every status code survives the wire.
        for status in [
            SwapStatus::Swapped,
            SwapStatus::VerifyFailed,
            SwapStatus::UnknownTenant,
            SwapStatus::IoError,
        ] {
            assert_eq!(SwapStatus::from_code(status.code()), Some(status));
        }
        assert_eq!(SwapStatus::from_code(9), None);
    }

    #[test]
    fn corrupt_swap_db_frames_are_rejected() {
        // Payload bit flip → checksum mismatch.
        let mut bytes = Frame::SwapDb(SwapDbRequest {
            seq: 1,
            tenant: "t".into(),
            expected_generation: None,
            path: "a.snap".into(),
        })
        .to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::ChecksumMismatch { .. })
        ));

        // An empty path is malformed even with a valid checksum.
        let good = Frame::SwapDb(SwapDbRequest {
            seq: 1,
            tenant: "t".into(),
            expected_generation: None,
            path: "x".into(),
        })
        .to_bytes();
        let mut payload = good[WIRE_HEADER_LEN..].to_vec();
        let plen = payload.len();
        payload.truncate(plen - 1); // drop the path byte...
        let at = payload.len() - 2;
        payload[at..].copy_from_slice(&0u16.to_le_bytes()); // ...and declare length 0
        let mut bytes = good[..WIRE_HEADER_LEN].to_vec();
        bytes[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes[24..32].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));

        // An unknown status code is malformed.
        let good = Frame::SwapDbResponse(SwapDbResponse {
            seq: 2,
            tenant: "t".into(),
            status: SwapStatus::Swapped,
            generation: 0,
        })
        .to_bytes();
        let mut payload = good[WIRE_HEADER_LEN..].to_vec();
        let status_at = payload.len() - 9; // status byte precedes the u64 generation
        payload[status_at] = 9;
        let mut bytes = good[..WIRE_HEADER_LEN].to_vec();
        bytes[24..32].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn promote_frames_round_trip() {
        let frames = [
            Frame::Promote(PromoteRequest {
                seq: 31,
                tenant: "cam0".into(),
            }),
            Frame::PromoteResponse(PromoteResponse {
                seq: 31,
                tenant: "cam0".into(),
                status: PromoteStatus::Promoted,
                promotions: 2,
            }),
            Frame::PromoteResponse(PromoteResponse {
                seq: 32,
                tenant: "nav".into(),
                status: PromoteStatus::NoLearner,
                promotions: 0,
            }),
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            let (decoded, consumed) = Frame::from_bytes(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
        // Every status code survives the wire.
        for status in [
            PromoteStatus::Promoted,
            PromoteStatus::NoLearner,
            PromoteStatus::UnknownTenant,
        ] {
            assert_eq!(PromoteStatus::from_code(status.code()), Some(status));
        }
        assert_eq!(PromoteStatus::from_code(9), None);
    }

    #[test]
    fn corrupt_promote_frames_are_rejected() {
        // Payload bit flip → checksum mismatch.
        let mut bytes = Frame::Promote(PromoteRequest {
            seq: 1,
            tenant: "t".into(),
        })
        .to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::ChecksumMismatch { .. })
        ));

        // An unknown status code is malformed.
        let good = Frame::PromoteResponse(PromoteResponse {
            seq: 2,
            tenant: "t".into(),
            status: PromoteStatus::Promoted,
            promotions: 0,
        })
        .to_bytes();
        let mut payload = good[WIRE_HEADER_LEN..].to_vec();
        let status_at = payload.len() - 9; // status byte precedes the u64 count
        payload[status_at] = 9;
        let mut bytes = good[..WIRE_HEADER_LEN].to_vec();
        bytes[24..32].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_tenant_names_are_rejected() {
        let frame = Frame::Request(Request {
            seq: 1,
            tenant: "ok".into(),
            time: 1.0,
            spec: QosSpec::new(1.0, 0.5),
        });
        let mut bytes = frame.to_bytes();
        // Overwrite the name bytes "ok" (the final two payload bytes)
        // with a character outside [A-Za-z0-9_-], refreshing the
        // checksum so only the semantic check can object.
        let len = bytes.len();
        bytes[len - 2] = b'a';
        bytes[len - 1] = b' ';
        let payload = bytes[WIRE_HEADER_LEN..].to_vec();
        bytes[24..32].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
