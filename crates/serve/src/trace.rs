//! Batched QoS-event traces: the serving engine's input format.
//!
//! A trace is a JSONL document. The first line is a header; every other
//! line is one QoS-requirement change addressed to a tenant by name:
//!
//! ```text
//! {"type":"clr-trace","version":1}
//! {"tenant":"cam0","time":103.25,"s_max":120.5,"f_min":0.92}
//! {"tenant":"nav","time":110.0,"s_max":95.0,"f_min":0.97}
//! ```
//!
//! Floats use Rust's shortest round-trip formatting, so a generated
//! trace re-encodes byte-identically — the same discipline as the
//! observability journals. Event order within the file is authoritative:
//! the engine processes each tenant's events in file order (duplicate
//! timestamps are legal and kept in order), so a trace is a reproducible
//! workload, not a hint.

use std::fmt::Write as _;

use clr_dse::QosSpec;
use clr_obs::{parse_json, Value};
use clr_runtime::{EventStream, QosVariationModel};

use crate::Tenant;

/// Header line opening every trace document.
const HEADER: &str = "{\"type\":\"clr-trace\",\"version\":1}";

/// One QoS-requirement change addressed to a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Target tenant name.
    pub tenant: String,
    /// Event time in application-cycle units.
    pub time: f64,
    /// The new requirement.
    pub spec: QosSpec,
}

/// A parse failure while decoding a trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number (0 = whole document).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn terr(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

/// An ordered batch of QoS events for a tenant fleet.
///
/// # Examples
///
/// ```
/// use clr_serve::Trace;
/// let trace = Trace::new(vec![]);
/// assert_eq!(Trace::from_jsonl(&trace.to_jsonl()).unwrap(), trace);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Wraps an event list (file order = replay order).
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Self { events }
    }

    /// The events in file order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the JSONL document (header + one line per event). Floats
    /// use shortest-round-trip formatting; non-finite values are not
    /// representable in the trace format (JSON has no `inf`/`NaN`
    /// tokens), so all-infeasible workloads are expressed with finite
    /// impossible specs such as `s_max = 0, f_min = 1`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.events {
            debug_assert!(
                is_plain_name(&e.tenant),
                "tenant names are [A-Za-z0-9_-]+, got {:?}",
                e.tenant
            );
            debug_assert!(
                e.time.is_finite()
                    && e.spec.max_makespan.is_finite()
                    && e.spec.min_reliability.is_finite(),
                "trace events carry finite values only"
            );
            let _ = writeln!(
                out,
                "{{\"tenant\":\"{}\",\"time\":{},\"s_max\":{},\"f_min\":{}}}",
                e.tenant, e.time, e.spec.max_makespan, e.spec.min_reliability
            );
        }
        out
    }

    /// Parses a JSONL trace document.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first offending line: a
    /// missing/wrong header, unparseable JSON, or missing fields.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or_else(|| terr(0, "empty document (expected a clr-trace header)"))?;
        let hv = parse_json(header.trim()).map_err(|e| terr(1, format!("bad header: {e}")))?;
        if hv.get("type").and_then(Value::as_str) != Some("clr-trace") {
            return Err(terr(1, "missing `\"type\":\"clr-trace\"` header"));
        }
        match hv.get("version").and_then(Value::as_u64) {
            Some(1) => {}
            v => return Err(terr(1, format!("unsupported trace version {v:?}"))),
        }
        let mut events = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            events.push(parse_event_line(line, i + 1)?);
        }
        Ok(Self::new(events))
    }

    /// Parses a JSONL trace document leniently: bad event lines are
    /// skipped and reported instead of aborting the decode — the
    /// skip-and-journal rung of the serve path's degradation ladder. The
    /// returned errors are in line order, one per skipped line, so the
    /// caller can journal each absorbed fault.
    ///
    /// The header is still mandatory: a document that does not identify
    /// itself as a clr-trace is a wrong *file*, not a damaged one, and
    /// parses to an empty trace with a single line-0/1 error.
    pub fn from_jsonl_lenient(text: &str) -> (Self, Vec<TraceError>) {
        let mut lines = text.lines().enumerate();
        let Some((_, header)) = lines.find(|(_, l)| !l.trim().is_empty()) else {
            return (
                Self::default(),
                vec![terr(0, "empty document (expected a clr-trace header)")],
            );
        };
        let header_ok = parse_json(header.trim()).is_ok_and(|hv| {
            hv.get("type").and_then(Value::as_str) == Some("clr-trace")
                && hv.get("version").and_then(Value::as_u64) == Some(1)
        });
        if !header_ok {
            return (
                Self::default(),
                vec![terr(1, "missing or unsupported clr-trace header")],
            );
        }
        let mut events = Vec::new();
        let mut errors = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ln = i + 1;
            match parse_event_line(line, ln) {
                Ok(event) => events.push(event),
                Err(e) => errors.push(e),
            }
        }
        (Self::new(events), errors)
    }
}

/// Decodes one (non-header) trace event line.
fn parse_event_line(line: &str, ln: usize) -> Result<TraceEvent, TraceError> {
    let v = parse_json(line).map_err(|e| terr(ln, format!("bad event: {e}")))?;
    let tenant = v
        .get("tenant")
        .and_then(Value::as_str)
        .ok_or_else(|| terr(ln, "event without a `tenant` field"))?;
    if !is_plain_name(tenant) {
        return Err(terr(ln, format!("bad tenant name {tenant:?}")));
    }
    let field = |name: &str| {
        v.get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| terr(ln, format!("event without a numeric `{name}` field")))
    };
    Ok(TraceEvent {
        tenant: tenant.to_string(),
        time: field("time")?,
        spec: QosSpec::new(field("s_max")?, field("f_min")?),
    })
}

/// Tenant names travel inside JSON string literals without escaping, so
/// they are restricted to `[A-Za-z0-9_-]+`.
pub fn is_plain_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Generates a deterministic multi-tenant trace: each tenant gets its own
/// [`EventStream`] (QoS model calibrated against that tenant's database,
/// RNG stream derived from `(seed, tenant index)`), events are drawn
/// until `total_cycles`, then the per-tenant streams are merged by
/// `(time, tenant index)`.
///
/// The result depends only on `(tenants, seed, total_cycles, mean_gap)` —
/// the seeded workload half of the replay determinism contract.
pub fn generate_trace(tenants: &[Tenant], seed: u64, total_cycles: f64, mean_gap: f64) -> Trace {
    let mut tagged: Vec<(f64, usize, TraceEvent)> = Vec::new();
    for (idx, tenant) in tenants.iter().enumerate() {
        let qos = QosVariationModel::calibrated(tenant.db(), 0.25, 0.3);
        let mut stream = EventStream::new(qos, mean_gap, clr_par::derive_seed(seed, idx as u64));
        loop {
            let event = stream.next_event();
            if event.time >= total_cycles {
                break;
            }
            tagged.push((
                event.time,
                idx,
                TraceEvent {
                    tenant: tenant.name().to_string(),
                    time: event.time,
                    spec: event.spec,
                },
            ));
        }
    }
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    Trace::new(tagged.into_iter().map(|(_, _, e)| e).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tenant: &str, time: f64, s: f64, f: f64) -> TraceEvent {
        TraceEvent {
            tenant: tenant.to_string(),
            time,
            spec: QosSpec::new(s, f),
        }
    }

    #[test]
    fn jsonl_round_trip_is_identity() {
        let trace = Trace::new(vec![
            ev("cam0", 103.25, 120.5, 0.92),
            ev("nav", 110.0, 95.0, 0.97),
            ev("cam0", 110.0, 118.0, 0.9), // duplicate timestamp is legal
        ]);
        let text = trace.to_jsonl();
        let parsed = Trace::from_jsonl(&text).unwrap();
        assert_eq!(parsed, trace);
        // Byte-stable re-encoding.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(Trace::from_jsonl(&trace.to_jsonl()).unwrap(), trace);
    }

    #[test]
    fn header_is_required() {
        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("{\"tenant\":\"a\",\"time\":1.0}").is_err());
        let wrong_version = "{\"type\":\"clr-trace\",\"version\":2}\n";
        assert!(Trace::from_jsonl(wrong_version).is_err());
    }

    #[test]
    fn malformed_events_name_their_line() {
        let text = format!("{HEADER}\n{{\"tenant\":\"a\",\"time\":1.0,\"s_max\":5.0}}\n");
        let e = Trace::from_jsonl(&text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("f_min"), "{e}");
    }

    #[test]
    fn hostile_tenant_names_are_rejected() {
        assert!(!is_plain_name(""));
        assert!(!is_plain_name("a\"b"));
        assert!(!is_plain_name("a b"));
        assert!(is_plain_name("cam0-left_2"));
        let text =
            format!("{HEADER}\n{{\"tenant\":\"a b\",\"time\":1.0,\"s_max\":5.0,\"f_min\":0.5}}\n");
        assert!(Trace::from_jsonl(&text).is_err());
    }

    #[test]
    fn lenient_decode_skips_and_reports_bad_lines() {
        let good = Trace::new(vec![
            ev("cam0", 1.0, 120.0, 0.9),
            ev("nav", 2.0, 95.0, 0.95),
            ev("cam0", 3.0, 110.0, 0.9),
        ]);
        let mut lines: Vec<String> = good.to_jsonl().lines().map(String::from).collect();
        // Damage the middle event (line 3 of the document).
        lines[2] = format!("X{}", &lines[2][1..]);
        let text = format!("{}\n", lines.join("\n"));

        assert!(Trace::from_jsonl(&text).is_err(), "strict decode aborts");
        let (trace, skipped) = Trace::from_jsonl_lenient(&text);
        assert_eq!(trace.len(), 2, "good lines survive");
        assert_eq!(trace.events()[0], good.events()[0]);
        assert_eq!(trace.events()[1], good.events()[2]);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].line, 3, "skip reports name their line");
    }

    #[test]
    fn lenient_decode_on_clean_input_matches_strict() {
        let good = Trace::new(vec![ev("a", 1.0, 10.0, 0.5), ev("b", 2.0, 20.0, 0.6)]);
        let text = good.to_jsonl();
        let (trace, skipped) = Trace::from_jsonl_lenient(&text);
        assert_eq!(trace, Trace::from_jsonl(&text).unwrap());
        assert!(skipped.is_empty());
    }

    #[test]
    fn lenient_decode_still_requires_a_header() {
        let (trace, errs) = Trace::from_jsonl_lenient("not a trace\n");
        assert!(trace.is_empty());
        assert_eq!(errs.len(), 1);
        let (trace, errs) = Trace::from_jsonl_lenient("");
        assert!(trace.is_empty());
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn impossible_specs_round_trip() {
        // The canonical all-infeasible requirement is finite: no real
        // point has zero makespan at perfect reliability.
        let trace = Trace::new(vec![ev("a", 1.0, 0.0, 1.0)]);
        let parsed = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.events()[0].spec.min_reliability, 1.0);
    }
}
