//! Shared command-line plumbing for the `clr-serve` and `clr-served`
//! binaries.
//!
//! Flag parsing is **strict**: every command declares the flags it
//! accepts, and an unknown or typo'd `--flag` is a usage error (the
//! binaries exit 2), matching clr-audit's CLI contract. Flags always
//! take a value (`--flag VALUE`); the last occurrence wins, except
//! `--tenant`, which repeats to build a fleet.

use crate::{LineageSnapshot, PolicySpec, Tenant};

/// Positional operands plus `--flag value` pairs, borrowed from argv.
pub type SplitArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits args into positional operands and `--flag value` pairs,
/// rejecting any flag not in `allowed`.
///
/// # Errors
///
/// A message naming the unknown flag (with the accepted set) or the
/// flag missing its value — the caller turns it into a usage error.
pub fn split_flags<'a>(args: &'a [String], allowed: &[&str]) -> Result<SplitArgs<'a>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if !allowed.contains(&name) {
                let mut accepted: Vec<String> = allowed.iter().map(|f| format!("--{f}")).collect();
                accepted.sort_unstable();
                return Err(if accepted.is_empty() {
                    format!("unknown flag --{name} (this command takes no flags)")
                } else {
                    format!("unknown flag --{name} (accepted: {})", accepted.join(", "))
                });
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, value.as_str()));
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok((positional, flags))
}

/// Looks up the last occurrence of a flag.
pub fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
}

/// Parses every `--tenant NAME=SNAP@POLICY` argument into a fleet,
/// loading each snapshot from disk. Both container generations seat:
/// a CLRSNAP2 artifact records its lineage generation on the tenant, a
/// CLRSNAP1 artifact seats as generation 0.
///
/// # Errors
///
/// A usage-style message for a malformed argument, an unreadable or
/// corrupt snapshot, an invalid policy spec, or an empty fleet.
pub fn parse_fleet(flags: &[(&str, &str)]) -> Result<Vec<Tenant>, String> {
    let mut tenants = Vec::new();
    for (_, value) in flags.iter().filter(|(n, _)| *n == "tenant") {
        let (name, rest) = value
            .split_once('=')
            .ok_or_else(|| format!("tenant {value:?} is not NAME=SNAP@POLICY"))?;
        // Split at the FIRST '@': the v2 policy grammar itself carries
        // one (`aura+learn:..@<seed>`), so the path may not contain '@'
        // but the policy may.
        let (path, policy) = rest
            .split_once('@')
            .ok_or_else(|| format!("tenant {value:?} is not NAME=SNAP@POLICY"))?;
        let policy: PolicySpec = policy.parse()?;
        let snapshot = LineageSnapshot::read_file(path).map_err(|e| format!("{path}: {e}"))?;
        let generation = snapshot.lineage().generation;
        tenants.push(
            Tenant::from_snapshot(name, snapshot.snapshot(), policy)
                .map_err(|e| e.to_string())?
                .with_generation(generation),
        );
    }
    if tenants.is_empty() {
        return Err("at least one --tenant NAME=SNAP@POLICY is required".into());
    }
    Ok(tenants)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn known_flags_and_positionals_split() {
        let args = argv(&["a.db", "--graph", "jpeg", "b.snap", "--platform", "dac19"]);
        let (pos, flags) = split_flags(&args, &["graph", "platform"]).unwrap();
        assert_eq!(pos, vec!["a.db", "b.snap"]);
        assert_eq!(flag(&flags, "graph"), Some("jpeg"));
        assert_eq!(flag(&flags, "platform"), Some("dac19"));
        assert_eq!(flag(&flags, "missing"), None);
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        let args = argv(&["--treads", "4"]);
        let err = split_flags(&args, &["threads", "trace"]).unwrap_err();
        assert!(err.contains("--treads"), "err: {err}");
        assert!(
            err.contains("--threads"),
            "the accepted set is listed: {err}"
        );
        let err = split_flags(&args, &[]).unwrap_err();
        assert!(err.contains("no flags"), "err: {err}");
    }

    #[test]
    fn missing_value_is_rejected() {
        let args = argv(&["--seed"]);
        let err = split_flags(&args, &["seed"]).unwrap_err();
        assert!(err.contains("needs a value"), "err: {err}");
    }

    #[test]
    fn last_flag_occurrence_wins() {
        let args = argv(&["--seed", "1", "--seed", "2"]);
        let (_, flags) = split_flags(&args, &["seed"]).unwrap();
        assert_eq!(flag(&flags, "seed"), Some("2"));
    }

    #[test]
    fn fleet_requires_at_least_one_tenant() {
        let err = parse_fleet(&[]).unwrap_err();
        assert!(err.contains("--tenant"), "err: {err}");
    }

    #[test]
    fn malformed_tenant_specs_are_named() {
        for bad in ["no-equals", "name=no-at-sign"] {
            let err = parse_fleet(&[("tenant", bad)]).unwrap_err();
            assert!(err.contains("NAME=SNAP@POLICY"), "{bad}: {err}");
        }
    }

    #[test]
    fn learn_policy_seed_at_sign_splits_on_the_first_at() {
        // The v2 grammar embeds '@' in the policy; the split must leave
        // it there. A correct split fails on the missing snapshot file,
        // not on the policy text.
        let spec = "cam=/nonexistent/ci.snap@aura+learn:0.5,0.6,0.2,0.05@7";
        let err = parse_fleet(&[("tenant", spec)]).unwrap_err();
        assert!(err.contains("/nonexistent/ci.snap"), "err: {err}");
        assert!(!err.contains("unknown policy"), "err: {err}");
    }
}
