//! `clr-served` — the long-running multi-tenant decision daemon.
//!
//! ```text
//! clr-served --tenant NAME=SNAP@POLICY.. [--batch N] [--threads N]
//!            [--episode-cycles C] [--quarantine-after K]
//! ```
//!
//! Speaks the `CLRWIRE1` framed protocol on stdin/stdout: request
//! frames in, response (or error) frames out, batched admission with
//! bounded-queue backpressure, graceful drain on end-of-stream or an
//! explicit shutdown frame. Responses for a time-sorted trace are
//! decision-for-decision identical to one batch `clr-serve replay` of
//! the same fleet — `ci.sh` byte-compares the two via
//! `clr-serve wire-encode` / `wire-decode`.
//!
//! Diagnostics go to stderr (stdout carries only frames). On drain the
//! daemon prints the same per-tenant summary lines `clr-serve replay`
//! prints.
//!
//! Flag parsing is strict: an unknown or typo'd `--flag` is a usage
//! error.
//!
//! Exit codes: `0` clean drain (shutdown frame or end-of-stream), `1`
//! serving failure (corrupt request stream, unwritable responses), `2`
//! usage error.

use std::process::ExitCode;

use clr_serve::cli::{flag, parse_fleet, split_flags};
use clr_serve::{serve_stream, DaemonConfig};

const USAGE: &str = "usage: clr-served --tenant NAME=SNAP@POLICY.. \
[--batch N] [--threads N] [--episode-cycles C] [--quarantine-after K]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let allowed = [
        "tenant",
        "batch",
        "threads",
        "episode-cycles",
        "quarantine-after",
    ];
    let (positional, flags) = match split_flags(&args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("clr-served takes flags only");
    }
    let mut config = DaemonConfig::default();
    if let Some(v) = flag(&flags, "batch") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => config.batch = n,
            _ => return usage_error("bad --batch (a positive integer)"),
        }
    }
    if let Some(v) = flag(&flags, "threads") {
        match v.parse() {
            Ok(n) => config.replay.threads = n,
            Err(_) => return usage_error("bad --threads"),
        }
    }
    if let Some(v) = flag(&flags, "episode-cycles") {
        match v.parse::<f64>() {
            Ok(c) if c > 0.0 => config.replay.episode_cycles = c,
            _ => return usage_error("bad --episode-cycles"),
        }
    }
    if let Some(v) = flag(&flags, "quarantine-after") {
        match v.parse::<usize>() {
            Ok(k) => config.replay.quarantine_after = k,
            Err(_) => return usage_error("bad --quarantine-after"),
        }
    }
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    eprintln!(
        "clr-served: {} tenants seated, batch {}, serving on stdin/stdout",
        tenants.len(),
        config.batch
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    match serve_stream(&tenants, &mut input, &mut output, &config) {
        Ok(report) => {
            for o in &report.outcomes {
                eprintln!(
                    "tenant {}: {} events, {} reconfigurations, {} violations, total dRC {}",
                    o.name, o.events, o.reconfigurations, o.violations, o.total_drc
                );
            }
            eprintln!(
                "clr-served: drained — {} served, {} rejected, {} batches ({})",
                report.served,
                report.rejected,
                report.batches,
                if report.clean_shutdown {
                    "shutdown frame"
                } else {
                    "end of stream"
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-served: {e}");
            ExitCode::from(1)
        }
    }
}

/// Prints a usage error and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("clr-served: {message}\n{USAGE}");
    ExitCode::from(2)
}
