//! `clr-served` — the long-running multi-tenant decision daemon.
//!
//! ```text
//! clr-served --tenant NAME=SNAP@POLICY.. [--batch N] [--threads N]
//!            [--episode-cycles C] [--quarantine-after K] [--telemetry BOOL]
//!            [--obs-dir DIR] [--learn-dir DIR]
//! ```
//!
//! Speaks the `CLRWIRE1` framed protocol on stdin/stdout: request
//! frames in, response (or error) frames out, batched admission with
//! bounded-queue backpressure, graceful drain on end-of-stream or an
//! explicit shutdown frame. A stats-query frame is answered in stream
//! position with a schema-v2 fleet telemetry snapshot (byte-identical
//! at any `--threads` value); `--telemetry false` turns the health
//! registries off, and stats queries then report empty tenants. Responses for a time-sorted trace are
//! decision-for-decision identical to one batch `clr-serve replay` of
//! the same fleet — `ci.sh` byte-compares the two via
//! `clr-serve wire-encode` / `wire-decode`.
//!
//! Diagnostics go to stderr (stdout carries only frames). On drain the
//! daemon prints the same per-tenant summary lines `clr-serve replay`
//! prints (active db generation included), and with `--obs-dir DIR`
//! exports the drain as a `served.obs.jsonl` journal — `SwapDb` rollouts
//! appear as `db_swap` events in stream position, auditable with
//! `clr-verify journal`.
//!
//! With `--learn-dir DIR`, tenants running an `aura+learn:` policy
//! warm-start from a `CLRLRN1` checkpoint (`DIR/<tenant>.learn`) at
//! seating and write one back at drain, so online value tables survive
//! restarts; a missing or mismatched checkpoint is a logged cold start,
//! never a seating failure. A mid-stream `Promote` frame ships a
//! tenant's shadow table to live in stream position (see
//! `clr-serve promote`).
//!
//! Flag parsing is strict: an unknown or typo'd `--flag` is a usage
//! error.
//!
//! Exit codes: `0` clean drain (shutdown frame or end-of-stream), `1`
//! serving failure (corrupt request stream, unwritable responses), `2`
//! usage error.

use std::process::ExitCode;

use clr_obs::{Obs, ObsMode};
use clr_serve::cli::{flag, parse_fleet, split_flags};
use clr_serve::{serve_stream, DaemonConfig, ReplayReport};

const USAGE: &str = "usage: clr-served --tenant NAME=SNAP@POLICY.. \
[--batch N] [--threads N] [--episode-cycles C] [--quarantine-after K] [--telemetry BOOL] \
[--obs-dir DIR] [--learn-dir DIR]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let allowed = [
        "tenant",
        "batch",
        "threads",
        "episode-cycles",
        "quarantine-after",
        "telemetry",
        "obs-dir",
        "learn-dir",
    ];
    let (positional, flags) = match split_flags(&args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("clr-served takes flags only");
    }
    let mut config = DaemonConfig::default();
    if let Some(v) = flag(&flags, "batch") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => config.batch = n,
            _ => return usage_error("bad --batch (a positive integer)"),
        }
    }
    if let Some(v) = flag(&flags, "threads") {
        match v.parse() {
            Ok(n) => config.replay.threads = n,
            Err(_) => return usage_error("bad --threads"),
        }
    }
    if let Some(v) = flag(&flags, "episode-cycles") {
        match v.parse::<f64>() {
            Ok(c) if c > 0.0 => config.replay.episode_cycles = c,
            _ => return usage_error("bad --episode-cycles"),
        }
    }
    if let Some(v) = flag(&flags, "quarantine-after") {
        match v.parse::<usize>() {
            Ok(k) => config.replay.quarantine_after = k,
            Err(_) => return usage_error("bad --quarantine-after"),
        }
    }
    if let Some(v) = flag(&flags, "telemetry") {
        match v {
            "true" => config.replay.telemetry = true,
            "false" => config.replay.telemetry = false,
            other => return usage_error(&format!("bad --telemetry {other:?} (true or false)")),
        }
    }
    if let Some(dir) = flag(&flags, "learn-dir") {
        config.learn_dir = Some(std::path::PathBuf::from(dir));
    }
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    eprintln!(
        "clr-served: {} tenants seated, batch {}, serving on stdin/stdout",
        tenants.len(),
        config.batch
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    match serve_stream(&tenants, &mut input, &mut output, &config) {
        Ok(report) => {
            // The same summary source `clr-serve replay` prints, so a
            // drained daemon and a batch replay of the same trace agree
            // line for line (dropped counts included).
            let dropped: Vec<(String, usize)> = report
                .dropped_by_tenant
                .iter()
                .map(|(name, n)| (name.clone(), usize::try_from(*n).unwrap_or(usize::MAX)))
                .collect();
            for line in clr_serve::summary_lines(&report.outcomes, &dropped) {
                if line.starts_with("warning:") {
                    eprintln!("clr-served: {line}");
                } else {
                    eprintln!("{line}");
                }
            }
            for note in &report.learn_notes {
                eprintln!("clr-served: {note}");
            }
            for line in
                ReplayReport::from_parts(report.outcomes.clone(), dropped.clone()).ab_lines()
            {
                eprintln!("{line}");
            }
            eprintln!(
                "clr-served: drained — {} served, {} rejected, {} batches, {} stats, \
                 {} swaps, {} promotes ({})",
                report.served,
                report.rejected,
                report.batches,
                report.stats,
                report.swaps,
                report.promotes,
                if report.clean_shutdown {
                    "shutdown frame"
                } else {
                    "end of stream"
                }
            );
            // `--obs-dir`: export the drain as an observability journal
            // through the exact renderer batch replay uses, so a swap
            // applied mid-stream shows up as a `db_swap` event in
            // stream position and the journal byte-compares across
            // thread counts like the response frames do.
            if let Some(dir) = flag(&flags, "obs-dir") {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("clr-served: cannot create {dir}: {e}");
                    return ExitCode::from(2);
                }
                let obs = Obs::new(ObsMode::Json);
                ReplayReport::from_parts(report.outcomes, dropped).emit_obs(&obs);
                match obs.export(dir, "served") {
                    Ok(paths) => {
                        for p in paths {
                            eprintln!("wrote {}", p.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("clr-served: cannot export journal to {dir}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-served: {e}");
            ExitCode::from(1)
        }
    }
}

/// Prints a usage error and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("clr-served: {message}\n{USAGE}");
    ExitCode::from(2)
}
