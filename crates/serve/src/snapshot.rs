//! The versioned binary snapshot container for published design-point
//! databases.
//!
//! The design-time stage explores once and *publishes*; the serving
//! engine loads the published artifact instead of re-running DSE. A
//! snapshot is a small binary container around the existing text codec:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CLRSNAP1"
//! 8       4     format version, u32 LE (currently 1)
//! 12      4     flags, u32 LE (reserved, must be 0)
//! 16      8     payload length in bytes, u64 LE
//! 24      8     FNV-1a 64 checksum of the payload, u64 LE
//! 32      n     payload (UTF-8 text)
//! ```
//!
//! The payload is self-describing provenance plus the database itself:
//!
//! ```text
//! graph jpeg
//! platform dac19
//! clr-design-point-db v1
//! ...
//! ```
//!
//! The `graph`/`platform` lines carry *model descriptors* (see
//! [`Snapshot::resolve`]) because replaying decisions needs the matching
//! task graph and platform to rebuild the reconfiguration-cost matrix —
//! a snapshot without them would be a database that cannot serve.
//! Integrity is checked on load (magic, version, declared length,
//! checksum) so a tampered or truncated artifact fails loudly instead of
//! serving wrong decisions; `clr-verify snapshot` re-audits the same
//! invariants plus index/codec equivalence as the CLR06x lint family.

use std::fmt;
use std::path::Path;

use clr_dse::{CodecError, DesignPointDb};
use clr_platform::Platform;
use clr_taskgraph::{jpeg_encoder, TaskGraph, TgffConfig, TgffGenerator};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"CLRSNAP1";

/// Magic bytes opening every generation-lineaged (v2) snapshot file.
pub const MAGIC2: [u8; 8] = *b"CLRSNAP2";

/// The snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// The lineaged snapshot format version ([`MAGIC2`] containers).
pub const FORMAT_VERSION2: u32 = 2;

/// Size of the fixed header preceding the payload.
pub const HEADER_LEN: usize = 32;

/// FNV-1a 64-bit hash — the integrity checksum of the payload. Not
/// cryptographic; it guards against truncation and bit rot, while
/// semantic validity is `clr-verify`'s job.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a snapshot failed to load or resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the fixed header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// The header declares a version this build does not read.
    UnsupportedVersion {
        /// Declared version.
        version: u32,
    },
    /// Reserved flag bits are set.
    BadFlags {
        /// Declared flags word.
        flags: u32,
    },
    /// The declared payload length disagrees with the bytes present.
    LengthMismatch {
        /// Length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum declared in the header.
        declared: u64,
        /// Checksum of the bytes present.
        actual: u64,
    },
    /// The payload's provenance lines are missing or malformed.
    Meta(String),
    /// A v2 container's lineage block is malformed or inconsistent with
    /// the embedded database (stamp count, stamp hash, parent ordering).
    Lineage(String),
    /// The embedded database text failed to decode.
    Codec(CodecError),
    /// A `graph`/`platform` descriptor names no known model.
    UnknownModel(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooShort { len } => {
                write!(
                    f,
                    "{len} bytes is shorter than the {HEADER_LEN}-byte header"
                )
            }
            Self::BadMagic => write!(f, "bad magic (not a clr snapshot)"),
            Self::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported format version {version} (this build reads {FORMAT_VERSION})"
                )
            }
            Self::BadFlags { flags } => write!(f, "reserved flag bits set: {flags:#x}"),
            Self::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "declared payload length {declared} but {actual} bytes present"
                )
            }
            Self::ChecksumMismatch { declared, actual } => {
                write!(
                    f,
                    "checksum mismatch: header {declared:#018x}, payload {actual:#018x}"
                )
            }
            Self::Meta(m) => write!(f, "bad snapshot metadata: {m}"),
            Self::Lineage(m) => write!(f, "bad snapshot lineage: {m}"),
            Self::Codec(e) => write!(f, "embedded database: {e}"),
            Self::UnknownModel(d) => write!(f, "unknown model descriptor {d:?}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

/// A loaded design-time artifact: the database plus the descriptors of
/// the task graph and platform it was explored for.
///
/// # Examples
///
/// ```
/// use clr_dse::DesignPointDb;
/// use clr_serve::Snapshot;
/// let snap = Snapshot::new("jpeg", "dac19", DesignPointDb::new("based"));
/// let bytes = snap.to_bytes();
/// assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    graph: String,
    platform: String,
    db: DesignPointDb,
}

impl Snapshot {
    /// Wraps a database with its model descriptors (not resolved until
    /// [`resolve`](Self::resolve) — publishing does not require the
    /// descriptors to name bundled models, serving does).
    pub fn new(graph: impl Into<String>, platform: impl Into<String>, db: DesignPointDb) -> Self {
        Self {
            graph: graph.into(),
            platform: platform.into(),
            db,
        }
    }

    /// The task-graph descriptor (e.g. `"jpeg"`, `"tgff:20:7"`).
    pub fn graph_desc(&self) -> &str {
        &self.graph
    }

    /// The platform descriptor (e.g. `"dac19"`).
    pub fn platform_desc(&self) -> &str {
        &self.platform
    }

    /// The embedded database.
    pub fn db(&self) -> &DesignPointDb {
        &self.db
    }

    /// Consumes the snapshot, returning the embedded database.
    pub fn into_db(self) -> DesignPointDb {
        self.db
    }

    /// Serialises into the binary container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = format!(
            "graph {}\nplatform {}\n{}",
            self.graph,
            self.platform,
            self.db.to_text()
        );
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and integrity-checks a binary snapshot.
    ///
    /// # Errors
    ///
    /// Returns the first failed container invariant (magic, version,
    /// flags, length, checksum), or a metadata/codec error from the
    /// payload. Model descriptors are *not* resolved here.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let text = container_payload(bytes, &MAGIC, FORMAT_VERSION)?;
        Self::from_meta_text(text)
    }

    /// Parses the `graph`/`platform`/db section of a payload (everything
    /// after the v2 lineage block, or the whole v1 payload).
    fn from_meta_text(text: &str) -> Result<Self, SnapshotError> {
        let (graph_line, rest) = text
            .split_once('\n')
            .ok_or_else(|| SnapshotError::Meta("missing graph line".into()))?;
        let graph = graph_line
            .strip_prefix("graph ")
            .ok_or_else(|| SnapshotError::Meta("expected `graph <descriptor>`".into()))?;
        let (platform_line, db_text) = rest
            .split_once('\n')
            .ok_or_else(|| SnapshotError::Meta("missing platform line".into()))?;
        let platform = platform_line
            .strip_prefix("platform ")
            .ok_or_else(|| SnapshotError::Meta("expected `platform <descriptor>`".into()))?;
        let db = DesignPointDb::from_text(db_text)?;
        Ok(Self::new(graph, platform, db))
    }

    /// Resolves the model descriptors into the bundled task graph and
    /// platform, so a [`clr_runtime::RuntimeContext`] can be built.
    ///
    /// Descriptors:
    ///
    /// - graph `jpeg` — the JPEG-encoder preset; `tgff:<tasks>:<seed>` —
    ///   the deterministic TGFF-style generator.
    /// - platform `dac19` — the paper's platform; `tiny` — the reduced
    ///   test platform.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownModel`] when a descriptor names no bundled
    /// model.
    pub fn resolve(&self) -> Result<(TaskGraph, Platform), SnapshotError> {
        Ok((
            resolve_graph(&self.graph)?,
            resolve_platform(&self.platform)?,
        ))
    }

    /// Reads and integrity-checks a snapshot file.
    ///
    /// # Errors
    ///
    /// IO errors are reported as [`SnapshotError::Meta`]; container
    /// damage as in [`Snapshot::from_bytes`].
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Meta(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// Writes the snapshot to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }
}

/// Integrity-checks a snapshot container against the expected magic and
/// version, returning the UTF-8 payload.
fn container_payload<'b>(
    bytes: &'b [u8],
    magic: &[u8; 8],
    format_version: u32,
) -> Result<&'b str, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::TooShort { len: bytes.len() });
    }
    if &bytes[0..8] != magic {
        return Err(SnapshotError::BadMagic);
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let quad = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let version = word(8);
    if version != format_version {
        return Err(SnapshotError::UnsupportedVersion { version });
    }
    let flags = word(12);
    if flags != 0 {
        return Err(SnapshotError::BadFlags { flags });
    }
    let declared_len = quad(16);
    let payload = &bytes[HEADER_LEN..];
    if declared_len != payload.len() as u64 {
        return Err(SnapshotError::LengthMismatch {
            declared: declared_len,
            actual: payload.len() as u64,
        });
    }
    let declared_sum = quad(24);
    let actual_sum = fnv1a64(payload);
    if declared_sum != actual_sum {
        return Err(SnapshotError::ChecksumMismatch {
            declared: declared_sum,
            actual: actual_sum,
        });
    }
    std::str::from_utf8(payload)
        .map_err(|e| SnapshotError::Meta(format!("payload is not UTF-8: {e}")))
}

/// Wraps a payload in the 32-byte container header.
fn seal_container(magic: &[u8; 8], format_version: u32, payload: &str) -> Vec<u8> {
    let payload = payload.as_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&format_version.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The publisher id stamped onto lineage roots promoted from plain
/// CLRSNAP1 artifacts.
pub const GENESIS_PUBLISHER: &str = "genesis";

/// One stored point's content-addressed version stamp: the FNV-1a 64
/// hash of its canonical [`clr_dse::point_text`] block, and the
/// generation in which that content was introduced at its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointStamp {
    /// FNV-1a 64 of the point's canonical text block.
    pub hash: u64,
    /// Generation that introduced this content at this index.
    pub generation: u64,
}

/// The replication metadata of a v2 (CLRSNAP2) snapshot: where the
/// artifact sits in its generation lineage and who published it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage {
    /// This snapshot's generation number (0 = lineage root).
    pub generation: u64,
    /// The generation this snapshot was derived from (`None` for roots).
    /// Always strictly less than [`Lineage::generation`] — the single
    /// structural fact that makes lineage cycles unrepresentable.
    pub parent: Option<u64>,
    /// Publisher id — the symmetric tiebreaker for concurrent publishes
    /// of the same generation (lexicographically smaller id wins).
    pub publisher: String,
    /// Per-point version stamps, index-aligned with the embedded
    /// database.
    pub stamps: Vec<PointStamp>,
}

/// A lineaged snapshot: the v1 [`Snapshot`] payload plus [`Lineage`]
/// replication metadata, sealed as a CLRSNAP2 container.
///
/// Decoding accepts both container generations: a plain CLRSNAP1
/// artifact is *promoted* to a lineage root (generation 0, publisher
/// [`GENESIS_PUBLISHER`], freshly computed stamps), so every snapshot
/// ever exported is a valid starting point for replication.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageSnapshot {
    lineage: Lineage,
    snapshot: Snapshot,
}

impl LineageSnapshot {
    /// Wraps a snapshot as a lineage root: generation 0, no parent, all
    /// stamps introduced at generation 0.
    pub fn genesis(snapshot: Snapshot, publisher: impl Into<String>) -> Self {
        let stamps = compute_stamps(snapshot.db(), 0);
        Self {
            lineage: Lineage {
                generation: 0,
                parent: None,
                publisher: publisher.into(),
                stamps,
            },
            snapshot,
        }
    }

    /// Assembles a lineaged snapshot from explicit parts (the store's
    /// publish path). Structural lineage invariants are **not** checked
    /// here — call [`LineageSnapshot::verify`] before trusting external
    /// input.
    pub fn from_parts(lineage: Lineage, snapshot: Snapshot) -> Self {
        Self { lineage, snapshot }
    }

    /// The replication metadata.
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// The wrapped snapshot (descriptors + database).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Consumes the wrapper, returning the plain snapshot.
    pub fn into_snapshot(self) -> Snapshot {
        self.snapshot
    }

    /// Checks the lineage invariants the serve path relies on before a
    /// hot swap:
    ///
    /// - the parent generation (when present) is strictly below this one,
    ///   and a generation-0 snapshot has no parent;
    /// - the publisher id is a plain name;
    /// - there is exactly one stamp per stored point;
    /// - every stamp hash matches its point's canonical text block
    ///   (content addressing holds);
    /// - no stamp claims a generation later than the snapshot's.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Lineage`] naming the first violated invariant.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        let l = &self.lineage;
        if let Some(parent) = l.parent {
            if parent >= l.generation {
                return Err(SnapshotError::Lineage(format!(
                    "parent generation {parent} is not below generation {}",
                    l.generation
                )));
            }
        } else if l.generation != 0 {
            return Err(SnapshotError::Lineage(format!(
                "generation {} has no parent (only generation 0 is a root)",
                l.generation
            )));
        }
        if !crate::is_plain_name(&l.publisher) {
            return Err(SnapshotError::Lineage(format!(
                "publisher {:?} must match [A-Za-z0-9_-]+",
                l.publisher
            )));
        }
        let db = self.snapshot.db();
        if l.stamps.len() != db.len() {
            return Err(SnapshotError::Lineage(format!(
                "{} stamps for {} stored points",
                l.stamps.len(),
                db.len()
            )));
        }
        for (i, (stamp, point)) in l.stamps.iter().zip(db.iter()).enumerate() {
            let actual = fnv1a64(clr_dse::point_text(point).as_bytes());
            if stamp.hash != actual {
                return Err(SnapshotError::Lineage(format!(
                    "point {i}: stamp hash {:#018x} does not address the stored content {actual:#018x}",
                    stamp.hash
                )));
            }
            if stamp.generation > l.generation {
                return Err(SnapshotError::Lineage(format!(
                    "point {i}: stamp generation {} is ahead of snapshot generation {}",
                    stamp.generation, l.generation
                )));
            }
        }
        Ok(())
    }

    /// Serialises into the CLRSNAP2 container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut payload = String::new();
        let _ = writeln!(payload, "generation {}", self.lineage.generation);
        match self.lineage.parent {
            Some(p) => {
                let _ = writeln!(payload, "parent {p}");
            }
            None => payload.push_str("parent none\n"),
        }
        let _ = writeln!(payload, "publisher {}", self.lineage.publisher);
        let _ = writeln!(payload, "stamps {}", self.lineage.stamps.len());
        for stamp in &self.lineage.stamps {
            let _ = writeln!(payload, "{:016x} {}", stamp.hash, stamp.generation);
        }
        let _ = write!(
            payload,
            "graph {}\nplatform {}\n{}",
            self.snapshot.graph_desc(),
            self.snapshot.platform_desc(),
            self.snapshot.db().to_text()
        );
        seal_container(&MAGIC2, FORMAT_VERSION2, &payload)
    }

    /// Parses either container generation: a CLRSNAP2 artifact decodes
    /// with its recorded lineage; a CLRSNAP1 artifact is promoted to a
    /// genesis lineage root.
    ///
    /// # Errors
    ///
    /// As [`Snapshot::from_bytes`], plus [`SnapshotError::Lineage`] for a
    /// malformed v2 lineage block. Lineage *semantic* invariants are only
    /// checked by [`LineageSnapshot::verify`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() >= 8 && bytes[0..8] == MAGIC {
            return Ok(Self::genesis(
                Snapshot::from_bytes(bytes)?,
                GENESIS_PUBLISHER,
            ));
        }
        let text = container_payload(bytes, &MAGIC2, FORMAT_VERSION2)?;
        let mut lines = text.splitn(5, '\n');
        let bad = |what: &str| SnapshotError::Lineage(format!("missing or malformed {what} line"));
        let generation: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("generation "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("generation"))?;
        let parent_raw = lines
            .next()
            .and_then(|l| l.strip_prefix("parent "))
            .ok_or_else(|| bad("parent"))?;
        let parent = match parent_raw {
            "none" => None,
            v => Some(v.parse::<u64>().map_err(|_| bad("parent"))?),
        };
        let publisher = lines
            .next()
            .and_then(|l| l.strip_prefix("publisher "))
            .ok_or_else(|| bad("publisher"))?
            .to_string();
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("stamps "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("stamps"))?;
        let mut rest = lines.next().ok_or_else(|| bad("stamps"))?;
        let mut stamps = Vec::with_capacity(count);
        for i in 0..count {
            let (line, tail) = rest
                .split_once('\n')
                .ok_or_else(|| SnapshotError::Lineage(format!("truncated stamp list at {i}")))?;
            let (hash, generation) = line
                .split_once(' ')
                .ok_or_else(|| SnapshotError::Lineage(format!("malformed stamp {i}: {line:?}")))?;
            let hash = u64::from_str_radix(hash, 16)
                .map_err(|_| SnapshotError::Lineage(format!("bad stamp hash {hash:?}")))?;
            let generation: u64 = generation.parse().map_err(|_| {
                SnapshotError::Lineage(format!("bad stamp generation {generation:?}"))
            })?;
            stamps.push(PointStamp { hash, generation });
            rest = tail;
        }
        let snapshot = Snapshot::from_meta_text(rest)?;
        Ok(Self {
            lineage: Lineage {
                generation,
                parent,
                publisher,
                stamps,
            },
            snapshot,
        })
    }

    /// Reads and integrity-checks a snapshot file of either container
    /// generation.
    ///
    /// # Errors
    ///
    /// IO errors as [`SnapshotError::Meta`]; container damage as in
    /// [`LineageSnapshot::from_bytes`].
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Meta(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// Writes the CLRSNAP2 container to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }
}

/// Freshly stamps every point of `db` as introduced at `generation`.
pub fn compute_stamps(db: &DesignPointDb, generation: u64) -> Vec<PointStamp> {
    db.iter()
        .map(|p| PointStamp {
            hash: fnv1a64(clr_dse::point_text(p).as_bytes()),
            generation,
        })
        .collect()
}

/// Resolves a task-graph descriptor (see [`Snapshot::resolve`]).
pub fn resolve_graph(desc: &str) -> Result<TaskGraph, SnapshotError> {
    if desc == "jpeg" {
        return Ok(jpeg_encoder());
    }
    if let Some(rest) = desc.strip_prefix("tgff:") {
        if let Some((tasks, seed)) = rest.split_once(':') {
            if let (Ok(tasks), Ok(seed)) = (tasks.parse::<usize>(), seed.parse::<u64>()) {
                if tasks > 0 {
                    return Ok(TgffGenerator::new(TgffConfig::with_tasks(tasks)).generate(seed));
                }
            }
        }
    }
    Err(SnapshotError::UnknownModel(desc.to_string()))
}

/// Resolves a platform descriptor (see [`Snapshot::resolve`]).
pub fn resolve_platform(desc: &str) -> Result<Platform, SnapshotError> {
    match desc {
        "dac19" => Ok(Platform::dac19()),
        "tiny" => Ok(Platform::tiny()),
        other => Err(SnapshotError::UnknownModel(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{DesignPoint, PointOrigin};
    use clr_sched::{Mapping, SystemMetrics};

    fn sample_db() -> DesignPointDb {
        let mut db = DesignPointDb::new("based");
        for (m, r) in [(10.0, 0.99), (20.0, 0.95), (50.0, 0.80)] {
            db.push(DesignPoint::new(
                Mapping::new(vec![]),
                SystemMetrics {
                    makespan: m,
                    reliability: r,
                    energy: m / 2.0,
                    peak_power: 1.0,
                    mean_mttf: 1e6,
                },
                PointOrigin::Pareto,
            ));
        }
        db
    }

    #[test]
    fn round_trip_is_identity() {
        let snap = Snapshot::new("jpeg", "dac19", sample_db());
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        // Canonical artifacts re-encode byte-identically.
        assert_eq!(decoded.to_bytes(), snap.to_bytes());
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = Snapshot::new("jpeg", "dac19", sample_db()).to_bytes();
        assert_eq!(
            Snapshot::from_bytes(&bytes[..10]),
            Err(SnapshotError::TooShort { len: 10 })
        );
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = Snapshot::new("jpeg", "dac19", sample_db()).to_bytes();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&wrong), Err(SnapshotError::BadMagic));
        bytes[8] = 9; // version 9
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { version: 9 })
        ));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = Snapshot::new("jpeg", "dac19", sample_db()).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn reserved_flags_are_rejected() {
        let mut bytes = Snapshot::new("jpeg", "dac19", sample_db()).to_bytes();
        bytes[12] = 1;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadFlags { flags: 1 })
        ));
    }

    #[test]
    fn descriptors_resolve_to_models() {
        let (graph, platform) = Snapshot::new("jpeg", "dac19", sample_db())
            .resolve()
            .unwrap();
        assert!(graph.num_tasks() > 0);
        assert!(platform.num_pes() > 0);
        let (g2, _) = Snapshot::new("tgff:12:7", "tiny", sample_db())
            .resolve()
            .unwrap();
        assert_eq!(g2.num_tasks(), 12);
        // Deterministic: the same descriptor resolves to the same graph.
        let (g3, _) = Snapshot::new("tgff:12:7", "tiny", sample_db())
            .resolve()
            .unwrap();
        assert_eq!(g2, g3);
    }

    #[test]
    fn unknown_descriptors_are_reported() {
        assert!(matches!(
            Snapshot::new("mystery", "dac19", sample_db()).resolve(),
            Err(SnapshotError::UnknownModel(_))
        ));
        assert!(matches!(
            Snapshot::new("jpeg", "mega", sample_db()).resolve(),
            Err(SnapshotError::UnknownModel(_))
        ));
        assert!(resolve_graph("tgff:0:1").is_err(), "zero tasks");
        assert!(resolve_graph("tgff:abc:1").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("clr-serve-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        let snap = Snapshot::new("jpeg", "dac19", sample_db());
        snap.write_file(&path).unwrap();
        assert_eq!(Snapshot::read_file(&path).unwrap(), snap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_round_trip_is_identity() {
        let snap = LineageSnapshot::genesis(Snapshot::new("jpeg", "dac19", sample_db()), "node-a");
        let bytes = snap.to_bytes();
        let decoded = LineageSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.to_bytes(), bytes, "canonical re-encode");
        decoded.verify().unwrap();
    }

    #[test]
    fn v1_artifacts_promote_to_genesis_roots() {
        let v1 = Snapshot::new("jpeg", "dac19", sample_db());
        let promoted = LineageSnapshot::from_bytes(&v1.to_bytes()).unwrap();
        assert_eq!(promoted.lineage().generation, 0);
        assert_eq!(promoted.lineage().parent, None);
        assert_eq!(promoted.lineage().publisher, GENESIS_PUBLISHER);
        assert_eq!(promoted.lineage().stamps.len(), v1.db().len());
        assert_eq!(promoted.snapshot(), &v1);
        promoted.verify().unwrap();
        // Promotion re-seals as v2, and that form round-trips exactly.
        let reencoded = LineageSnapshot::from_bytes(&promoted.to_bytes()).unwrap();
        assert_eq!(reencoded, promoted);
    }

    #[test]
    fn lineage_verify_rejects_broken_invariants() {
        let base = LineageSnapshot::genesis(Snapshot::new("jpeg", "dac19", sample_db()), "node-a");
        // Non-root without a parent.
        let mut orphan = base.clone();
        orphan.lineage.generation = 3;
        assert!(matches!(orphan.verify(), Err(SnapshotError::Lineage(_))));
        // Parent at or above its own generation.
        let mut looped = base.clone();
        looped.lineage.generation = 2;
        looped.lineage.parent = Some(2);
        assert!(matches!(looped.verify(), Err(SnapshotError::Lineage(_))));
        // A stamp that no longer addresses its content.
        let mut tampered = base.clone();
        tampered.lineage.stamps[0].hash ^= 1;
        assert!(matches!(tampered.verify(), Err(SnapshotError::Lineage(_))));
        // A stamp from the future.
        let mut future = base.clone();
        future.lineage.stamps[0].generation = 9;
        assert!(matches!(future.verify(), Err(SnapshotError::Lineage(_))));
        // A publisher that is not a plain name.
        let mut spacey = base;
        spacey.lineage.publisher = "a b".into();
        assert!(matches!(spacey.verify(), Err(SnapshotError::Lineage(_))));
    }

    #[test]
    fn v2_payload_corruption_fails_the_checksum() {
        let mut bytes =
            LineageSnapshot::genesis(Snapshot::new("jpeg", "dac19", sample_db()), "n").to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            LineageSnapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
