//! Incremental per-tenant serving: one [`TenantSession`] is the resident
//! state machine behind both the batch [`crate::replay`] loop and the
//! `clr-served` daemon.
//!
//! A session owns everything one tenant needs to turn a QoS event into a
//! decision — its [`clr_runtime::RuntimeContext`], a fresh policy
//! instance, the monotonised clock, the degradation-ladder state
//! (last-known-good, consecutive-fault counter, quarantine flag) and the
//! fault plan's site coordinates — so `feed(event)` is a total function:
//! every event produces a [`DecisionRecord`], whatever the input looks
//! like. Batch replay is a thin loop over sessions (`new` + `feed`*),
//! which is what makes the batch and incremental paths provably one code
//! path: the proptest in `tests/feed_replay.rs` asserts byte-identical
//! CSVs and journals between the two.
//!
//! ## Malformed timestamps
//!
//! A non-finite event time (`NaN`/`±inf`) cannot come from a JSONL trace
//! (JSON has no such tokens) but can arrive through the wire protocol or
//! the API. It used to be silently clamped to "now" and served as if
//! nothing happened; a session instead classifies it as **malformed
//! input**: the event is served through the degradation ladder at the
//! current clock, recorded with [`clr_chaos::FaultKind::TraceMalformed`],
//! journaled like any absorbed fault and counted toward quarantine.

use clr_chaos::FaultKind;
use clr_learn::LearnerState;
use clr_runtime::{DecisionInput, Feedback, HvPolicy, RuntimeContext, RuntimePolicy};

use crate::wire::{PromoteStatus, SwapStatus};
use crate::{
    DecisionRecord, HealthState, LineageSnapshot, PromoteRecord, ReplayConfig, ServeStatus,
    SwapRecord, Tenant, TenantOutcome, TraceEvent,
};

/// The decision-layer fault kinds, in the fixed priority order used when
/// several fire on the same event.
const DECISION_FAULTS: [FaultKind; 3] = [
    FaultKind::TransientInfeasible,
    FaultKind::BudgetExhausted,
    FaultKind::PolicyFailure,
];

/// One tenant's resident decision state machine.
///
/// Feed events in the tenant's stream order; the session accumulates the
/// same [`TenantOutcome`] a batch replay would produce. Sessions share no
/// mutable state, so a fleet of sessions can be sharded across worker
/// threads freely — a decision depends only on `(tenant, tenant_idx,
/// config, events so far)`, never on scheduling.
pub struct TenantSession<'a> {
    tenant: &'a Tenant,
    /// Fleet index: one half of the fault plan's site coordinates, so
    /// injection is independent of worker scheduling.
    tenant_idx: usize,
    config: ReplayConfig,
    /// `None` when the runtime context failed to build (corrupted
    /// artifact): the ladder's terminal case, every event quarantines.
    ctx: Option<RuntimeContext<'a>>,
    baseline: HvPolicy,
    policy: Box<dyn RuntimePolicy>,
    /// The online learner, when the tenant's spec is `aura+learn:` —
    /// it decides and observes *instead of* `policy`, so a quarantined
    /// session (which never observes) freezes learning automatically.
    learn: Option<LearnerState>,
    current: usize,
    lkg: Option<usize>,
    consecutive_faults: usize,
    quarantined: bool,
    next_episode_end: f64,
    feas_buf: Vec<usize>,
    /// Per-point makespans, extracted once at seat time so the
    /// per-decision slack computation reads a dense array instead of
    /// chasing into the full design-point records.
    makespans: Vec<f64>,
    now: f64,
    outcome: TenantOutcome,
}

impl std::fmt::Debug for TenantSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSession")
            .field("tenant", &self.tenant.name())
            .field("tenant_idx", &self.tenant_idx)
            .field("events", &self.outcome.events)
            .field("current", &self.current)
            .field("quarantined", &self.quarantined)
            .finish_non_exhaustive()
    }
}

impl<'a> TenantSession<'a> {
    /// Opens a session for `tenant` at fleet index `tenant_idx`.
    ///
    /// A tenant whose runtime context cannot be built (e.g. a corrupted
    /// artifact with non-finite metrics) is quarantined outright instead
    /// of panicking: the failure is recorded in the outcome and every fed
    /// event is recorded-but-not-served.
    pub fn new(tenant: &'a Tenant, tenant_idx: usize, config: &ReplayConfig) -> Self {
        let mut outcome = TenantOutcome {
            name: tenant.name().to_string(),
            points: tenant.db().len(),
            events: 0,
            reconfigurations: 0,
            violations: 0,
            degraded: 0,
            quarantined: 0,
            faults: 0,
            total_drc: 0.0,
            failure: None,
            generation: tenant.generation(),
            swaps: Vec::new(),
            decisions: Vec::new(),
            shadows: Vec::new(),
            promotes: Vec::new(),
            learn: None,
            health: HealthState::new(),
        };
        let ctx = match RuntimeContext::try_new(tenant.graph(), tenant.platform(), tenant.db()) {
            Ok(ctx) => Some(ctx),
            Err(e) => {
                outcome.failure = Some(e.to_string());
                None
            }
        };
        let quarantined = ctx.is_none();
        if quarantined && config.telemetry {
            // A failed runtime context is a quarantine entry at seat
            // time: the registry reports it before any event arrives.
            outcome.health.last_status = ServeStatus::Quarantined;
            outcome.health.note_quarantine_entry();
        }
        let learn = tenant.policy().learn_config().map(|cfg| {
            LearnerState::new(tenant.name(), tenant.db().len(), tenant.generation(), cfg)
                // clr-audit: allow(CLR105) Tenant::from_parts validates every spec this builds
                .expect("checked by PolicySpec::validate")
        });
        if let Some(l) = &learn {
            outcome.learn = Some(crate::LearnSummary::of(l));
        }
        Self {
            tenant,
            tenant_idx,
            config: *config,
            ctx,
            baseline: HvPolicy::new(),
            policy: tenant.policy().build(tenant.db().len()),
            learn,
            current: tenant.initial_point(),
            lkg: None,
            consecutive_faults: 0,
            quarantined,
            next_episode_end: config.episode_cycles,
            feas_buf: Vec::new(),
            makespans: (0..tenant.db().len())
                .map(|i| {
                    tenant
                        .db()
                        .get(i)
                        .map_or(f64::INFINITY, |p| p.metrics.makespan)
                })
                .collect(),
            now: 0.0,
            outcome,
        }
    }

    /// The tenant this session serves.
    pub fn tenant(&self) -> &'a Tenant {
        self.tenant
    }

    /// The session's fleet index (fault-plan site coordinate).
    pub fn tenant_idx(&self) -> usize {
        self.tenant_idx
    }

    /// Events fed so far.
    pub fn events(&self) -> usize {
        self.outcome.events
    }

    /// `true` once the session has stopped serving (K consecutive faults
    /// or a failed runtime context).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// The live health registry — what a `Stats` query reports for this
    /// tenant.
    pub fn health(&self) -> &HealthState {
        &self.outcome.health
    }

    /// The active snapshot-store generation of the database serving
    /// this session (the seated tenant's until a successful
    /// [`TenantSession::swap_db`]).
    pub fn generation(&self) -> u64 {
        self.outcome.generation
    }

    /// Hot-swaps the session's database from a decoded lineage
    /// snapshot, between decisions.
    ///
    /// The offered artifact must pass [`LineageSnapshot::verify`], match
    /// `expected_generation` when one is given, and rebuild a runtime
    /// context over the tenant's resolved graph/platform. On any of
    /// those failures the running database is kept serving — the
    /// ladder's last-known-good artifact — and the attempt is recorded
    /// with [`SwapStatus::VerifyFailed`].
    ///
    /// A successful swap re-seats the session deterministically: fresh
    /// policy instance, operating point back at the tenant's initial
    /// index (clamped to the new database), cleared last-known-good and
    /// fault streak (point indices are not comparable across
    /// generations), and quarantine lifted — a verified rollout is the
    /// recovery path for a tenant that stopped serving.
    pub fn swap_db(
        &mut self,
        snapshot: &LineageSnapshot,
        expected_generation: Option<u64>,
    ) -> SwapRecord {
        let from_gen = self.outcome.generation;
        let to_gen = snapshot.lineage().generation;
        let acceptable = snapshot.verify().is_ok()
            && expected_generation.is_none_or(|expected| expected == to_gen);
        let built = if acceptable {
            RuntimeContext::try_new_owned(
                self.tenant.graph(),
                self.tenant.platform(),
                snapshot.snapshot().db().clone(),
            )
            .ok()
        } else {
            None
        };
        let record = match built {
            None => SwapRecord {
                event: self.outcome.events,
                from_gen,
                to_gen,
                points: self.outcome.points,
                status: SwapStatus::VerifyFailed,
            },
            Some(ctx) => {
                let db = snapshot.snapshot().db();
                let points = db.len();
                self.makespans = (0..points)
                    .map(|i| db.get(i).map_or(f64::INFINITY, |p| p.metrics.makespan))
                    .collect();
                self.ctx = Some(ctx);
                self.policy = self.tenant.policy().build(points);
                // The learner survives the hot-swap: tables re-seat to
                // the new point count, counters and regret accumulators
                // carry over (checkpoint lineage follows the new
                // generation).
                if let Some(l) = self.learn.as_mut() {
                    l.reseat(points, to_gen);
                    self.outcome.learn = Some(crate::LearnSummary::of(l));
                }
                self.current = self.tenant.initial_point().min(points - 1);
                self.lkg = None;
                self.consecutive_faults = 0;
                self.quarantined = false;
                self.outcome.failure = None;
                self.outcome.points = points;
                self.outcome.generation = to_gen;
                SwapRecord {
                    event: self.outcome.events,
                    from_gen,
                    to_gen,
                    points,
                    status: SwapStatus::Swapped,
                }
            }
        };
        self.outcome.swaps.push(record.clone());
        record
    }

    /// Records a swap attempt that failed before an artifact could be
    /// decoded (an unreadable file, a corrupt container): the running
    /// database keeps serving, and the failed rollout still reaches the
    /// journal.
    pub fn note_swap_failure(&mut self, status: SwapStatus) -> SwapRecord {
        let record = SwapRecord {
            event: self.outcome.events,
            from_gen: self.outcome.generation,
            to_gen: self.outcome.generation,
            points: self.outcome.points,
            status,
        };
        self.outcome.swaps.push(record.clone());
        record
    }

    /// Promotes the tenant's candidate policy over its incumbent,
    /// between decisions. Deterministic given the stream position it is
    /// applied at — the daemon applies it batch-flush-first, like
    /// `SwapDb`. A tenant without a learner records the refusal.
    pub fn promote(&mut self) -> PromoteRecord {
        let record = match self.learn.as_mut() {
            Some(l) => {
                l.promote();
                let promotions = l.promotions();
                self.outcome.learn = Some(crate::LearnSummary::of(l));
                PromoteRecord {
                    event: self.outcome.events,
                    promotions,
                    status: PromoteStatus::Promoted,
                }
            }
            None => PromoteRecord {
                event: self.outcome.events,
                promotions: 0,
                status: PromoteStatus::NoLearner,
            },
        };
        self.outcome.promotes.push(record.clone());
        record
    }

    /// The live learner, when the tenant's spec asks for online
    /// learning — checkpoint it with [`LearnerState::to_bytes`].
    pub fn learner(&self) -> Option<&LearnerState> {
        self.learn.as_ref()
    }

    /// Restores learner state from a decoded checkpoint (a restart's
    /// warm start). The checkpoint must belong to this tenant, carry
    /// the same hyper-parameters, and index the same number of stored
    /// points at the same generation as the serving database.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first mismatch; the session
    /// keeps its current learner state on any error.
    pub fn restore_learner(&mut self, state: LearnerState) -> Result<(), String> {
        let Some(live) = self.learn.as_mut() else {
            return Err(format!(
                "tenant {:?} has no learner (policy {})",
                self.tenant.name(),
                self.tenant.policy()
            ));
        };
        if state.tenant() != self.tenant.name() {
            return Err(format!(
                "checkpoint belongs to tenant {:?}, not {:?}",
                state.tenant(),
                self.tenant.name()
            ));
        }
        if state.config() != live.config() {
            return Err("checkpoint hyper-parameters differ from the tenant's spec".to_string());
        }
        if state.points() != self.outcome.points {
            return Err(format!(
                "checkpoint indexes {} points, the serving database stores {}",
                state.points(),
                self.outcome.points
            ));
        }
        if state.generation() != self.outcome.generation {
            return Err(format!(
                "checkpoint is for generation {}, the session serves generation {}",
                state.generation(),
                self.outcome.generation
            ));
        }
        *live = state;
        self.outcome.learn = Some(crate::LearnSummary::of(live));
        Ok(())
    }

    /// The accumulated outcome (identical to what a batch replay of the
    /// same event sequence would report).
    pub fn outcome(&self) -> &TenantOutcome {
        &self.outcome
    }

    /// Closes the session, yielding its outcome.
    pub fn into_outcome(self) -> TenantOutcome {
        self.outcome
    }

    /// Serves one event, returning the decision record (also appended to
    /// the session's outcome).
    ///
    /// Total by construction: malformed timestamps degrade (see the
    /// module docs), quarantined sessions record without serving, empty
    /// feasible sets hold position and count a violation. The event's
    /// `tenant` field is the caller's routing concern and is not
    /// re-checked here (a `debug_assert!` guards mismatches in dev
    /// builds).
    pub fn feed(&mut self, event: &TraceEvent) -> DecisionRecord {
        debug_assert!(
            event.tenant == self.tenant.name(),
            "event for {:?} fed to session {:?}",
            event.tenant,
            self.tenant.name()
        );
        self.feed_at(event.time, event.spec)
    }

    /// [`feed`](Self::feed) without the event envelope: the wire path
    /// (`clr-served`) has already routed the request by tenant name, so
    /// it serves `(time, spec)` directly instead of materialising a
    /// [`TraceEvent`] (and its owned name `String`) per request.
    pub fn feed_at(&mut self, event_time: f64, spec: clr_dse::QosSpec) -> DecisionRecord {
        // Monotonised clock: duplicate timestamps serve in file order at
        // the same instant; a regressing timestamp serves "now"; a
        // non-finite timestamp is malformed input, served "now" through
        // the ladder.
        let malformed = !event_time.is_finite();
        let time = if malformed {
            self.now
        } else {
            event_time.max(self.now)
        };
        self.now = time;
        self.outcome.events += 1;
        let ordinal = self.outcome.events as u64;

        let (Some(ctx), false) = (self.ctx.as_ref(), self.quarantined) else {
            self.outcome.quarantined += 1;
            let record = DecisionRecord {
                event: self.outcome.events,
                time,
                spec,
                feasible: 0,
                from: self.current,
                to: self.current,
                drc: 0.0,
                score: None,
                p_rc: None,
                violated: false,
                status: ServeStatus::Quarantined,
                fault: None,
            };
            if self.config.telemetry {
                self.outcome.health.observe(&record, 0.0);
            }
            self.outcome.decisions.push(record.clone());
            return record;
        };

        if self.config.episode_cycles.is_finite() && self.config.episode_cycles > 0.0 {
            while self.next_episode_end <= time {
                match self.learn.as_mut() {
                    Some(l) => l.end_episode(),
                    None => self.policy.end_episode(),
                }
                self.next_episode_end += self.config.episode_cycles;
            }
        }

        ctx.feasible_into(&spec, &mut self.feas_buf);
        // Malformed input outranks injected decision faults: the event
        // itself is the damage.
        let fault = if malformed {
            Some(FaultKind::TraceMalformed)
        } else {
            DECISION_FAULTS
                .iter()
                .copied()
                .find(|&k| self.config.faults.fires(k, self.tenant_idx as u64, ordinal))
        };
        if fault == Some(FaultKind::TransientInfeasible) {
            // The feasibility index is the faulted component: the
            // feasible set transiently reads empty.
            self.feas_buf.clear();
        }

        let (to, violated, score, p_rc, status) = match fault {
            None => {
                let input = DecisionInput {
                    ctx,
                    current: self.current,
                    spec: &spec,
                    feasible: &self.feas_buf,
                };
                // The learner fronts the base policy when the spec asks
                // for online learning; both speak `RuntimePolicy`.
                let outcome = match self.learn.as_mut() {
                    Some(l) => l.decide(&input),
                    None => self.policy.decide(&input),
                };
                let (decision, score, p_rc) = (outcome.choice, outcome.score, outcome.p_rc);
                match decision {
                    Some(p) => (p, false, score, p_rc, ServeStatus::Normal),
                    None => (self.current, true, score, p_rc, ServeStatus::Normal),
                }
            }
            Some(kind) => {
                // The ladder: last-known-good → hypervolume baseline →
                // hold (+violation).
                let feas_buf = &self.feas_buf;
                let lkg_usable = self.lkg.filter(|&l| {
                    // Under a transient-infeasibility fault the index is
                    // down, so the stale point is served unverified.
                    kind == FaultKind::TransientInfeasible || feas_buf.binary_search(&l).is_ok()
                });
                if let Some(l) = lkg_usable {
                    (l, false, None, None, ServeStatus::DegradedLkg)
                } else if let Some(b) = self.baseline.select_from(ctx, &spec, &self.feas_buf) {
                    (b, false, None, None, ServeStatus::DegradedBaseline)
                } else {
                    (self.current, true, None, None, ServeStatus::DegradedHold)
                }
            }
        };
        let drc = ctx.drc(self.current, to);
        let feedback = Feedback {
            ctx,
            from: self.current,
            to,
        };
        match self.learn.as_mut() {
            // The learner observes every *executed* transition —
            // including ladder-served ones its decide never picked: the
            // candidate learns from reality, not from its own plan.
            Some(l) => l.observe(&feedback),
            None => self.policy.observe(&feedback),
        }
        // Harvest the shadow evaluation of a clean scored decision,
        // stamped with the stream ordinal (the learner counts only its
        // own scored decisions; the journal speaks stream positions).
        if let Some(l) = self.learn.as_mut() {
            if let Some(mut shadow) = l.take_shadow() {
                shadow.event = self.outcome.events;
                self.outcome.shadows.push(shadow);
            }
            self.outcome.learn = Some(crate::LearnSummary::of(l));
        }

        if violated {
            self.outcome.violations += 1;
        }
        if to != self.current {
            self.outcome.reconfigurations += 1;
        }
        let mut entered_quarantine = false;
        if fault.is_some() {
            self.outcome.faults += 1;
            self.outcome.degraded += 1;
            self.consecutive_faults += 1;
            if self.config.quarantine_after > 0
                && self.consecutive_faults >= self.config.quarantine_after
            {
                self.quarantined = true;
                entered_quarantine = true;
            }
        } else {
            self.consecutive_faults = 0;
            if !violated {
                self.lkg = Some(to);
            }
        }
        self.outcome.total_drc += drc;
        let record = DecisionRecord {
            event: self.outcome.events,
            time,
            spec,
            feasible: self.feas_buf.len(),
            from: self.current,
            to,
            drc,
            score,
            p_rc,
            violated,
            status,
            fault,
        };
        if self.config.telemetry {
            // Decision "latency" in simulated time: how much makespan
            // headroom the served point leaves under the requirement.
            let slack = self
                .makespans
                .get(to)
                .map_or(0.0, |m| (spec.max_makespan - m).max(0.0));
            self.outcome.health.observe(&record, slack);
            if entered_quarantine {
                self.outcome.health.note_quarantine_entry();
            }
        }
        self.outcome.decisions.push(record.clone());
        self.current = to;
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicySpec;
    use clr_dse::{DesignPoint, DesignPointDb, PointOrigin, QosSpec};
    use clr_platform::Platform;
    use clr_sched::{Mapping, SystemMetrics};
    use clr_taskgraph::jpeg_encoder;

    fn small_db(n: usize) -> DesignPointDb {
        let mapping = Mapping::first_fit(&jpeg_encoder(), &Platform::dac19()).unwrap();
        let mut db = DesignPointDb::new("t");
        for i in 0..n {
            let f = i as f64 / n as f64;
            db.push(DesignPoint::new(
                mapping.clone(),
                SystemMetrics {
                    makespan: 50.0 + 100.0 * f,
                    reliability: 0.6 + 0.35 * f,
                    energy: 1.0 + f,
                    peak_power: 1.0,
                    mean_mttf: 100.0,
                },
                PointOrigin::Pareto,
            ));
        }
        db
    }

    fn session_tenant() -> Tenant {
        Tenant::from_parts(
            "solo",
            jpeg_encoder(),
            Platform::dac19(),
            small_db(8),
            PolicySpec::Ura { p_rc: 0.5 },
        )
        .unwrap()
    }

    fn ev(time: f64, s: f64, f: f64) -> TraceEvent {
        TraceEvent {
            tenant: "solo".into(),
            time,
            spec: QosSpec::new(s, f),
        }
    }

    #[test]
    fn feed_accumulates_the_outcome_in_stream_order() {
        let tenant = session_tenant();
        let mut session = TenantSession::new(&tenant, 0, &ReplayConfig::default());
        for i in 0..5 {
            let d = session.feed(&ev(f64::from(i) * 10.0, f64::MAX, 0.0));
            assert_eq!(d.event, i as usize + 1);
            assert_eq!(d.status, ServeStatus::Normal);
        }
        assert_eq!(session.events(), 5);
        assert_eq!(session.outcome().decisions.len(), 5);
        assert!(!session.is_quarantined());
        let outcome = session.into_outcome();
        assert_eq!(outcome.events, 5);
        assert_eq!(outcome.violations, 0);
    }

    #[test]
    fn non_finite_timestamps_are_classified_malformed() {
        let tenant = session_tenant();
        let config = ReplayConfig {
            quarantine_after: 0,
            ..ReplayConfig::default()
        };
        let mut session = TenantSession::new(&tenant, 0, &config);
        let clean = session.feed(&ev(10.0, f64::MAX, 0.0));
        assert_eq!(clean.status, ServeStatus::Normal);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let d = session.feed(&ev(bad, f64::MAX, 0.0));
            assert_eq!(d.fault, Some(FaultKind::TraceMalformed));
            assert!(d.status.is_degraded(), "malformed input must degrade");
            assert_eq!(d.time, 10.0, "malformed input serves at the current clock");
        }
        assert_eq!(session.outcome().faults, 3);
        // The ladder serves the last-known-good point, so service
        // continues despite the damage.
        assert_eq!(session.outcome().degraded, 3);
    }

    #[test]
    fn consecutive_malformed_timestamps_quarantine() {
        let tenant = session_tenant();
        let config = ReplayConfig {
            quarantine_after: 2,
            ..ReplayConfig::default()
        };
        let mut session = TenantSession::new(&tenant, 0, &config);
        session.feed(&ev(f64::NAN, f64::MAX, 0.0));
        assert!(!session.is_quarantined());
        session.feed(&ev(f64::NAN, f64::MAX, 0.0));
        assert!(session.is_quarantined(), "K consecutive malformed events");
        let d = session.feed(&ev(30.0, f64::MAX, 0.0));
        assert_eq!(d.status, ServeStatus::Quarantined);
    }

    #[test]
    fn malformed_first_event_serves_at_time_zero() {
        let tenant = session_tenant();
        let config = ReplayConfig {
            quarantine_after: 0,
            ..ReplayConfig::default()
        };
        let mut session = TenantSession::new(&tenant, 0, &config);
        let d = session.feed(&ev(f64::NAN, f64::MAX, 0.0));
        assert_eq!(d.time, 0.0);
        assert_eq!(d.fault, Some(FaultKind::TraceMalformed));
        // No LKG yet: the baseline rung serves it.
        assert_eq!(d.status, ServeStatus::DegradedBaseline);
    }
}
