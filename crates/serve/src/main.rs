//! `clr-serve` — publish design-time databases as snapshots and replay
//! multi-tenant QoS-event traces through the runtime decision engine.
//!
//! ```text
//! clr-serve snapshot <IN.db> <OUT.snap> [--graph G] [--platform P]
//! clr-serve inspect <SNAP>..
//! clr-serve gen-trace --out FILE --tenant NAME=SNAP@POLICY.. [--seed N]
//!                     [--cycles C] [--mean-gap G]
//! clr-serve replay --trace FILE --tenant NAME=SNAP@POLICY..
//!                  [--out-dir DIR] [--threads N] [--episode-cycles C]
//! ```
//!
//! A tenant argument is `NAME=SNAP@POLICY`: a plain name, a snapshot
//! path, and a policy spec (`ura:<p_rc>`, `aura:<p_rc>,<gamma>,<alpha>`,
//! or `hv`), split on the *last* `=` and `@` so snapshot paths may
//! contain either character.
//!
//! `replay` writes `decisions.csv` plus a `replay.obs.jsonl` journal into
//! `--out-dir` (CSV goes to stdout when no directory is given). Both
//! outputs are byte-identical at any `--threads` value — `ci.sh` diffs
//! them across thread counts.
//!
//! Exit codes: `0` success, `1` replay/serving failure, `2` usage / IO /
//! decode error.

use std::process::ExitCode;

use clr_obs::{Obs, ObsMode};
use clr_serve::{generate_trace, replay, PolicySpec, ReplayConfig, Snapshot, Tenant, Trace};

const USAGE: &str = "usage: clr-serve <command>
  snapshot <IN.db> <OUT.snap> [--graph G] [--platform P]
  inspect <SNAP>..
  gen-trace --out FILE --tenant NAME=SNAP@POLICY.. [--seed N] [--cycles C] [--mean-gap G]
  replay --trace FILE --tenant NAME=SNAP@POLICY.. [--out-dir DIR] [--threads N] [--episode-cycles C]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "snapshot" => cmd_snapshot(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "gen-trace" => cmd_gen_trace(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        other => {
            eprintln!("clr-serve: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Prints a usage error and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("clr-serve: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// Positional operands plus `--flag value` pairs, borrowed from argv.
type SplitArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits args into positional operands and `--flag value` pairs.
fn split_flags(args: &[String]) -> Result<SplitArgs<'_>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, value.as_str()));
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok((positional, flags))
}

/// Looks up the last occurrence of a flag.
fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
}

/// Parses every `--tenant NAME=SNAP@POLICY` argument into a fleet,
/// loading each snapshot from disk.
fn parse_fleet(flags: &[(&str, &str)]) -> Result<Vec<Tenant>, String> {
    let mut tenants = Vec::new();
    for (name, value) in flags.iter().filter(|(n, _)| *n == "tenant") {
        let _ = name;
        let (name, rest) = value
            .split_once('=')
            .ok_or_else(|| format!("tenant {value:?} is not NAME=SNAP@POLICY"))?;
        let (path, policy) = rest
            .rsplit_once('@')
            .ok_or_else(|| format!("tenant {value:?} is not NAME=SNAP@POLICY"))?;
        let policy: PolicySpec = policy.parse()?;
        let snapshot = Snapshot::read_file(path).map_err(|e| format!("{path}: {e}"))?;
        tenants.push(Tenant::from_snapshot(name, &snapshot, policy).map_err(|e| e.to_string())?);
    }
    if tenants.is_empty() {
        return Err("at least one --tenant NAME=SNAP@POLICY is required".into());
    }
    Ok(tenants)
}

/// `snapshot`: wrap a text-codec database in the binary snapshot
/// container.
fn cmd_snapshot(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [input, output] = positional[..] else {
        return usage_error("snapshot takes <IN.db> <OUT.snap>");
    };
    let graph = flag(&flags, "graph").unwrap_or("jpeg");
    let platform = flag(&flags, "platform").unwrap_or("dac19");
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let db = match clr_dse::DesignPointDb::from_text(&text) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("clr-serve: {input}: database decode error: {e}");
            return ExitCode::from(2);
        }
    };
    let snapshot = Snapshot::new(graph, platform, db);
    if let Err(e) = snapshot.resolve() {
        eprintln!("clr-serve: warning: {e} (snapshot written, but it will not replay here)");
    }
    if let Err(e) = snapshot.write_file(output) {
        eprintln!("clr-serve: cannot write {output}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {output}: graph {} platform {} points {}",
        snapshot.graph_desc(),
        snapshot.platform_desc(),
        snapshot.db().len()
    );
    ExitCode::SUCCESS
}

/// `inspect`: decode snapshots and print their metadata.
fn cmd_inspect(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage_error("inspect takes at least one snapshot path");
    }
    for path in args {
        match Snapshot::read_file(path) {
            Ok(snap) => println!(
                "{path}: graph {} platform {} points {} db {:?}",
                snap.graph_desc(),
                snap.platform_desc(),
                snap.db().len(),
                snap.db().name()
            ),
            Err(e) => {
                eprintln!("clr-serve: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// `gen-trace`: seeded multi-tenant workload generation.
fn cmd_gen_trace(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("gen-trace takes flags only");
    }
    let Some(out) = flag(&flags, "out") else {
        return usage_error("gen-trace needs --out FILE");
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, String> {
        flag(&flags, name)
            .map_or(Ok(default), |v| {
                v.parse().map_err(|_| format!("bad --{name} {v:?}"))
            })
            .and_then(|v: f64| {
                if v.is_finite() && v > 0.0 {
                    Ok(v)
                } else {
                    Err(format!("--{name} must be finite and positive"))
                }
            })
    };
    let seed: u64 = match flag(&flags, "seed").map_or(Ok(1), str::parse) {
        Ok(s) => s,
        Err(_) => return usage_error("bad --seed"),
    };
    let (cycles, mean_gap) = match (parse_f64("cycles", 10_000.0), parse_f64("mean-gap", 100.0)) {
        (Ok(c), Ok(g)) => (c, g),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let trace = generate_trace(&tenants, seed, cycles, mean_gap);
    if let Err(e) = std::fs::write(out, trace.to_jsonl()) {
        eprintln!("clr-serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out}: {} events for {} tenants (seed {seed}, {cycles} cycles)",
        trace.len(),
        tenants.len()
    );
    ExitCode::SUCCESS
}

/// `replay`: drive a trace through the engine, writing deterministic
/// decision outputs.
fn cmd_replay(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("replay takes flags only");
    }
    let Some(trace_path) = flag(&flags, "trace") else {
        return usage_error("replay needs --trace FILE");
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match Trace::from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let mut config = ReplayConfig::default();
    if let Some(v) = flag(&flags, "threads") {
        match v.parse() {
            Ok(n) => config.threads = n,
            Err(_) => return usage_error("bad --threads"),
        }
    }
    if let Some(v) = flag(&flags, "episode-cycles") {
        match v.parse::<f64>() {
            Ok(c) if c > 0.0 => config.episode_cycles = c,
            _ => return usage_error("bad --episode-cycles"),
        }
    }

    let report = match replay(&tenants, &trace, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("clr-serve: {e}");
            return ExitCode::from(1);
        }
    };

    for o in report.outcomes() {
        eprintln!(
            "tenant {}: {} events, {} reconfigurations, {} violations, total dRC {}",
            o.name, o.events, o.reconfigurations, o.violations, o.total_drc
        );
    }
    if report.dropped > 0 {
        eprintln!(
            "clr-serve: {} events addressed no tenant in the fleet (dropped)",
            report.dropped
        );
    }

    match flag(&flags, "out-dir") {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("clr-serve: cannot create {dir}: {e}");
                return ExitCode::from(2);
            }
            let csv_path = format!("{dir}/decisions.csv");
            if let Err(e) = std::fs::write(&csv_path, report.decisions_csv()) {
                eprintln!("clr-serve: cannot write {csv_path}: {e}");
                return ExitCode::from(2);
            }
            let obs = Obs::new(ObsMode::Json);
            report.emit_obs(&obs);
            match obs.export(dir, "replay") {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("wrote {}", p.display());
                    }
                    eprintln!("wrote {csv_path}");
                }
                Err(e) => {
                    eprintln!("clr-serve: cannot export journal to {dir}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => print!("{}", report.decisions_csv()),
    }
    ExitCode::SUCCESS
}
