//! `clr-serve` — publish design-time databases as snapshots and replay
//! multi-tenant QoS-event traces through the runtime decision engine.
//!
//! ```text
//! clr-serve snapshot <IN.db> <OUT.snap> [--graph G] [--platform P]
//! clr-serve inspect <SNAP>..
//! clr-serve gen-trace --out FILE --tenant NAME=SNAP@POLICY.. [--seed N]
//!                     [--cycles C] [--mean-gap G]
//! clr-serve replay --trace FILE --tenant NAME=SNAP@POLICY..
//!                  [--out-dir DIR] [--threads N] [--episode-cycles C]
//! clr-serve wire-encode --trace FILE --out FILE [--shutdown BOOL]
//! clr-serve wire-decode --in FILE --tenants NAME,NAME,..
//! ```
//!
//! A tenant argument is `NAME=SNAP@POLICY`: a plain name, a snapshot
//! path, and a policy spec (`ura:<p_rc>`, `aura:<p_rc>,<gamma>,<alpha>`,
//! or `hv`), split on the *last* `=` and `@` so snapshot paths may
//! contain either character.
//!
//! `replay` writes `decisions.csv` plus a `replay.obs.jsonl` journal into
//! `--out-dir` (CSV goes to stdout when no directory is given). Both
//! outputs are byte-identical at any `--threads` value — `ci.sh` diffs
//! them across thread counts.
//!
//! `wire-encode` turns a JSONL trace into a `CLRWIRE1` request-frame
//! stream for `clr-served` (appending a shutdown frame unless
//! `--shutdown false`); `wire-decode` turns the daemon's response-frame
//! stream back into the decision CSV, grouping rows by tenant in the
//! `--tenants` fleet order so the result is byte-comparable against
//! `replay`'s `decisions.csv`. `ci.sh` closes that loop as its daemon
//! smoke test.
//!
//! Flag parsing is strict: an unknown or typo'd `--flag` is a usage
//! error, not silently ignored.
//!
//! Exit codes: `0` success, `1` replay/serving failure, `2` usage / IO /
//! decode error.

use std::process::ExitCode;

use clr_obs::{Obs, ObsMode};
use clr_serve::cli::{flag, parse_fleet, split_flags};
use clr_serve::wire::{Frame, Request};
use clr_serve::{
    generate_trace, is_plain_name, replay, ReplayConfig, Snapshot, Trace, DECISIONS_CSV_HEADER,
};

const USAGE: &str = "usage: clr-serve <command>
  snapshot <IN.db> <OUT.snap> [--graph G] [--platform P]
  inspect <SNAP>..
  gen-trace --out FILE --tenant NAME=SNAP@POLICY.. [--seed N] [--cycles C] [--mean-gap G]
  replay --trace FILE --tenant NAME=SNAP@POLICY.. [--out-dir DIR] [--threads N] [--episode-cycles C]
  wire-encode --trace FILE --out FILE [--shutdown BOOL]
  wire-decode --in FILE --tenants NAME,NAME,..";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "snapshot" => cmd_snapshot(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "gen-trace" => cmd_gen_trace(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "wire-encode" => cmd_wire_encode(&args[1..]),
        "wire-decode" => cmd_wire_decode(&args[1..]),
        other => {
            eprintln!("clr-serve: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Prints a usage error and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("clr-serve: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// `snapshot`: wrap a text-codec database in the binary snapshot
/// container.
fn cmd_snapshot(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["graph", "platform"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [input, output] = positional[..] else {
        return usage_error("snapshot takes <IN.db> <OUT.snap>");
    };
    let graph = flag(&flags, "graph").unwrap_or("jpeg");
    let platform = flag(&flags, "platform").unwrap_or("dac19");
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let db = match clr_dse::DesignPointDb::from_text(&text) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("clr-serve: {input}: database decode error: {e}");
            return ExitCode::from(2);
        }
    };
    let snapshot = Snapshot::new(graph, platform, db);
    if let Err(e) = snapshot.resolve() {
        eprintln!("clr-serve: warning: {e} (snapshot written, but it will not replay here)");
    }
    if let Err(e) = snapshot.write_file(output) {
        eprintln!("clr-serve: cannot write {output}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {output}: graph {} platform {} points {}",
        snapshot.graph_desc(),
        snapshot.platform_desc(),
        snapshot.db().len()
    );
    ExitCode::SUCCESS
}

/// `inspect`: decode snapshots and print their metadata.
fn cmd_inspect(args: &[String]) -> ExitCode {
    let (positional, _) = match split_flags(args, &[]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if positional.is_empty() {
        return usage_error("inspect takes at least one snapshot path");
    }
    for path in positional {
        match Snapshot::read_file(path) {
            Ok(snap) => println!(
                "{path}: graph {} platform {} points {} db {:?}",
                snap.graph_desc(),
                snap.platform_desc(),
                snap.db().len(),
                snap.db().name()
            ),
            Err(e) => {
                eprintln!("clr-serve: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// `gen-trace`: seeded multi-tenant workload generation.
fn cmd_gen_trace(args: &[String]) -> ExitCode {
    let allowed = ["out", "tenant", "seed", "cycles", "mean-gap"];
    let (positional, flags) = match split_flags(args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("gen-trace takes flags only");
    }
    let Some(out) = flag(&flags, "out") else {
        return usage_error("gen-trace needs --out FILE");
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, String> {
        flag(&flags, name)
            .map_or(Ok(default), |v| {
                v.parse().map_err(|_| format!("bad --{name} {v:?}"))
            })
            .and_then(|v: f64| {
                if v.is_finite() && v > 0.0 {
                    Ok(v)
                } else {
                    Err(format!("--{name} must be finite and positive"))
                }
            })
    };
    let seed: u64 = match flag(&flags, "seed").map_or(Ok(1), str::parse) {
        Ok(s) => s,
        Err(_) => return usage_error("bad --seed"),
    };
    let (cycles, mean_gap) = match (parse_f64("cycles", 10_000.0), parse_f64("mean-gap", 100.0)) {
        (Ok(c), Ok(g)) => (c, g),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let trace = generate_trace(&tenants, seed, cycles, mean_gap);
    if let Err(e) = std::fs::write(out, trace.to_jsonl()) {
        eprintln!("clr-serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out}: {} events for {} tenants (seed {seed}, {cycles} cycles)",
        trace.len(),
        tenants.len()
    );
    ExitCode::SUCCESS
}

/// `replay`: drive a trace through the engine, writing deterministic
/// decision outputs.
fn cmd_replay(args: &[String]) -> ExitCode {
    let allowed = ["trace", "tenant", "out-dir", "threads", "episode-cycles"];
    let (positional, flags) = match split_flags(args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("replay takes flags only");
    }
    let Some(trace_path) = flag(&flags, "trace") else {
        return usage_error("replay needs --trace FILE");
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match Trace::from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let mut config = ReplayConfig::default();
    if let Some(v) = flag(&flags, "threads") {
        match v.parse() {
            Ok(n) => config.threads = n,
            Err(_) => return usage_error("bad --threads"),
        }
    }
    if let Some(v) = flag(&flags, "episode-cycles") {
        match v.parse::<f64>() {
            Ok(c) if c > 0.0 => config.episode_cycles = c,
            _ => return usage_error("bad --episode-cycles"),
        }
    }

    let report = match replay(&tenants, &trace, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("clr-serve: {e}");
            return ExitCode::from(1);
        }
    };

    for o in report.outcomes() {
        eprintln!(
            "tenant {}: {} events, {} reconfigurations, {} violations, total dRC {}",
            o.name, o.events, o.reconfigurations, o.violations, o.total_drc
        );
    }
    if report.dropped > 0 {
        let names: Vec<String> = report
            .dropped_by_tenant
            .iter()
            .map(|(name, count)| format!("{name:?} ({count})"))
            .collect();
        eprintln!(
            "clr-serve: warning: {} events dropped — trace addresses tenants absent \
             from the fleet: {}",
            report.dropped,
            names.join(", ")
        );
    }

    match flag(&flags, "out-dir") {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("clr-serve: cannot create {dir}: {e}");
                return ExitCode::from(2);
            }
            let csv_path = format!("{dir}/decisions.csv");
            if let Err(e) = std::fs::write(&csv_path, report.decisions_csv()) {
                eprintln!("clr-serve: cannot write {csv_path}: {e}");
                return ExitCode::from(2);
            }
            let obs = Obs::new(ObsMode::Json);
            report.emit_obs(&obs);
            match obs.export(dir, "replay") {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("wrote {}", p.display());
                    }
                    eprintln!("wrote {csv_path}");
                }
                Err(e) => {
                    eprintln!("clr-serve: cannot export journal to {dir}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => print!("{}", report.decisions_csv()),
    }
    ExitCode::SUCCESS
}

/// `wire-encode`: a JSONL trace as a `CLRWIRE1` request-frame stream
/// (seq = 1-based event index), shutdown-terminated by default.
fn cmd_wire_encode(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["trace", "out", "shutdown"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("wire-encode takes flags only");
    }
    let (Some(trace_path), Some(out)) = (flag(&flags, "trace"), flag(&flags, "out")) else {
        return usage_error("wire-encode needs --trace FILE and --out FILE");
    };
    let shutdown = match flag(&flags, "shutdown").unwrap_or("true") {
        "true" => true,
        "false" => false,
        other => return usage_error(&format!("bad --shutdown {other:?} (true or false)")),
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match Trace::from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut bytes = Vec::new();
    for (i, event) in trace.events().iter().enumerate() {
        bytes.extend_from_slice(
            &Frame::Request(Request::from_event(i as u64 + 1, event)).to_bytes(),
        );
    }
    if shutdown {
        bytes.extend_from_slice(&Frame::Shutdown.to_bytes());
    }
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("clr-serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "wrote {out}: {} request frames{} ({} bytes)",
        trace.len(),
        if shutdown { " + shutdown" } else { "" },
        bytes.len()
    );
    ExitCode::SUCCESS
}

/// `wire-decode`: a `CLRWIRE1` response-frame stream back into the
/// decision CSV, grouped by tenant in the given fleet order.
fn cmd_wire_decode(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["in", "tenants"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("wire-decode takes flags only");
    }
    let (Some(input), Some(tenants)) = (flag(&flags, "in"), flag(&flags, "tenants")) else {
        return usage_error("wire-decode needs --in FILE and --tenants NAME,NAME,..");
    };
    let order: Vec<&str> = tenants.split(',').filter(|s| !s.is_empty()).collect();
    if order.is_empty() || !order.iter().all(|name| is_plain_name(name)) {
        return usage_error("bad --tenants (comma-separated plain names)");
    }
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("clr-serve: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut rows: Vec<Vec<String>> = vec![Vec::new(); order.len()];
    let mut rest = &bytes[..];
    let mut errors = 0usize;
    while !rest.is_empty() {
        let (frame, used) = match Frame::from_bytes(rest) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("clr-serve: {input}: {e}");
                return ExitCode::from(2);
            }
        };
        rest = &rest[used..];
        match frame {
            Frame::Response(r) => {
                let Some(idx) = order.iter().position(|&name| name == r.tenant) else {
                    eprintln!(
                        "clr-serve: {input}: response for tenant {:?} not in --tenants",
                        r.tenant
                    );
                    return ExitCode::from(2);
                };
                rows[idx].push(r.decision.csv_row(&r.tenant));
            }
            Frame::Error(e) => {
                eprintln!(
                    "clr-serve: warning: error frame seq {}: {}",
                    e.seq, e.message
                );
                errors += 1;
            }
            Frame::Shutdown => {}
            Frame::Request(_) => {
                eprintln!("clr-serve: {input}: request frame in a response stream");
                return ExitCode::from(2);
            }
        }
    }
    println!("{DECISIONS_CSV_HEADER}");
    for tenant_rows in rows {
        for row in tenant_rows {
            println!("{row}");
        }
    }
    if errors > 0 {
        eprintln!("clr-serve: warning: {errors} requests were rejected by the daemon");
    }
    ExitCode::SUCCESS
}
