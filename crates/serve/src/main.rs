//! `clr-serve` — publish design-time databases as snapshots and replay
//! multi-tenant QoS-event traces through the runtime decision engine.
//!
//! ```text
//! clr-serve snapshot <IN.db> <OUT.snap> [--graph G] [--platform P]
//! clr-serve inspect <SNAP>..
//! clr-serve gen-trace --out FILE --tenant NAME=SNAP@POLICY.. [--seed N]
//!                     [--cycles C] [--mean-gap G]
//! clr-serve replay --trace FILE --tenant NAME=SNAP@POLICY..
//!                  [--out-dir DIR] [--threads N] [--episode-cycles C]
//! clr-serve wire-encode --trace FILE --out FILE [--shutdown BOOL]
//! clr-serve wire-decode --in FILE --tenants NAME,NAME,..
//! clr-serve stats --request-out FILE [--tenant NAME] [--flight BOOL] [--seq N]
//! clr-serve stats (--in RESPONSES | --snapshot FILE) [--json]
//! clr-serve top (--in RESPONSES | --snapshot FILE | --journal FILE) [--limit N]
//! clr-serve swap-db --request-out FILE --tenant NAME --path SNAP [--expect GEN] [--seq N]
//! clr-serve promote --request-out FILE --tenant NAME [--seq N]
//! clr-serve ab --journal FILE
//! ```
//!
//! A tenant argument is `NAME=SNAP@POLICY`: a plain name, a snapshot
//! path, and a policy spec (`ura:<p_rc>`, `aura:<p_rc>,<gamma>,<alpha>`,
//! or `hv`), split on the *last* `=` and `@` so snapshot paths may
//! contain either character.
//!
//! `replay` writes `decisions.csv` plus a `replay.obs.jsonl` journal into
//! `--out-dir` (CSV goes to stdout when no directory is given). Both
//! outputs are byte-identical at any `--threads` value — `ci.sh` diffs
//! them across thread counts.
//!
//! `wire-encode` turns a JSONL trace into a `CLRWIRE1` request-frame
//! stream for `clr-served` (appending a shutdown frame unless
//! `--shutdown false`); `wire-decode` turns the daemon's response-frame
//! stream back into the decision CSV, grouping rows by tenant in the
//! `--tenants` fleet order so the result is byte-comparable against
//! `replay`'s `decisions.csv`. `ci.sh` closes that loop as its daemon
//! smoke test.
//!
//! `stats` speaks the live-telemetry side of the protocol: with
//! `--request-out` it encodes a `CLRWIRE1` stats-query frame (splice it
//! into a request stream before the shutdown frame); with `--in` it
//! pulls the snapshot out of the daemon's response stream; with
//! `--snapshot` it re-renders a saved snapshot line. Output is
//! Prometheus-style text unless `--json` asks for the canonical
//! schema-v2 JSON line. `top` renders the same snapshot (or a
//! `replay.obs.jsonl` journal) as a fleet health table, worst p99 slack
//! first.
//!
//! Flag parsing is strict: an unknown or typo'd `--flag` is a usage
//! error, not silently ignored. (`--json` on `stats`/`top` is the one
//! bare switch — it takes no value.)
//!
//! Exit codes: `0` success, `1` replay/serving failure, `2` usage / IO /
//! decode error.

use std::process::ExitCode;

use clr_obs::{Obs, ObsMode, TelemetrySnapshot};
use clr_serve::cli::{flag, parse_fleet, split_flags};
use clr_serve::wire::{Frame, PromoteRequest, Request, StatsRequest, SwapDbRequest, STATS_VERSION};
use clr_serve::{
    ab_report_from_journal, generate_trace, is_plain_name, render_prometheus, replay,
    telemetry_from_journal, ReplayConfig, Snapshot, Trace, DECISIONS_CSV_HEADER,
};

const USAGE: &str = "usage: clr-serve <command>
  snapshot <IN.db> <OUT.snap> [--graph G] [--platform P]
  inspect <SNAP>..
  gen-trace --out FILE --tenant NAME=SNAP@POLICY.. [--seed N] [--cycles C] [--mean-gap G]
  replay --trace FILE --tenant NAME=SNAP@POLICY.. [--out-dir DIR] [--threads N] [--episode-cycles C]
  wire-encode --trace FILE --out FILE [--shutdown BOOL]
  wire-decode --in FILE --tenants NAME,NAME,..
  stats --request-out FILE [--tenant NAME] [--flight BOOL] [--seq N]
  stats (--in RESPONSES | --snapshot FILE) [--json]
  top (--in RESPONSES | --snapshot FILE | --journal FILE) [--limit N]
  swap-db --request-out FILE --tenant NAME --path SNAP [--expect GEN] [--seq N]
  promote --request-out FILE --tenant NAME [--seq N]
  ab --journal FILE";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "snapshot" => cmd_snapshot(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "gen-trace" => cmd_gen_trace(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "wire-encode" => cmd_wire_encode(&args[1..]),
        "wire-decode" => cmd_wire_decode(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "swap-db" => cmd_swap_db(&args[1..]),
        "promote" => cmd_promote(&args[1..]),
        "ab" => cmd_ab(&args[1..]),
        other => {
            eprintln!("clr-serve: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Prints a usage error and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("clr-serve: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// `snapshot`: wrap a text-codec database in the binary snapshot
/// container.
fn cmd_snapshot(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["graph", "platform"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [input, output] = positional[..] else {
        return usage_error("snapshot takes <IN.db> <OUT.snap>");
    };
    let graph = flag(&flags, "graph").unwrap_or("jpeg");
    let platform = flag(&flags, "platform").unwrap_or("dac19");
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let db = match clr_dse::DesignPointDb::from_text(&text) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("clr-serve: {input}: database decode error: {e}");
            return ExitCode::from(2);
        }
    };
    let snapshot = Snapshot::new(graph, platform, db);
    if let Err(e) = snapshot.resolve() {
        eprintln!("clr-serve: warning: {e} (snapshot written, but it will not replay here)");
    }
    if let Err(e) = snapshot.write_file(output) {
        eprintln!("clr-serve: cannot write {output}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {output}: graph {} platform {} points {}",
        snapshot.graph_desc(),
        snapshot.platform_desc(),
        snapshot.db().len()
    );
    ExitCode::SUCCESS
}

/// `inspect`: decode snapshots and print their metadata.
fn cmd_inspect(args: &[String]) -> ExitCode {
    let (positional, _) = match split_flags(args, &[]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if positional.is_empty() {
        return usage_error("inspect takes at least one snapshot path");
    }
    for path in positional {
        match Snapshot::read_file(path) {
            Ok(snap) => println!(
                "{path}: graph {} platform {} points {} db {:?}",
                snap.graph_desc(),
                snap.platform_desc(),
                snap.db().len(),
                snap.db().name()
            ),
            Err(e) => {
                eprintln!("clr-serve: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// `gen-trace`: seeded multi-tenant workload generation.
fn cmd_gen_trace(args: &[String]) -> ExitCode {
    let allowed = ["out", "tenant", "seed", "cycles", "mean-gap"];
    let (positional, flags) = match split_flags(args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("gen-trace takes flags only");
    }
    let Some(out) = flag(&flags, "out") else {
        return usage_error("gen-trace needs --out FILE");
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, String> {
        flag(&flags, name)
            .map_or(Ok(default), |v| {
                v.parse().map_err(|_| format!("bad --{name} {v:?}"))
            })
            .and_then(|v: f64| {
                if v.is_finite() && v > 0.0 {
                    Ok(v)
                } else {
                    Err(format!("--{name} must be finite and positive"))
                }
            })
    };
    let seed: u64 = match flag(&flags, "seed").map_or(Ok(1), str::parse) {
        Ok(s) => s,
        Err(_) => return usage_error("bad --seed"),
    };
    let (cycles, mean_gap) = match (parse_f64("cycles", 10_000.0), parse_f64("mean-gap", 100.0)) {
        (Ok(c), Ok(g)) => (c, g),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let trace = generate_trace(&tenants, seed, cycles, mean_gap);
    if let Err(e) = std::fs::write(out, trace.to_jsonl()) {
        eprintln!("clr-serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out}: {} events for {} tenants (seed {seed}, {cycles} cycles)",
        trace.len(),
        tenants.len()
    );
    ExitCode::SUCCESS
}

/// `replay`: drive a trace through the engine, writing deterministic
/// decision outputs.
fn cmd_replay(args: &[String]) -> ExitCode {
    let allowed = ["trace", "tenant", "out-dir", "threads", "episode-cycles"];
    let (positional, flags) = match split_flags(args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("replay takes flags only");
    }
    let Some(trace_path) = flag(&flags, "trace") else {
        return usage_error("replay needs --trace FILE");
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match Trace::from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let tenants = match parse_fleet(&flags) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let mut config = ReplayConfig::default();
    if let Some(v) = flag(&flags, "threads") {
        match v.parse() {
            Ok(n) => config.threads = n,
            Err(_) => return usage_error("bad --threads"),
        }
    }
    if let Some(v) = flag(&flags, "episode-cycles") {
        match v.parse::<f64>() {
            Ok(c) if c > 0.0 => config.episode_cycles = c,
            _ => return usage_error("bad --episode-cycles"),
        }
    }

    let report = match replay(&tenants, &trace, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("clr-serve: {e}");
            return ExitCode::from(1);
        }
    };

    for line in report.summary_lines() {
        if line.starts_with("warning:") {
            eprintln!("clr-serve: {line}");
        } else {
            eprintln!("{line}");
        }
    }
    for line in report.ab_lines() {
        eprintln!("{line}");
    }

    match flag(&flags, "out-dir") {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("clr-serve: cannot create {dir}: {e}");
                return ExitCode::from(2);
            }
            let csv_path = format!("{dir}/decisions.csv");
            if let Err(e) = std::fs::write(&csv_path, report.decisions_csv()) {
                eprintln!("clr-serve: cannot write {csv_path}: {e}");
                return ExitCode::from(2);
            }
            let obs = Obs::new(ObsMode::Json);
            report.emit_obs(&obs);
            match obs.export(dir, "replay") {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("wrote {}", p.display());
                    }
                    eprintln!("wrote {csv_path}");
                }
                Err(e) => {
                    eprintln!("clr-serve: cannot export journal to {dir}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => print!("{}", report.decisions_csv()),
    }
    ExitCode::SUCCESS
}

/// `wire-encode`: a JSONL trace as a `CLRWIRE1` request-frame stream
/// (seq = 1-based event index), shutdown-terminated by default.
fn cmd_wire_encode(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["trace", "out", "shutdown"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("wire-encode takes flags only");
    }
    let (Some(trace_path), Some(out)) = (flag(&flags, "trace"), flag(&flags, "out")) else {
        return usage_error("wire-encode needs --trace FILE and --out FILE");
    };
    let shutdown = match flag(&flags, "shutdown").unwrap_or("true") {
        "true" => true,
        "false" => false,
        other => return usage_error(&format!("bad --shutdown {other:?} (true or false)")),
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match Trace::from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut bytes = Vec::new();
    for (i, event) in trace.events().iter().enumerate() {
        bytes.extend_from_slice(
            &Frame::Request(Request::from_event(i as u64 + 1, event)).to_bytes(),
        );
    }
    if shutdown {
        bytes.extend_from_slice(&Frame::Shutdown.to_bytes());
    }
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("clr-serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "wrote {out}: {} request frames{} ({} bytes)",
        trace.len(),
        if shutdown { " + shutdown" } else { "" },
        bytes.len()
    );
    ExitCode::SUCCESS
}

/// `wire-decode`: a `CLRWIRE1` response-frame stream back into the
/// decision CSV, grouped by tenant in the given fleet order.
fn cmd_wire_decode(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["in", "tenants"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("wire-decode takes flags only");
    }
    let (Some(input), Some(tenants)) = (flag(&flags, "in"), flag(&flags, "tenants")) else {
        return usage_error("wire-decode needs --in FILE and --tenants NAME,NAME,..");
    };
    let order: Vec<&str> = tenants.split(',').filter(|s| !s.is_empty()).collect();
    if order.is_empty() || !order.iter().all(|name| is_plain_name(name)) {
        return usage_error("bad --tenants (comma-separated plain names)");
    }
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("clr-serve: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut rows: Vec<Vec<String>> = vec![Vec::new(); order.len()];
    let mut rest = &bytes[..];
    let mut errors = 0usize;
    while !rest.is_empty() {
        let (frame, used) = match Frame::from_bytes(rest) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("clr-serve: {input}: {e}");
                return ExitCode::from(2);
            }
        };
        rest = &rest[used..];
        match frame {
            Frame::Response(r) => {
                let Some(idx) = order.iter().position(|&name| name == r.tenant) else {
                    eprintln!(
                        "clr-serve: {input}: response for tenant {:?} not in --tenants",
                        r.tenant
                    );
                    return ExitCode::from(2);
                };
                rows[idx].push(r.decision.csv_row(&r.tenant));
            }
            Frame::Error(e) => {
                eprintln!(
                    "clr-serve: warning: error frame seq {}: {}",
                    e.seq, e.message
                );
                errors += 1;
            }
            Frame::SwapDbResponse(r) => {
                // Valid daemon output in a mixed stream; surfaced on
                // stderr so the CSV stays byte-comparable.
                eprintln!(
                    "clr-serve: note: swap response seq {} tenant {}: {} (gen {})",
                    r.seq,
                    r.tenant,
                    r.status.label(),
                    r.generation
                );
            }
            Frame::PromoteResponse(r) => {
                eprintln!(
                    "clr-serve: note: promote response seq {} tenant {}: {} ({} promotions)",
                    r.seq,
                    r.tenant,
                    r.status.label(),
                    r.promotions
                );
            }
            // A stats response is valid daemon output in a mixed
            // stream; the CSV only wants decisions.
            Frame::Shutdown | Frame::StatsResponse(_) => {}
            Frame::Request(_) | Frame::Stats(_) | Frame::SwapDb(_) | Frame::Promote(_) => {
                eprintln!("clr-serve: {input}: request-side frame in a response stream");
                return ExitCode::from(2);
            }
        }
    }
    println!("{DECISIONS_CSV_HEADER}");
    for tenant_rows in rows {
        for row in tenant_rows {
            println!("{row}");
        }
    }
    if errors > 0 {
        eprintln!("clr-serve: warning: {errors} requests were rejected by the daemon");
    }
    ExitCode::SUCCESS
}

/// Strips a bare `--json` switch (the one valueless flag) before strict
/// flag splitting, returning the remaining args and whether it was set.
fn take_json_switch(args: &[String]) -> (Vec<String>, bool) {
    let mut json = false;
    let rest = args
        .iter()
        .filter(|a| {
            if a.as_str() == "--json" {
                json = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, json)
}

/// Pulls the telemetry snapshot out of a `CLRWIRE1` response stream:
/// the first stats-response frame wins; error frames are surfaced.
fn snapshot_from_frames(path: &str) -> Result<TelemetrySnapshot, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rest = &bytes[..];
    while !rest.is_empty() {
        let (frame, used) = Frame::from_bytes(rest).map_err(|e| format!("{path}: {e}"))?;
        rest = &rest[used..];
        match frame {
            Frame::StatsResponse(r) => {
                return TelemetrySnapshot::from_json(&r.snapshot)
                    .map_err(|e| format!("{path}: stats response seq {}: {e}", r.seq));
            }
            Frame::Error(e) => {
                eprintln!(
                    "clr-serve: warning: error frame seq {}: {}",
                    e.seq, e.message
                );
            }
            _ => {}
        }
    }
    Err(format!("{path}: no stats response frame in the stream"))
}

/// Loads a snapshot from whichever source flag is present.
fn load_snapshot(flags: &[(&str, &str)]) -> Result<TelemetrySnapshot, String> {
    match (
        flag(flags, "in"),
        flag(flags, "snapshot"),
        flag(flags, "journal"),
    ) {
        (Some(path), None, None) => snapshot_from_frames(path),
        (None, Some(path), None) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            TelemetrySnapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))
        }
        (None, None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            telemetry_from_journal(&text).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("exactly one snapshot source is required".into()),
    }
}

/// `stats`: encode a stats-query frame, or render a fleet snapshot from
/// a response stream / saved snapshot line.
fn cmd_stats(args: &[String]) -> ExitCode {
    let (args, json) = take_json_switch(args);
    let allowed = ["request-out", "tenant", "flight", "seq", "in", "snapshot"];
    let (positional, flags) = match split_flags(&args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("stats takes flags only");
    }
    if let Some(out) = flag(&flags, "request-out") {
        if flag(&flags, "in").is_some() || flag(&flags, "snapshot").is_some() {
            return usage_error("--request-out excludes --in and --snapshot");
        }
        let tenant = match flag(&flags, "tenant") {
            Some(name) if is_plain_name(name) => Some(name.to_string()),
            Some(name) => return usage_error(&format!("bad --tenant {name:?} (a plain name)")),
            None => None,
        };
        let flight = match flag(&flags, "flight").unwrap_or("false") {
            "true" => true,
            "false" => false,
            other => return usage_error(&format!("bad --flight {other:?} (true or false)")),
        };
        let seq: u64 = match flag(&flags, "seq").map_or(Ok(1), str::parse) {
            Ok(s) => s,
            Err(_) => return usage_error("bad --seq"),
        };
        let frame = Frame::Stats(StatsRequest {
            seq,
            version: STATS_VERSION,
            flight,
            tenant,
        });
        let bytes = frame.to_bytes();
        if let Err(e) = std::fs::write(out, &bytes) {
            eprintln!("clr-serve: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {out}: 1 stats request frame ({} bytes)", bytes.len());
        return ExitCode::SUCCESS;
    }
    let snapshot = match load_snapshot(&flags) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("clr-serve: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", snapshot.to_json());
    } else {
        print!("{}", render_prometheus(&snapshot));
    }
    ExitCode::SUCCESS
}

/// `swap-db`: encode a `CLRWIRE1` live database-swap request frame
/// (splice it into a request stream between decision requests; the
/// daemon applies it between batches and answers in stream position).
fn cmd_swap_db(args: &[String]) -> ExitCode {
    let allowed = ["request-out", "tenant", "path", "expect", "seq"];
    let (positional, flags) = match split_flags(args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("swap-db takes flags only");
    }
    let (Some(out), Some(tenant), Some(path)) = (
        flag(&flags, "request-out"),
        flag(&flags, "tenant"),
        flag(&flags, "path"),
    ) else {
        return usage_error("swap-db needs --request-out FILE, --tenant NAME and --path SNAP");
    };
    if !is_plain_name(tenant) {
        return usage_error(&format!("bad --tenant {tenant:?} (a plain name)"));
    }
    let expected_generation = match flag(&flags, "expect") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(g) => Some(g),
            Err(_) => return usage_error("bad --expect (a generation number)"),
        },
    };
    let seq: u64 = match flag(&flags, "seq").map_or(Ok(1), str::parse) {
        Ok(s) => s,
        Err(_) => return usage_error("bad --seq"),
    };
    let frame = Frame::SwapDb(SwapDbRequest {
        seq,
        tenant: tenant.to_string(),
        expected_generation,
        path: path.to_string(),
    });
    let bytes = frame.to_bytes();
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("clr-serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "wrote {out}: 1 swap-db request frame for tenant {tenant} ({} bytes)",
        bytes.len()
    );
    ExitCode::SUCCESS
}

/// `promote`: encode a `CLRWIRE1` shadow→live promotion request frame
/// (splice it into a request stream; the daemon applies it between
/// batches — the A/B rollout's "ship it" step).
fn cmd_promote(args: &[String]) -> ExitCode {
    let allowed = ["request-out", "tenant", "seq"];
    let (positional, flags) = match split_flags(args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("promote takes flags only");
    }
    let (Some(out), Some(tenant)) = (flag(&flags, "request-out"), flag(&flags, "tenant")) else {
        return usage_error("promote needs --request-out FILE and --tenant NAME");
    };
    if !is_plain_name(tenant) {
        return usage_error(&format!("bad --tenant {tenant:?} (a plain name)"));
    }
    let seq: u64 = match flag(&flags, "seq").map_or(Ok(1), str::parse) {
        Ok(s) => s,
        Err(_) => return usage_error("bad --seq"),
    };
    let frame = Frame::Promote(PromoteRequest {
        seq,
        tenant: tenant.to_string(),
    });
    let bytes = frame.to_bytes();
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("clr-serve: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "wrote {out}: 1 promote request frame for tenant {tenant} ({} bytes)",
        bytes.len()
    );
    ExitCode::SUCCESS
}

/// `ab`: the A/B rollout report refolded from a replay journal —
/// per-tenant regret lines, per-arm aggregates and the promotion
/// verdict.
fn cmd_ab(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["journal"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("ab takes flags only");
    }
    let Some(path) = flag(&flags, "journal") else {
        return usage_error("ab needs --journal FILE");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-serve: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let lines = match ab_report_from_journal(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("clr-serve: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if lines.is_empty() {
        eprintln!("clr-serve: {path}: no shadow events (no tenant ran an aura+learn policy)");
        return ExitCode::from(1);
    }
    for line in lines {
        println!("{line}");
    }
    ExitCode::SUCCESS
}

/// `top`: the fleet health table — one row per tenant, worst p99 slack
/// first (least headroom at the tail), fault-rate desc as tie-break.
fn cmd_top(args: &[String]) -> ExitCode {
    let (args, json) = take_json_switch(args);
    if json {
        return usage_error("top renders a table; use stats --json for the raw snapshot");
    }
    let allowed = ["in", "snapshot", "journal", "limit"];
    let (positional, flags) = match split_flags(&args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("top takes flags only");
    }
    let limit: usize = match flag(&flags, "limit").map_or(Ok(usize::MAX), str::parse) {
        Ok(0) | Err(_) => return usage_error("bad --limit (a positive integer)"),
        Ok(n) => n,
    };
    let snapshot = match load_snapshot(&flags) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("clr-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let mut rows: Vec<&clr_obs::TenantTelemetry> = snapshot.tenants.iter().collect();
    rows.sort_by(|a, b| {
        let p99 = |t: &clr_obs::TenantTelemetry| {
            t.histogram("slack")
                .and_then(clr_obs::QuantileHistogram::p99)
                .unwrap_or(f64::INFINITY)
        };
        let faults = |t: &clr_obs::TenantTelemetry| t.window_mean("fault_rate").unwrap_or(0.0);
        p99(a)
            .total_cmp(&p99(b))
            .then(faults(b).total_cmp(&faults(a)))
            .then_with(|| a.name.cmp(&b.name))
    });
    let fmt_q = |q: Option<f64>| q.map_or("-".to_string(), |v| format!("{v:.2}"));
    let fmt_rate = |r: Option<f64>| r.map_or("-".to_string(), |v| format!("{v:.3}"));
    println!(
        "{:<12} {:<12} {:>4} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8} {:>5}  DWELL",
        "TENANT",
        "STATUS",
        "GEN",
        "EVENTS",
        "SERVED",
        "SLACK-P50",
        "SLACK-P99",
        "FAULT/W",
        "VIOL/W",
        "QUAR"
    );
    for t in rows.iter().take(limit) {
        let slack = t.histogram("slack");
        let dwell: Vec<String> = t
            .counters
            .iter()
            .filter(|(name, v)| name.starts_with("dwell.") && *v > 0)
            .map(|(name, v)| format!("{} {v}", &name["dwell.".len()..]))
            .collect();
        println!(
            "{:<12} {:<12} {:>4} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8} {:>5}  {}",
            t.name,
            t.status,
            t.generation,
            t.events,
            t.counter("served").unwrap_or(0),
            fmt_q(slack.and_then(clr_obs::QuantileHistogram::p50)),
            fmt_q(slack.and_then(clr_obs::QuantileHistogram::p99)),
            fmt_rate(t.window_mean("fault_rate")),
            fmt_rate(t.window_mean("violation_rate")),
            t.counter("quarantine.entries").unwrap_or(0),
            dwell.join(", ")
        );
    }
    if snapshot.tenants.len() > limit {
        eprintln!(
            "clr-serve: {} of {} tenants shown (--limit {limit})",
            limit,
            snapshot.tenants.len()
        );
    }
    if !snapshot.dropped.is_empty() {
        let total: u64 = snapshot.dropped.iter().map(|(_, n)| n).sum();
        eprintln!("clr-serve: warning: {total} events dropped for unknown tenants");
    }
    ExitCode::SUCCESS
}
