//! clr-serve: the multi-tenant runtime decision engine.
//!
//! The design-time half of the methodology produces design-point
//! databases (BaseD/ReD); this crate is the run-time serving layer that
//! consumes them at fleet scale. Three pieces:
//!
//! - **Snapshot store** ([`Snapshot`]): a compact versioned binary
//!   container for a published database plus the model descriptors
//!   needed to rebuild its [`clr_runtime::RuntimeContext`], protected by
//!   an FNV-1a integrity checksum. `examples/export_db.rs` emits it;
//!   `clr-verify snapshot` lints it (CLR06x).
//! - **Trace codec** ([`Trace`]): batched QoS-event workloads as JSONL,
//!   either seeded-generated ([`generate_trace`]) or replayed from disk.
//! - **Event engine** ([`replay`]): a deterministic event loop
//!   multiplexing many [`Tenant`]s (application × database × policy),
//!   fanning independent tenants across `clr-par` workers bit-identically
//!   at any thread count, and emitting per-tenant decision journals
//!   through `clr-obs`.
//!
//! The `clr-serve` binary fronts all three (`snapshot`, `inspect`,
//! `gen-trace`, `replay`).

pub mod cli;
mod daemon;
mod engine;
pub mod health;
mod session;
mod snapshot;
mod tenant;
mod trace;
pub mod wire;

pub use clr_chaos::{FaultKind, FaultPlan, FaultPlanError, FaultRates};
pub use daemon::{serve_stream, Daemon, DaemonConfig, DaemonError, DaemonReport};
pub use engine::{
    replay, summary_lines, DecisionRecord, LearnSummary, PromoteRecord, ReplayConfig, ReplayError,
    ReplayReport, ServeStatus, SwapRecord, TenantOutcome, DECISIONS_CSV_HEADER,
};
pub use health::{
    ab_report_from_journal, fleet_snapshot, flight_rows, render_prometheus, telemetry_from_journal,
    HealthState, FLIGHT_RECORDER_LEN, HEALTH_WINDOW,
};
pub use session::TenantSession;
pub use snapshot::{
    compute_stamps, fnv1a64, resolve_graph, resolve_platform, Lineage, LineageSnapshot, PointStamp,
    Snapshot, SnapshotError, FORMAT_VERSION, FORMAT_VERSION2, GENESIS_PUBLISHER, HEADER_LEN, MAGIC,
    MAGIC2,
};
pub use tenant::{PolicySpec, Tenant};
pub use trace::{generate_trace, is_plain_name, Trace, TraceError, TraceEvent};
