//! Per-tenant health accounting and the fleet telemetry snapshot.
//!
//! A [`HealthState`] rides inside every [`crate::TenantOutcome`]: the
//! session updates it on each decision (serial, per-tenant stream
//! order), so the batch replay loop, an incremental [`crate::TenantSession`]
//! and the `clr-served` daemon all accumulate the exact same numbers —
//! one shared source for the CLI summary, the journal counters and the
//! `Stats` wire response. Aggregation into a [`TelemetrySnapshot`]
//! walks tenants in fleet (seating) order regardless of how sessions
//! are sharded across worker threads, which is what makes snapshots
//! byte-identical at any `CLR_THREADS`.
//!
//! The flight recorder is the last [`FLIGHT_RECORDER_LEN`] *served*
//! decisions, derived at snapshot time from the decision log every
//! session already keeps (so the serving hot path pays nothing for it).
//! Quarantined events are recorded but never served, so the recorder
//! freezes at the moment a tenant enters quarantine — the snapshot then
//! always carries that tenant's final approach, even when the caller
//! did not ask for flight data.

use clr_chaos::FaultKind;
use clr_obs::telemetry::{
    BitWindow, QuantileHistogram, TelemetrySnapshot, TenantTelemetry, TELEMETRY_SCHEMA_VERSION,
};
use clr_obs::Event;

use crate::{DecisionRecord, ServeStatus};

/// Served decisions kept per tenant in the flight recorder.
pub const FLIGHT_RECORDER_LEN: usize = 16;

/// Capacity (events) of the per-tenant rolling rate windows.
pub const HEALTH_WINDOW: usize = 64;

/// The five ladder rungs, in [`ServeStatus`] declaration order — the
/// dwell-occupancy axis.
pub const STATUS_TAGS: [&str; 5] = ["normal", "lkg", "baseline", "hold", "quarantined"];

fn status_index(status: ServeStatus) -> usize {
    match status {
        ServeStatus::Normal => 0,
        ServeStatus::DegradedLkg => 1,
        ServeStatus::DegradedBaseline => 2,
        ServeStatus::DegradedHold => 3,
        ServeStatus::Quarantined => 4,
    }
}

/// One tenant's live health registry.
///
/// Updated only from the tenant's serial decision stream; everything in
/// here is a pure function of the decisions observed so far.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthState {
    /// Events observed (served or quarantined-recorded).
    pub decisions: u64,
    /// Events actually served (normally or degraded).
    pub served: u64,
    /// Served events that moved the operating point.
    pub reconfigurations: u64,
    /// Events with an empty feasible set.
    pub violations: u64,
    /// Absorbed faults per [`FaultKind::ALL`] slot.
    pub faults_by_kind: [u64; FaultKind::ALL.len()],
    /// Events spent on each ladder rung ([`STATUS_TAGS`] order).
    pub dwell: [u64; 5],
    /// Times the tenant entered quarantine (at most once per session,
    /// plus one for a failed runtime context at seat time).
    pub quarantine_entries: u64,
    /// The rung the most recent event landed on.
    pub last_status: ServeStatus,
    /// Decision "latency": simulated-time slack (`s_max` minus the
    /// served point's makespan, clamped at zero) per served event.
    pub slack: QuantileHistogram,
    /// Feasible-set size per served event.
    pub feasible: QuantileHistogram,
    /// Fault indicator (0/1) over the last [`HEALTH_WINDOW`] events.
    pub fault_window: BitWindow,
    /// Violation indicator (0/1) over the last [`HEALTH_WINDOW`] events.
    pub violation_window: BitWindow,
}

impl Default for HealthState {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthState {
    /// A fresh registry: nothing observed, status `normal`.
    pub fn new() -> Self {
        Self {
            decisions: 0,
            served: 0,
            reconfigurations: 0,
            violations: 0,
            faults_by_kind: [0; FaultKind::ALL.len()],
            dwell: [0; 5],
            quarantine_entries: 0,
            last_status: ServeStatus::Normal,
            slack: QuantileHistogram::new(),
            feasible: QuantileHistogram::new(),
            fault_window: BitWindow::new(HEALTH_WINDOW),
            violation_window: BitWindow::new(HEALTH_WINDOW),
        }
    }

    /// Folds one decision into the registry. `slack` is the served
    /// point's simulated-time slack (ignored for unserved events).
    #[inline]
    pub fn observe(&mut self, d: &DecisionRecord, slack: f64) {
        self.decisions += 1;
        self.last_status = d.status;
        self.dwell[status_index(d.status)] += 1;
        if let Some(kind) = d.fault {
            if let Some(slot) = FaultKind::ALL.iter().position(|k| *k == kind) {
                self.faults_by_kind[slot] += 1;
            }
        }
        self.fault_window.push(d.fault.is_some());
        self.violation_window.push(d.violated);
        if d.violated {
            self.violations += 1;
        }
        if d.status.is_served() {
            self.served += 1;
            if d.to != d.from {
                self.reconfigurations += 1;
            }
            self.feasible.record(usize_to_f64(d.feasible));
            self.slack.record(slack);
        }
    }

    /// Counts one quarantine entry (the consecutive-fault trip, or a
    /// failed runtime context at seat time).
    pub fn note_quarantine_entry(&mut self) {
        self.quarantine_entries += 1;
    }

    /// Total absorbed faults, all kinds.
    pub fn faults(&self) -> u64 {
        self.faults_by_kind.iter().sum()
    }

    /// Mean of the fault indicator over the rolling window.
    pub fn fault_rate(&self) -> Option<f64> {
        self.fault_window.mean()
    }

    /// Renders the registry as one snapshot tenant entry. `generation`
    /// is the tenant's active db generation (the registry itself tracks
    /// decisions, not artifacts, so the caller supplies it). `decisions`
    /// is the tenant's decision log (or any suffix of it): the flight
    /// rows — the last [`FLIGHT_RECORDER_LEN`] *served* decisions — are
    /// derived from it on demand, and included when asked for or always
    /// once the tenant has entered quarantine (the frozen final
    /// approach).
    pub fn telemetry(
        &self,
        name: &str,
        generation: u64,
        include_flight: bool,
        decisions: &[DecisionRecord],
    ) -> TenantTelemetry {
        let mut counters: Vec<(String, u64)> = vec![
            ("decisions".to_string(), self.decisions),
            ("served".to_string(), self.served),
            ("reconfigurations".to_string(), self.reconfigurations),
            ("violations".to_string(), self.violations),
            ("quarantine.entries".to_string(), self.quarantine_entries),
        ];
        for (slot, kind) in FaultKind::ALL.iter().enumerate() {
            counters.push((
                format!("fault.{}.{}", kind.layer(), kind.name()),
                self.faults_by_kind[slot],
            ));
        }
        for (slot, tag) in STATUS_TAGS.iter().enumerate() {
            counters.push((format!("dwell.{tag}"), self.dwell[slot]));
        }
        counters.sort();
        let flight = if include_flight || self.quarantine_entries > 0 {
            flight_rows(name, decisions)
        } else {
            Vec::new()
        };
        TenantTelemetry {
            name: name.to_string(),
            events: self.decisions,
            status: self.last_status.as_str().to_string(),
            generation,
            counters,
            windows: vec![
                ("fault_rate".to_string(), self.fault_window.stat()),
                ("violation_rate".to_string(), self.violation_window.stat()),
            ],
            histograms: vec![
                ("feasible".to_string(), self.feasible.clone()),
                ("slack".to_string(), self.slack.clone()),
            ],
            flight,
        }
    }
}

/// Exact usize → f64 for event-scale values (far below 2^53).
fn usize_to_f64(n: usize) -> f64 {
    n as f64
}

/// The flight-recorder rows for one tenant: the last
/// [`FLIGHT_RECORDER_LEN`] *served* decisions from its decision log,
/// oldest → newest, rendered as CSV rows.
pub fn flight_rows(name: &str, decisions: &[DecisionRecord]) -> Vec<String> {
    let mut rows: Vec<String> = decisions
        .iter()
        .rev()
        .filter(|d| d.status.is_served())
        .take(FLIGHT_RECORDER_LEN)
        .map(|d| d.csv_row(name))
        .collect();
    rows.reverse();
    rows
}

/// Assembles the fleet snapshot from per-tenant registries (with their
/// active db generations and decision logs, for the flight recorder)
/// in fleet (seating) order plus the unknown-tenant drop counts (name
/// order). Both orders are scheduling-independent, so the snapshot is
/// byte-identical at any thread count.
pub fn fleet_snapshot<'a, I>(
    label: &str,
    tenants: I,
    dropped: &[(String, u64)],
    include_flight: bool,
) -> TelemetrySnapshot
where
    I: IntoIterator<Item = (&'a str, u64, &'a HealthState, &'a [DecisionRecord])>,
{
    let tenants: Vec<TenantTelemetry> = tenants
        .into_iter()
        .map(|(name, generation, health, decisions)| {
            health.telemetry(name, generation, include_flight, decisions)
        })
        .collect();
    let events = tenants.iter().map(|t| t.events).sum();
    TelemetrySnapshot {
        schema: TELEMETRY_SCHEMA_VERSION,
        label: label.to_string(),
        events,
        dropped: dropped.to_vec(),
        tenants,
    }
}

/// Renders a snapshot as Prometheus-style text exposition lines (the
/// `clr-serve stats` non-JSON output). Purely mechanical: counters,
/// window means and histogram quantiles, in snapshot order.
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# clr telemetry schema {} label {}\n",
        snap.schema, snap.label
    ));
    out.push_str(&format!("clr_serve_events_total {}\n", snap.events));
    for (name, count) in &snap.dropped {
        out.push_str(&format!(
            "clr_serve_dropped_total{{tenant=\"{name}\"}} {count}\n"
        ));
    }
    for t in &snap.tenants {
        let label = format!("tenant=\"{}\"", t.name);
        out.push_str(&format!(
            "clr_serve_status{{{label},state=\"{}\"}} 1\n",
            t.status
        ));
        out.push_str(&format!(
            "clr_serve_generation{{{label}}} {}\n",
            t.generation
        ));
        for (name, v) in &t.counters {
            let metric = name.replace('.', "_");
            out.push_str(&format!("clr_serve_{metric}_total{{{label}}} {v}\n"));
        }
        for (name, stat) in &t.windows {
            if let Some(mean) = stat.mean() {
                out.push_str(&format!("clr_serve_{name}{{{label}}} {mean}\n"));
            }
        }
        for (name, hist) in &t.histograms {
            if hist.is_empty() {
                continue;
            }
            for (tag, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                if let Some(v) = hist.quantile(q) {
                    out.push_str(&format!("clr_serve_{name}_{tag}{{{label}}} {v}\n"));
                }
            }
            if let Some(v) = hist.max_value() {
                out.push_str(&format!("clr_serve_{name}_max{{{label}}} {v}\n"));
            }
            out.push_str(&format!(
                "clr_serve_{name}_count{{{label}}} {}\n",
                hist.total()
            ));
        }
    }
    out
}

/// Reconstructs a (partial) telemetry snapshot from a deterministic
/// journal: decisions, feasible-set histograms, fault counters, dwell
/// occupancy and rolling rates are rebuilt per tenant; slack histograms
/// need the design-point database and stay empty (rendered `-` by
/// `clr-serve top`).
pub fn telemetry_from_journal(text: &str) -> Result<TelemetrySnapshot, String> {
    struct JournalTenant {
        health: HealthState,
        /// Active db generation: 0 until a `db_swap` event with status
        /// `swapped` moves it.
        generation: u64,
        /// Fault / quarantine actions keyed by event ordinal, gathered
        /// before the per-decision fold below.
        actions: std::collections::BTreeMap<usize, (String, String)>,
        decisions: Vec<(usize, usize, usize, usize, bool)>,
    }
    let mut order: Vec<String> = Vec::new();
    let mut tenants: std::collections::BTreeMap<String, JournalTenant> =
        std::collections::BTreeMap::new();
    let mut dropped: Vec<(String, u64)> = Vec::new();
    let mut current: Option<String> = None;

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (_seq, event) =
            Event::from_json_line(line).map_err(|e| format!("journal line {}: {e}", lineno + 1))?;
        match event {
            Event::SimStart { label, .. } => {
                if !tenants.contains_key(&label) {
                    order.push(label.clone());
                    tenants.insert(
                        label.clone(),
                        JournalTenant {
                            health: HealthState::new(),
                            generation: 0,
                            actions: std::collections::BTreeMap::new(),
                            decisions: Vec::new(),
                        },
                    );
                }
                current = Some(label);
            }
            Event::SimEnd { .. } => current = None,
            Event::Decision {
                event,
                feasible,
                from,
                to,
                violated,
                ..
            } => {
                if let Some(t) = current.as_ref().and_then(|c| tenants.get_mut(c)) {
                    t.decisions.push((event, feasible, from, to, violated));
                }
            }
            // Only an applied rollout moves the generation; failed
            // attempts leave the last-known-good artifact serving.
            Event::DbSwap {
                tenant,
                to_gen,
                status,
                ..
            } if status == "swapped" => {
                if let Some(t) = tenants.get_mut(&tenant) {
                    t.generation = to_gen;
                }
            }
            Event::DbSwap { .. } => {}
            Event::Fault {
                tenant,
                event,
                kind,
                action,
                ..
            } => {
                if tenant.is_empty() || event == 0 {
                    continue; // load-time faults carry no per-event telemetry
                }
                match tenants.get_mut(&tenant) {
                    Some(t) => {
                        t.actions.insert(event, (kind, action));
                    }
                    None => {
                        // An unknown-tenant drop surfaced as a journal
                        // fault event: its ordinal field is the count.
                        match dropped.iter_mut().find(|(n, _)| *n == tenant) {
                            Some((_, c)) => {
                                *c += u64::try_from(event).unwrap_or(u64::MAX);
                            }
                            None => {
                                dropped.push((tenant, u64::try_from(event).unwrap_or(u64::MAX)));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    dropped.sort();
    let entries: Vec<TenantTelemetry> = order
        .iter()
        .filter_map(|name| tenants.get(name).map(|t| (name, t)))
        .map(|(name, t)| {
            let mut health = t.health.clone();
            for &(event, feasible, from, to, violated) in &t.decisions {
                let (fault, status) = match t.actions.get(&event) {
                    None => (None, ServeStatus::Normal),
                    Some((kind, action)) => (
                        FaultKind::from_name(kind),
                        match action.as_str() {
                            "lkg" => ServeStatus::DegradedLkg,
                            "baseline" => ServeStatus::DegradedBaseline,
                            "hold" => ServeStatus::DegradedHold,
                            "quarantine" | "quarantined" => ServeStatus::Quarantined,
                            _ => ServeStatus::Normal,
                        },
                    ),
                };
                if status == ServeStatus::Quarantined && health.last_status.is_served() {
                    health.note_quarantine_entry();
                }
                let d = DecisionRecord {
                    event,
                    time: 0.0,
                    spec: clr_dse::QosSpec::new(0.0, 0.0),
                    feasible,
                    from,
                    to,
                    drc: 0.0,
                    score: None,
                    p_rc: None,
                    violated,
                    status,
                    fault,
                };
                health.observe(&d, 0.0);
            }
            // Journal decisions carry no spec/makespan: drop the slack
            // histogram (and pass no decision log, so no synthesised
            // flight rows) rather than publish zeros as measurements.
            health.slack = QuantileHistogram::new();
            health.telemetry(name, t.generation, false, &[])
        })
        .collect();
    let events = entries.iter().map(|t| t.events).sum();
    Ok(TelemetrySnapshot {
        schema: TELEMETRY_SCHEMA_VERSION,
        label: "journal".to_string(),
        events,
        dropped,
        tenants: entries,
    })
}

/// Renders the A/B rollout report from a `replay.obs.jsonl` journal:
/// one line per learning tenant (variant, serving table, scored
/// decisions, cumulative counterfactual regret of both policies,
/// promotions), then per-arm aggregates and a verdict comparing
/// candidate vs incumbent regret. Empty when the journal carries no
/// `shadow` events — i.e. no tenant ran an `aura+learn:` policy.
///
/// This is the offline sibling of
/// [`crate::ReplayReport::ab_lines`]: that one reads the live
/// learner summaries, this one refolds the journal, so the two agree
/// on every number both can see (the journal does not carry prefetch
/// counters per tenant, so those columns are absent here).
///
/// # Errors
///
/// Returns the first malformed journal line.
pub fn ab_report_from_journal(text: &str) -> Result<Vec<String>, String> {
    struct AbTenant {
        variant: String,
        serving: String,
        decisions: u64,
        live_regret: f64,
        shadow_regret: f64,
        promotions: u64,
    }
    let mut order: Vec<String> = Vec::new();
    let mut tenants: std::collections::BTreeMap<String, AbTenant> =
        std::collections::BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (_seq, event) =
            Event::from_json_line(line).map_err(|e| format!("journal line {}: {e}", lineno + 1))?;
        match event {
            Event::Shadow {
                tenant,
                variant,
                serving,
                live_regret,
                shadow_regret,
                ..
            } => {
                let entry = tenants.entry(tenant.clone()).or_insert_with(|| {
                    order.push(tenant.clone());
                    AbTenant {
                        variant: variant.clone(),
                        serving: serving.clone(),
                        decisions: 0,
                        live_regret: 0.0,
                        shadow_regret: 0.0,
                        promotions: 0,
                    }
                });
                entry.variant = variant;
                entry.serving = serving;
                entry.decisions += 1;
                entry.live_regret += live_regret;
                entry.shadow_regret += shadow_regret;
            }
            Event::Promote {
                tenant,
                promotions,
                status,
                ..
            } if status == "promoted" => {
                let entry = tenants.entry(tenant.clone()).or_insert_with(|| {
                    order.push(tenant.clone());
                    AbTenant {
                        variant: String::new(),
                        serving: String::new(),
                        decisions: 0,
                        live_regret: 0.0,
                        shadow_regret: 0.0,
                        promotions: 0,
                    }
                });
                entry.promotions = entry.promotions.max(promotions);
            }
            _ => {}
        }
    }
    if tenants.is_empty() {
        return Ok(Vec::new());
    }
    let mut lines = Vec::new();
    for name in &order {
        let t = &tenants[name];
        lines.push(format!(
            "tenant {name}: {} serving {}, {} scored, regret live {} shadow {}, {} promotions",
            t.variant, t.serving, t.decisions, t.live_regret, t.shadow_regret, t.promotions
        ));
    }
    for variant in ["control", "treatment"] {
        let arm: Vec<&AbTenant> = order
            .iter()
            .map(|name| &tenants[name])
            .filter(|t| t.variant == variant)
            .collect();
        let decisions: u64 = arm.iter().map(|t| t.decisions).sum();
        let live: f64 = arm.iter().map(|t| t.live_regret).sum();
        let shadow: f64 = arm.iter().map(|t| t.shadow_regret).sum();
        lines.push(format!(
            "arm {variant}: {} tenants, {decisions} scored decisions, \
             cumulative regret live {live} shadow {shadow}",
            arm.len()
        ));
    }
    let live: f64 = tenants.values().map(|t| t.live_regret).sum();
    let shadow: f64 = tenants.values().map(|t| t.shadow_regret).sum();
    lines.push(format!(
        "verdict: candidate cumulative regret {shadow} vs incumbent {live} — {}",
        if shadow < live {
            "candidate leads"
        } else if shadow > live {
            "incumbent leads"
        } else {
            "tied"
        }
    ));
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::QosSpec;

    fn decision(event: usize, status: ServeStatus, fault: Option<FaultKind>) -> DecisionRecord {
        DecisionRecord {
            event,
            time: f64::from(u32::try_from(event).unwrap_or(0)),
            spec: QosSpec::new(100.0, 0.9),
            feasible: 5,
            from: 0,
            to: event % 3,
            drc: 0.0,
            score: None,
            p_rc: None,
            violated: false,
            status,
            fault,
        }
    }

    #[test]
    fn observe_accumulates_counters_windows_and_histograms() {
        let log = [
            decision(1, ServeStatus::Normal, None),
            decision(2, ServeStatus::DegradedLkg, Some(FaultKind::PolicyFailure)),
            decision(3, ServeStatus::Quarantined, None),
        ];
        let mut h = HealthState::new();
        h.observe(&log[0], 10.0);
        h.observe(&log[1], 5.0);
        h.observe(&log[2], 0.0);
        assert_eq!(h.decisions, 3);
        assert_eq!(h.served, 2);
        assert_eq!(h.dwell, [1, 1, 0, 0, 1]);
        assert_eq!(h.faults(), 1);
        assert_eq!(h.slack.total(), 2);
        assert_eq!(h.fault_window.index(), 3);
        assert_eq!(h.fault_window.sum(), 1);
        let t = h.telemetry("cam", 3, false, &log);
        assert_eq!(t.counter("decisions"), Some(3));
        assert_eq!(t.counter("fault.decision.policy"), Some(1));
        assert_eq!(t.counter("dwell.lkg"), Some(1));
        assert_eq!(t.status, "quarantined");
        assert_eq!(t.generation, 3);
        assert!(
            t.flight.is_empty(),
            "no flight without request or quarantine"
        );
        let with_flight = h.telemetry("cam", 3, true, &log);
        assert_eq!(
            with_flight.flight.len(),
            2,
            "quarantined events never reach flight"
        );
        assert!(with_flight.flight[0].starts_with("cam,1,"));
        assert!(with_flight.flight[1].starts_with("cam,2,"));
    }

    #[test]
    fn quarantine_entry_forces_flight_rows_out() {
        let log = [decision(1, ServeStatus::Normal, None)];
        let mut h = HealthState::new();
        h.observe(&log[0], 1.0);
        h.note_quarantine_entry();
        let t = h.telemetry("cam", 0, false, &log);
        assert_eq!(t.flight.len(), 1);
        assert!(t.flight[0].starts_with("cam,1,"));
    }

    #[test]
    fn flight_rows_keep_the_last_served_decisions_in_order() {
        let log: Vec<DecisionRecord> = (1..=40)
            .map(|i| {
                let status = if i % 2 == 0 {
                    ServeStatus::Quarantined
                } else {
                    ServeStatus::Normal
                };
                decision(i, status, None)
            })
            .collect();
        let rows = flight_rows("cam", &log);
        assert_eq!(rows.len(), FLIGHT_RECORDER_LEN);
        assert!(rows[0].starts_with("cam,9,"), "oldest kept served event");
        assert!(
            rows[FLIGHT_RECORDER_LEN - 1].starts_with("cam,39,"),
            "newest served event last"
        );
    }

    #[test]
    fn fleet_snapshot_orders_tenants_as_given() {
        let a = HealthState::new();
        let b = HealthState::new();
        let snap = fleet_snapshot(
            "fleet",
            [("nav", 1, &a, &[][..]), ("cam", 0, &b, &[][..])],
            &[("ghost".to_string(), 2)],
            false,
        );
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["nav", "cam"], "fleet order, not name order");
        assert_eq!(snap.dropped, [("ghost".to_string(), 2)]);
        let line = snap.to_json();
        assert_eq!(TelemetrySnapshot::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn prometheus_rendering_is_line_per_metric() {
        let mut h = HealthState::new();
        h.observe(&decision(1, ServeStatus::Normal, None), 10.0);
        let snap = fleet_snapshot("fleet", [("cam", 2, &h, &[][..])], &[], false);
        let text = render_prometheus(&snap);
        assert!(text.contains("clr_serve_events_total 1\n"));
        assert!(text.contains("clr_serve_decisions_total{tenant=\"cam\"} 1\n"));
        assert!(text.contains("clr_serve_generation{tenant=\"cam\"} 2\n"));
        assert!(text.contains("clr_serve_slack_p50{tenant=\"cam\"}"));
        assert!(text.contains("clr_serve_fault_rate{tenant=\"cam\"} 0\n"));
    }
}
