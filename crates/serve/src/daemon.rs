//! The resident serving loop behind the `clr-served` binary.
//!
//! A [`Daemon`] holds one [`TenantSession`] per tenant, sharded across
//! `min(threads, tenants)` mutex-protected shards by fleet index. Each
//! admitted batch of [`Request`]s is partitioned by shard and fanned out
//! over `clr_par::par_map` — one worker item per shard, so every lock is
//! uncontended — then the responses are merged back into **arrival
//! order** before they are written. Within a shard, events are fed in
//! arrival order, so each tenant sees exactly the subsequence of the
//! input stream addressed to it: a daemon fed a time-sorted trace
//! produces decision-for-decision the same records as one batch
//! [`crate::replay`] call. `ci.sh` byte-compares the two.
//!
//! ## Admission, backpressure, drain
//!
//! [`serve_stream`] admits at most [`DaemonConfig::batch`] frames before
//! it must serve and flush them — the bounded queue. Backpressure is the
//! transport's: while the daemon serves a batch it does not read, so a
//! pipe or socket buffer fills and the client blocks. A batch closes
//! early on end-of-stream, an explicit [`Frame::Shutdown`], or a
//! [`Frame::Stats`] query — pending requests are served before the
//! query is answered, so the snapshot is a pure function of the stream
//! prefix before it (byte-identical at any `CLR_THREADS`). Shutdown and
//! end-of-stream drain gracefully (every admitted request is served and
//! flushed before the loop exits). Interactive closed-loop clients whose request window is
//! smaller than `batch` should run `--batch 1`, otherwise admission
//! waits for frames the client will never send.
//!
//! ## Error policy
//!
//! A request addressed to no tenant in the fleet is answered with a
//! [`Frame::Error`] echoing its `seq` — never silently dropped (the
//! bug class this layer's batch path was cured of). A structurally
//! corrupt frame (bad magic, checksum mismatch, truncation) is fatal:
//! framing can no longer be trusted, so the daemon writes a last error
//! frame and returns [`DaemonError::Wire`].

// clr-audit: allow(CLR101) name router is lookup-only; nothing iterates it
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::sync::Mutex;

use crate::wire::{
    ErrorFrame, Frame, PromoteRequest, PromoteResponse, PromoteStatus, Request, Response,
    StatsRequest, StatsResponse, SwapDbRequest, SwapDbResponse, SwapStatus, WireError,
    MAX_PAYLOAD_LEN, STATS_VERSION,
};
use crate::{
    fleet_snapshot, DecisionRecord, HealthState, LineageSnapshot, ReplayConfig, ReplayError,
    Tenant, TenantOutcome, TenantSession, FLIGHT_RECORDER_LEN,
};
use clr_learn::LearnerState;
use clr_obs::TelemetrySnapshot;

/// Daemon parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Maximum frames admitted per serve/flush cycle (the bounded
    /// queue). Clamped to at least 1.
    pub batch: usize,
    /// The engine configuration (threads, episode boundaries, fault
    /// plan, quarantine threshold) — shared verbatim with batch replay
    /// so the two paths cannot diverge.
    pub replay: ReplayConfig,
    /// Directory for `CLRLRN1` learner checkpoints (`<tenant>.learn`).
    /// When set, learning tenants warm-start from a matching
    /// checkpoint at seating and write one back at drain, so value
    /// tables survive restarts. `None` = cold start, nothing written.
    pub learn_dir: Option<std::path::PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            batch: 256,
            replay: ReplayConfig::default(),
            learn_dir: None,
        }
    }
}

/// Why the daemon stopped serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonError {
    /// The fleet could not be seated (duplicate tenant names).
    Replay(ReplayError),
    /// The request stream is structurally corrupt; framing can no
    /// longer be trusted.
    Wire(WireError),
    /// The response stream could not be written.
    Io(String),
    /// A learner checkpoint could not be written at drain.
    Learn(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Replay(e) => write!(f, "{e}"),
            Self::Wire(e) => write!(f, "request stream: {e}"),
            Self::Io(e) => write!(f, "response stream: {e}"),
            Self::Learn(e) => write!(f, "learn checkpoint: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<ReplayError> for DaemonError {
    fn from(e: ReplayError) -> Self {
        Self::Replay(e)
    }
}

/// What one [`serve_stream`] run did, with the drained per-tenant
/// outcomes (fleet order — the same shape batch replay reports).
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonReport {
    /// Requests served with a response frame (quarantined decisions
    /// included: recording is serving).
    pub served: usize,
    /// Requests answered with an error frame (unknown tenant) plus
    /// protocol-violating frames (a client sending response/error
    /// kinds).
    pub rejected: usize,
    /// Serve/flush cycles executed.
    pub batches: usize,
    /// Stats queries answered with a snapshot frame.
    pub stats: usize,
    /// `SwapDb` requests answered with a swap-response frame (the
    /// frame's status says whether the rollout applied).
    pub swaps: usize,
    /// `Promote` requests answered with a promote-response frame (the
    /// frame's status says whether the shadow table shipped).
    pub promotes: usize,
    /// Learner checkpoint restore/save notes, in fleet order — the
    /// binary prints these to stderr. Empty without a
    /// [`DaemonConfig::learn_dir`].
    pub learn_notes: Vec<String>,
    /// `true` when an explicit [`Frame::Shutdown`] closed the stream,
    /// `false` on plain end-of-stream (both drain fully).
    pub clean_shutdown: bool,
    /// Per-tenant outcomes accumulated by the sessions, in fleet order.
    pub outcomes: Vec<TenantOutcome>,
    /// Requests addressed to tenants absent from the fleet, counted per
    /// offending name (sorted by name — same shape batch replay's
    /// `dropped_by_tenant` reports).
    pub dropped_by_tenant: Vec<(String, u64)>,
}

/// One shard: the sessions of every tenant with `idx % shards == s`.
struct Shard<'a> {
    sessions: Vec<TenantSession<'a>>,
}

/// The resident engine: sharded sessions plus the name router.
///
/// [`serve_stream`] is the framed transport front; the load harness
/// drives [`Daemon::handle_batch`] directly to measure the engine
/// without transport I/O.
pub struct Daemon<'a> {
    /// Name router (lookup only, so hash order cannot leak into any
    /// output — responses are merged by arrival position).
    // clr-audit: allow(CLR101) lookup-only router; responses merge by arrival position
    by_name: HashMap<&'a str, usize>,
    shards: Vec<Mutex<Shard<'a>>>,
    /// `tenant_idx → (shard, slot)`.
    locate: Vec<(usize, usize)>,
    /// Unknown-tenant request counts, keyed by the offending name.
    /// Recorded in the serial routing pass, so a BTreeMap keeps the
    /// report order independent of arrival interleaving across batches.
    dropped: Mutex<BTreeMap<String, u64>>,
    tenant_count: usize,
    threads: usize,
}

impl std::fmt::Debug for Daemon<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("tenants", &self.tenant_count)
            .field("shards", &self.shards.len())
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl<'a> Daemon<'a> {
    /// Seats one session per tenant, sharded for the configured thread
    /// count.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Replay`] when two tenants share a name.
    pub fn new(tenants: &'a [Tenant], config: &DaemonConfig) -> Result<Self, DaemonError> {
        // clr-audit: allow(CLR101) lookup-only router; never iterated, order cannot leak
        let mut by_name: HashMap<&str, usize> = HashMap::with_capacity(tenants.len());
        for (idx, tenant) in tenants.iter().enumerate() {
            if by_name.insert(tenant.name(), idx).is_some() {
                return Err(ReplayError::DuplicateTenant(tenant.name().to_string()).into());
            }
        }
        let threads = clr_par::resolve_threads(config.replay.threads);
        let shard_count = threads.min(tenants.len()).max(1);
        let mut shards: Vec<Shard<'a>> = (0..shard_count)
            .map(|_| Shard {
                sessions: Vec::new(),
            })
            .collect();
        let mut locate = Vec::with_capacity(tenants.len());
        for (idx, tenant) in tenants.iter().enumerate() {
            let shard = idx % shard_count;
            locate.push((shard, shards[shard].sessions.len()));
            shards[shard]
                .sessions
                .push(TenantSession::new(tenant, idx, &config.replay));
        }
        Ok(Self {
            by_name,
            shards: shards.into_iter().map(Mutex::new).collect(),
            locate,
            dropped: Mutex::new(BTreeMap::new()),
            tenant_count: tenants.len(),
            threads,
        })
    }

    /// Tenants seated.
    pub fn tenant_count(&self) -> usize {
        self.tenant_count
    }

    /// Serves one admitted batch, returning exactly one frame per
    /// request, **in arrival order**: a [`Frame::Response`] echoing the
    /// request's `seq`, or a [`Frame::Error`] for an unknown tenant.
    ///
    /// Deterministic: each shard feeds its requests in arrival order, so
    /// every tenant sees its subsequence of the stream regardless of how
    /// shards are scheduled across workers.
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Frame> {
        let mut out: Vec<Option<Frame>> = vec![None; requests.len()];
        // (arrival position, session slot, request) per shard.
        let mut per_shard: Vec<Vec<(usize, usize, &Request)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (pos, request) in requests.iter().enumerate() {
            match self.by_name.get(request.tenant.as_str()) {
                Some(&idx) => {
                    let (shard, slot) = self.locate[idx];
                    per_shard[shard].push((pos, slot, request));
                }
                None => {
                    let mut dropped = self
                        .dropped
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *dropped.entry(request.tenant.clone()).or_insert(0) += 1;
                    drop(dropped);
                    out[pos] = Some(Frame::Error(ErrorFrame {
                        seq: request.seq,
                        message: format!("unknown tenant {:?}", request.tenant),
                    }));
                }
            }
        }
        let produced = clr_par::par_map(self.threads, &per_shard, |shard_idx, work| {
            let mut shard = self.shards[shard_idx]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            work.iter()
                .map(|&(pos, slot, request)| {
                    // Routing already matched the name; feed_at skips the
                    // per-request TraceEvent (and its String clone).
                    let decision = shard.sessions[slot].feed_at(request.time, request.spec);
                    (
                        pos,
                        Frame::Response(Response {
                            seq: request.seq,
                            tenant: request.tenant.clone(),
                            decision,
                        }),
                    )
                })
                .collect::<Vec<_>>()
        });
        for (pos, frame) in produced.into_iter().flatten() {
            out[pos] = Some(frame);
        }
        out.into_iter().flatten().collect()
    }

    /// Unknown-tenant request counts so far, sorted by offending name.
    pub fn dropped_counts(&self) -> Vec<(String, u64)> {
        self.dropped
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, &n)| (name.clone(), n))
            .collect()
    }

    /// A point-in-time fleet telemetry snapshot in fleet order,
    /// optionally narrowed to one tenant.
    ///
    /// Called between batches (never concurrently with
    /// [`Daemon::handle_batch`] on the same stream), so the snapshot is
    /// a pure function of the request prefix served so far — the
    /// determinism harness byte-compares it across thread counts.
    pub fn telemetry(
        &self,
        label: &str,
        include_flight: bool,
        tenant: Option<&str>,
    ) -> TelemetrySnapshot {
        let mut states: Vec<(String, u64, HealthState, Vec<DecisionRecord>)> =
            Vec::with_capacity(self.tenant_count);
        for idx in 0..self.tenant_count {
            let (shard, slot) = self.locate[idx];
            let shard = self.shards[shard]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let session = &shard.sessions[slot];
            if tenant.is_some_and(|t| t != session.tenant().name()) {
                continue;
            }
            let generation = session.generation();
            let health = session.health().clone();
            // Only the flight tail leaves the lock: the last K served
            // decisions, cloned oldest → newest, and only when the
            // snapshot will actually render them.
            let tail: Vec<DecisionRecord> = if include_flight || health.quarantine_entries > 0 {
                let mut tail: Vec<DecisionRecord> = session
                    .outcome()
                    .decisions
                    .iter()
                    .rev()
                    .filter(|d| d.status.is_served())
                    .take(FLIGHT_RECORDER_LEN)
                    .cloned()
                    .collect();
                tail.reverse();
                tail
            } else {
                Vec::new()
            };
            states.push((
                session.tenant().name().to_string(),
                generation,
                health,
                tail,
            ));
        }
        fleet_snapshot(
            label,
            states
                .iter()
                .map(|(n, g, h, d)| (n.as_str(), *g, h, d.as_slice())),
            &self.dropped_counts(),
            include_flight,
        )
    }

    /// Answers one stats query: a [`Frame::StatsResponse`] carrying the
    /// snapshot JSON, or a [`Frame::Error`] echoing the query's `seq`
    /// when the query speaks a different stats version, names a tenant
    /// outside the fleet, or the fleet snapshot would overflow the wire
    /// payload cap.
    pub fn stats_response(&self, query: &StatsRequest) -> Frame {
        if query.version != STATS_VERSION {
            return Frame::Error(ErrorFrame {
                seq: query.seq,
                message: format!(
                    "unsupported stats version {} (daemon speaks {STATS_VERSION})",
                    query.version
                ),
            });
        }
        if let Some(name) = &query.tenant {
            if !self.by_name.contains_key(name.as_str()) {
                return Frame::Error(ErrorFrame {
                    seq: query.seq,
                    message: format!("unknown tenant {name:?}"),
                });
            }
        }
        let snapshot = self
            .telemetry("fleet", query.flight, query.tenant.as_deref())
            .to_json();
        // seq u64 + u32 text length precede the snapshot in the payload.
        if snapshot.len() + 12 > MAX_PAYLOAD_LEN {
            return Frame::Error(ErrorFrame {
                seq: query.seq,
                message: format!(
                    "fleet snapshot is {} bytes, over the {MAX_PAYLOAD_LEN}-byte frame cap; \
                     narrow the query with a tenant filter",
                    snapshot.len()
                ),
            });
        }
        Frame::StatsResponse(StatsResponse {
            seq: query.seq,
            snapshot,
        })
    }

    /// Applies one live database swap, answering with a
    /// [`Frame::SwapDbResponse`] whose status says how the rollout
    /// ended and whose `generation` is the tenant's active generation
    /// *after* the attempt.
    ///
    /// Called between batches, like [`Daemon::stats_response`] — the
    /// admission loop closes the batch on a `SwapDb` frame, so the swap
    /// is a pure function of the stream prefix before it and the
    /// served output stays byte-identical at any `CLR_THREADS`. The
    /// frame carries the artifact *path* (containers outgrow the wire
    /// payload cap); an unreadable file is `io-error`, a corrupt or
    /// lineage-invalid container is `verify-failed`, and both leave the
    /// running database serving as the last-known-good.
    pub fn swap_response(&self, request: &SwapDbRequest) -> Frame {
        let Some(&idx) = self.by_name.get(request.tenant.as_str()) else {
            return Frame::SwapDbResponse(SwapDbResponse {
                seq: request.seq,
                tenant: request.tenant.clone(),
                status: SwapStatus::UnknownTenant,
                generation: 0,
            });
        };
        let (shard, slot) = self.locate[idx];
        let mut shard = self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let session = &mut shard.sessions[slot];
        let record = match std::fs::read(&request.path) {
            Err(_) => session.note_swap_failure(SwapStatus::IoError),
            Ok(bytes) => match LineageSnapshot::from_bytes(&bytes) {
                Err(_) => session.note_swap_failure(SwapStatus::VerifyFailed),
                Ok(snapshot) => session.swap_db(&snapshot, request.expected_generation),
            },
        };
        Frame::SwapDbResponse(SwapDbResponse {
            seq: request.seq,
            tenant: request.tenant.clone(),
            status: record.status,
            generation: session.generation(),
        })
    }

    /// Applies one shadow→live policy promotion, answering with a
    /// [`Frame::PromoteResponse`] whose status says whether the
    /// candidate table shipped and whose `promotions` is the tenant's
    /// running promotion count after the attempt.
    ///
    /// Called between batches, like [`Daemon::swap_response`] — the
    /// admission loop closes the batch on a `Promote` frame, so the
    /// promotion lands after every already-admitted request whatever
    /// the thread count, and the served output stays byte-identical at
    /// any `CLR_THREADS`.
    pub fn promote_response(&self, request: &PromoteRequest) -> Frame {
        let Some(&idx) = self.by_name.get(request.tenant.as_str()) else {
            return Frame::PromoteResponse(PromoteResponse {
                seq: request.seq,
                tenant: request.tenant.clone(),
                status: PromoteStatus::UnknownTenant,
                promotions: 0,
            });
        };
        let (shard, slot) = self.locate[idx];
        let mut shard = self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let record = shard.sessions[slot].promote();
        Frame::PromoteResponse(PromoteResponse {
            seq: request.seq,
            tenant: request.tenant.clone(),
            status: record.status,
            promotions: record.promotions,
        })
    }

    /// Warm-starts every learning tenant from a `CLRLRN1` checkpoint in
    /// `dir` (named `<tenant>.learn`), returning one note per learning
    /// tenant saying what happened. A missing, corrupt or mismatched
    /// checkpoint is a cold start, never a seating failure — the note
    /// says why.
    pub fn restore_learners(&self, dir: &std::path::Path) -> Vec<String> {
        let mut notes = Vec::new();
        for idx in 0..self.tenant_count {
            let (shard, slot) = self.locate[idx];
            let mut shard = self.shards[shard]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let session = &mut shard.sessions[slot];
            if session.learner().is_none() {
                continue;
            }
            let name = session.tenant().name().to_string();
            let path = dir.join(format!("{name}.learn"));
            match std::fs::read(&path) {
                Err(_) => notes.push(format!(
                    "learn: {name}: no checkpoint at {} (cold start)",
                    path.display()
                )),
                Ok(bytes) => match LearnerState::from_bytes(&bytes) {
                    Err(e) => notes.push(format!(
                        "learn: {name}: checkpoint rejected: {e} (cold start)"
                    )),
                    Ok(state) => {
                        let decisions = state.decisions();
                        match session.restore_learner(state) {
                            Ok(()) => notes.push(format!(
                                "learn: {name}: restored {} ({decisions} decisions)",
                                path.display()
                            )),
                            Err(e) => notes.push(format!(
                                "learn: {name}: checkpoint refused: {e} (cold start)"
                            )),
                        }
                    }
                },
            }
        }
        notes
    }

    /// Writes every learning tenant's `CLRLRN1` checkpoint into `dir`
    /// (`<tenant>.learn`), creating the directory if needed. Checkpoint
    /// bytes are a pure function of the served stream, so they are
    /// byte-identical at any `CLR_THREADS`.
    ///
    /// # Errors
    ///
    /// A human-readable message for the first unwritable path.
    pub fn save_learners(&self, dir: &std::path::Path) -> Result<Vec<String>, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut notes = Vec::new();
        for idx in 0..self.tenant_count {
            let (shard, slot) = self.locate[idx];
            let shard = self.shards[shard]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let session = &shard.sessions[slot];
            let Some(learner) = session.learner() else {
                continue;
            };
            let path = dir.join(format!("{}.learn", session.tenant().name()));
            std::fs::write(&path, learner.to_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            notes.push(format!(
                "learn: wrote {} ({} decisions, {} promotions)",
                path.display(),
                learner.decisions(),
                learner.promotions()
            ));
        }
        Ok(notes)
    }

    /// Drains the daemon, yielding every session's accumulated outcome
    /// in fleet order (byte-comparable against a batch replay of the
    /// same event stream).
    pub fn into_outcomes(self) -> Vec<TenantOutcome> {
        let mut slots: Vec<Option<TenantOutcome>> = (0..self.tenant_count).map(|_| None).collect();
        for shard in self.shards {
            let shard = shard
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for session in shard.sessions {
                let idx = session.tenant_idx();
                slots[idx] = Some(session.into_outcome());
            }
        }
        slots.into_iter().flatten().collect()
    }
}

/// Runs the daemon loop over a framed transport: read up to
/// `config.batch` request frames, serve them, write and flush the
/// responses, repeat until end-of-stream or a shutdown frame. See the
/// module docs for the admission and error policy.
///
/// # Errors
///
/// [`DaemonError`] on a duplicate fleet, a structurally corrupt request
/// stream, or an unwritable response stream. Admitted requests are
/// always served before an orderly exit; on a wire error a final error
/// frame is written best-effort.
pub fn serve_stream(
    tenants: &[Tenant],
    input: &mut dyn Read,
    output: &mut dyn Write,
    config: &DaemonConfig,
) -> Result<DaemonReport, DaemonError> {
    let daemon = Daemon::new(tenants, config)?;
    let cap = config.batch.max(1);
    let mut report = DaemonReport {
        served: 0,
        rejected: 0,
        batches: 0,
        stats: 0,
        swaps: 0,
        promotes: 0,
        clean_shutdown: false,
        outcomes: Vec::new(),
        dropped_by_tenant: Vec::new(),
        learn_notes: Vec::new(),
    };
    if let Some(dir) = &config.learn_dir {
        report.learn_notes = daemon.restore_learners(dir);
    }
    /// A control frame that closes the admission batch early so it is
    /// handled as a pure function of the stream prefix before it.
    enum Control {
        Stats(StatsRequest),
        Swap(SwapDbRequest),
        Promote(PromoteRequest),
    }
    let mut open = true;
    while open {
        let mut batch: Vec<Request> = Vec::with_capacity(cap);
        let mut control: Option<Control> = None;
        while batch.len() < cap {
            match Frame::read_from(input) {
                Ok(None) => {
                    open = false;
                    break;
                }
                Ok(Some(Frame::Request(request))) => batch.push(request),
                Ok(Some(Frame::Stats(query))) => {
                    // Close the batch early: the pending requests are
                    // served first, so the snapshot is a pure function
                    // of the stream prefix up to this query.
                    control = Some(Control::Stats(query));
                    break;
                }
                Ok(Some(Frame::SwapDb(request))) => {
                    // Same early close as a stats query: the swap lands
                    // after every already-admitted request, whatever
                    // the thread count.
                    control = Some(Control::Swap(request));
                    break;
                }
                Ok(Some(Frame::Promote(request))) => {
                    // Same early close: the promotion is a pure
                    // function of the stream prefix before it.
                    control = Some(Control::Promote(request));
                    break;
                }
                Ok(Some(Frame::Shutdown)) => {
                    report.clean_shutdown = true;
                    open = false;
                    break;
                }
                Ok(Some(other)) => {
                    // A client must only send requests; answer the
                    // violation in stream position and keep serving.
                    let error = Frame::Error(ErrorFrame {
                        seq: 0,
                        message: format!("unexpected frame kind {}", other.kind()),
                    });
                    error
                        .write_to(output)
                        .map_err(|e| DaemonError::Io(e.to_string()))?;
                    report.rejected += 1;
                }
                Err(e) => {
                    // Framing is lost; tell the peer why, then stop.
                    let error = Frame::Error(ErrorFrame {
                        seq: 0,
                        message: format!("request stream corrupt: {e}"),
                    });
                    let _ = error.write_to(output);
                    let _ = output.flush();
                    return Err(DaemonError::Wire(e));
                }
            }
        }
        if !batch.is_empty() {
            for frame in daemon.handle_batch(&batch) {
                match &frame {
                    Frame::Response(_) => report.served += 1,
                    _ => report.rejected += 1,
                }
                frame
                    .write_to(output)
                    .map_err(|e| DaemonError::Io(e.to_string()))?;
            }
            report.batches += 1;
        }
        match control {
            None => {}
            Some(Control::Stats(query)) => {
                let frame = daemon.stats_response(&query);
                match &frame {
                    Frame::StatsResponse(_) => report.stats += 1,
                    _ => report.rejected += 1,
                }
                frame
                    .write_to(output)
                    .map_err(|e| DaemonError::Io(e.to_string()))?;
            }
            Some(Control::Swap(request)) => {
                let frame = daemon.swap_response(&request);
                report.swaps += 1;
                frame
                    .write_to(output)
                    .map_err(|e| DaemonError::Io(e.to_string()))?;
            }
            Some(Control::Promote(request)) => {
                let frame = daemon.promote_response(&request);
                report.promotes += 1;
                frame
                    .write_to(output)
                    .map_err(|e| DaemonError::Io(e.to_string()))?;
            }
        }
        output.flush().map_err(|e| DaemonError::Io(e.to_string()))?;
    }
    if let Some(dir) = &config.learn_dir {
        let notes = daemon.save_learners(dir).map_err(DaemonError::Learn)?;
        report.learn_notes.extend(notes);
    }
    report.dropped_by_tenant = daemon.dropped_counts();
    report.outcomes = daemon.into_outcomes();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_trace, replay, PolicySpec, Trace};
    use clr_dse::{DesignPoint, DesignPointDb, PointOrigin, QosSpec};
    use clr_platform::Platform;
    use clr_sched::{Mapping, SystemMetrics};
    use clr_taskgraph::jpeg_encoder;

    fn small_db(n: usize, skew: f64) -> DesignPointDb {
        let mapping = Mapping::first_fit(&jpeg_encoder(), &Platform::dac19()).unwrap();
        let mut db = DesignPointDb::new("t");
        for i in 0..n {
            let f = i as f64 / n as f64;
            db.push(DesignPoint::new(
                mapping.clone(),
                SystemMetrics {
                    makespan: 50.0 + 100.0 * f * skew,
                    reliability: 0.6 + 0.35 * f,
                    energy: 1.0 + f,
                    peak_power: 1.0,
                    mean_mttf: 100.0,
                },
                PointOrigin::Pareto,
            ));
        }
        db
    }

    fn fleet(n: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| {
                Tenant::from_parts(
                    format!("t{i}"),
                    jpeg_encoder(),
                    Platform::dac19(),
                    small_db(8, 1.0 + i as f64 * 0.1),
                    PolicySpec::Ura { p_rc: 0.5 },
                )
                .unwrap()
            })
            .collect()
    }

    fn frames_for(trace: &Trace, shutdown: bool) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (i, event) in trace.events().iter().enumerate() {
            bytes.extend_from_slice(
                &Frame::Request(Request::from_event(i as u64 + 1, event)).to_bytes(),
            );
        }
        if shutdown {
            bytes.extend_from_slice(&Frame::Shutdown.to_bytes());
        }
        bytes
    }

    /// Decodes every frame in `bytes`, in order.
    fn decode_all(mut bytes: &[u8]) -> Vec<Frame> {
        let mut frames = Vec::new();
        while !bytes.is_empty() {
            let (frame, used) = Frame::from_bytes(bytes).unwrap();
            frames.push(frame);
            bytes = &bytes[used..];
        }
        frames
    }

    #[test]
    fn daemon_outcomes_match_batch_replay_exactly() {
        let tenants = fleet(5);
        let trace = generate_trace(&tenants, 23, 3_000.0, 100.0);
        assert!(trace.len() > 20);
        let batch_report = replay(&tenants, &trace, &ReplayConfig::default()).unwrap();
        for threads in [1usize, 8] {
            let config = DaemonConfig {
                batch: 7, // deliberately odd: spans several admission cycles
                replay: ReplayConfig {
                    threads,
                    ..ReplayConfig::default()
                },
                learn_dir: None,
            };
            let mut input = std::io::Cursor::new(frames_for(&trace, true));
            let mut output = Vec::new();
            let report = serve_stream(&tenants, &mut input, &mut output, &config).unwrap();
            assert!(report.clean_shutdown);
            assert_eq!(report.served, trace.len());
            assert_eq!(report.rejected, 0);
            assert_eq!(
                report.outcomes,
                batch_report.outcomes(),
                "threads = {threads}"
            );
            // Responses come back in arrival order with echoed seqs and
            // carry the same decisions the batch engine recorded.
            let frames = decode_all(&output);
            assert_eq!(frames.len(), trace.len());
            let mut next_event: HashMap<String, usize> = HashMap::new();
            for (i, frame) in frames.iter().enumerate() {
                let Frame::Response(r) = frame else {
                    panic!("frame {i} is not a response: {frame:?}")
                };
                assert_eq!(r.seq, i as u64 + 1);
                let cursor = next_event.entry(r.tenant.clone()).or_insert(0);
                let outcome = batch_report
                    .outcomes()
                    .iter()
                    .find(|o| o.name == r.tenant)
                    .unwrap();
                assert_eq!(r.decision, outcome.decisions[*cursor]);
                *cursor += 1;
            }
        }
    }

    #[test]
    fn unknown_tenants_get_error_frames_not_silence() {
        let tenants = fleet(1);
        let lax = QosSpec::new(f64::MAX, 0.0);
        let trace = Trace::new(vec![
            crate::TraceEvent {
                tenant: "t0".into(),
                time: 0.0,
                spec: lax,
            },
            crate::TraceEvent {
                tenant: "ghost".into(),
                time: 1.0,
                spec: lax,
            },
        ]);
        let mut input = std::io::Cursor::new(frames_for(&trace, false));
        let mut output = Vec::new();
        let report =
            serve_stream(&tenants, &mut input, &mut output, &DaemonConfig::default()).unwrap();
        assert!(!report.clean_shutdown, "EOF drain, no shutdown frame");
        assert_eq!(report.served, 1);
        assert_eq!(report.rejected, 1);
        let frames = decode_all(&output);
        assert!(matches!(&frames[0], Frame::Response(r) if r.seq == 1));
        let Frame::Error(e) = &frames[1] else {
            panic!("expected an error frame, got {:?}", frames[1])
        };
        assert_eq!(e.seq, 2);
        assert!(e.message.contains("ghost"), "message: {}", e.message);
    }

    #[test]
    fn corrupt_frame_stops_the_daemon_with_a_wire_error() {
        let tenants = fleet(1);
        let mut bytes = Frame::Request(Request {
            seq: 1,
            tenant: "t0".into(),
            time: 0.0,
            spec: QosSpec::new(f64::MAX, 0.0),
        })
        .to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut input = std::io::Cursor::new(bytes);
        let mut output = Vec::new();
        let err =
            serve_stream(&tenants, &mut input, &mut output, &DaemonConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            DaemonError::Wire(WireError::ChecksumMismatch { .. })
        ));
        // The peer was told why before the stream closed.
        let frames = decode_all(&output);
        assert!(matches!(&frames[0], Frame::Error(e) if e.message.contains("checksum")));
    }

    #[test]
    fn stats_queries_are_answered_mid_stream() {
        let tenants = fleet(3);
        let trace = generate_trace(&tenants, 7, 2_000.0, 100.0);
        let mut bytes = Vec::new();
        for (i, event) in trace.events().iter().enumerate() {
            bytes.extend_from_slice(
                &Frame::Request(Request::from_event(i as u64 + 1, event)).to_bytes(),
            );
        }
        let probe_seq = trace.len() as u64 + 1;
        bytes.extend_from_slice(&Frame::Stats(StatsRequest::fleet(probe_seq, false)).to_bytes());
        bytes.extend_from_slice(
            &Frame::Stats(StatsRequest {
                seq: probe_seq + 1,
                version: 9,
                flight: false,
                tenant: None,
            })
            .to_bytes(),
        );
        bytes.extend_from_slice(
            &Frame::Stats(StatsRequest {
                seq: probe_seq + 2,
                version: STATS_VERSION,
                flight: false,
                tenant: Some("ghost".into()),
            })
            .to_bytes(),
        );
        bytes.extend_from_slice(&Frame::Shutdown.to_bytes());
        let mut input = std::io::Cursor::new(bytes);
        let mut output = Vec::new();
        let report =
            serve_stream(&tenants, &mut input, &mut output, &DaemonConfig::default()).unwrap();
        assert!(report.clean_shutdown);
        assert_eq!(report.served, trace.len());
        assert_eq!(report.stats, 1);
        assert_eq!(report.rejected, 2, "bad version + ghost filter");
        let frames = decode_all(&output);
        let Frame::StatsResponse(r) = &frames[trace.len()] else {
            panic!("expected a stats response, got {:?}", frames[trace.len()])
        };
        assert_eq!(r.seq, probe_seq);
        // The answered snapshot decodes and covers every served event.
        let snapshot = clr_obs::TelemetrySnapshot::from_json(&r.snapshot).unwrap();
        assert_eq!(snapshot.events, trace.len() as u64);
        assert_eq!(snapshot.tenants.len(), 3);
        assert!(matches!(
            &frames[trace.len() + 1],
            Frame::Error(e) if e.seq == probe_seq + 1 && e.message.contains("stats version")
        ));
        assert!(matches!(
            &frames[trace.len() + 2],
            Frame::Error(e) if e.seq == probe_seq + 2 && e.message.contains("ghost")
        ));
    }

    #[test]
    fn empty_stream_drains_cleanly() {
        let tenants = fleet(2);
        let mut input = std::io::Cursor::new(Vec::new());
        let mut output = Vec::new();
        let report =
            serve_stream(&tenants, &mut input, &mut output, &DaemonConfig::default()).unwrap();
        assert_eq!(report.served, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.outcomes.iter().all(|o| o.events == 0));
        assert!(output.is_empty());
    }

    /// Writes a verified generation-`g` snapshot of `db` to `path`.
    fn write_rollout(path: &std::path::Path, db: DesignPointDb, generation: u64) {
        let snapshot = crate::Snapshot::new("jpeg", "dac19", db);
        let lineage = crate::Lineage {
            generation,
            parent: (generation > 0).then(|| generation - 1),
            publisher: "roll".into(),
            stamps: crate::compute_stamps(snapshot.db(), generation),
        };
        let wrapped = LineageSnapshot::from_parts(lineage, snapshot);
        wrapped.verify().expect("constructed rollout verifies");
        wrapped.write_file(path).expect("rollout writes");
    }

    #[test]
    fn mid_stream_swap_is_deterministic_and_reseats_the_tenant() {
        let dir = std::env::temp_dir().join("clr-serve-daemon-swap");
        std::fs::create_dir_all(&dir).unwrap();
        let rollout = dir.join("t1-gen5.snap");
        write_rollout(&rollout, small_db(12, 2.0), 5);

        let tenants = fleet(3);
        let trace = generate_trace(&tenants, 31, 3_000.0, 100.0);
        let mut bytes = Vec::new();
        let mid = trace.len() / 2;
        for (i, event) in trace.events().iter().enumerate() {
            if i == mid {
                bytes.extend_from_slice(
                    &Frame::SwapDb(SwapDbRequest {
                        seq: 90_000,
                        tenant: "t1".into(),
                        expected_generation: Some(5),
                        path: rollout.to_string_lossy().into_owned(),
                    })
                    .to_bytes(),
                );
            }
            bytes.extend_from_slice(
                &Frame::Request(Request::from_event(i as u64 + 1, event)).to_bytes(),
            );
        }
        bytes.extend_from_slice(&Frame::Stats(StatsRequest::fleet(90_001, false)).to_bytes());
        bytes.extend_from_slice(&Frame::Shutdown.to_bytes());

        let mut outputs = Vec::new();
        for threads in [1usize, 8] {
            let config = DaemonConfig {
                batch: 7,
                replay: ReplayConfig {
                    threads,
                    ..ReplayConfig::default()
                },
                learn_dir: None,
            };
            let mut input = std::io::Cursor::new(bytes.clone());
            let mut output = Vec::new();
            let report = serve_stream(&tenants, &mut input, &mut output, &config).unwrap();
            assert!(report.clean_shutdown);
            assert_eq!(report.served, trace.len());
            assert_eq!(report.swaps, 1);
            let swapped = report.outcomes.iter().find(|o| o.name == "t1").unwrap();
            assert_eq!(swapped.generation, 5);
            assert_eq!(swapped.points, 12);
            assert_eq!(swapped.swaps.len(), 1);
            assert_eq!(swapped.swaps[0].status, SwapStatus::Swapped);
            assert_eq!(swapped.swaps[0].from_gen, 0);
            assert_eq!(swapped.swaps[0].to_gen, 5);
            // The untouched tenants never left their seeded database.
            for o in report.outcomes.iter().filter(|o| o.name != "t1") {
                assert_eq!(o.generation, 0);
                assert!(o.swaps.is_empty());
            }
            outputs.push(output);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "swap-under-traffic output must be byte-identical at threads 1 and 8"
        );
        let frames = decode_all(&outputs[0]);
        let swap_ack = frames
            .iter()
            .find_map(|f| match f {
                Frame::SwapDbResponse(r) => Some(r),
                _ => None,
            })
            .expect("the swap was acknowledged in stream position");
        assert_eq!(swap_ack.seq, 90_000);
        assert_eq!(swap_ack.status, SwapStatus::Swapped);
        assert_eq!(swap_ack.generation, 5);
        // The closing stats snapshot reports the rolled-out generation.
        let Some(Frame::StatsResponse(stats)) =
            frames.iter().find(|f| matches!(f, Frame::StatsResponse(_)))
        else {
            panic!("expected a stats response")
        };
        let snapshot = TelemetrySnapshot::from_json(&stats.snapshot).unwrap();
        let t1 = snapshot.tenants.iter().find(|t| t.name == "t1").unwrap();
        assert_eq!(t1.generation, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_failures_keep_the_old_database_serving() {
        let dir = std::env::temp_dir().join("clr-serve-daemon-swap-fail");
        std::fs::create_dir_all(&dir).unwrap();
        let corrupt = dir.join("corrupt.snap");
        std::fs::write(&corrupt, b"not a container").unwrap();
        let rollout = dir.join("gen3.snap");
        write_rollout(&rollout, small_db(12, 2.0), 3);

        let tenants = fleet(1);
        let config = DaemonConfig::default();
        let daemon = Daemon::new(&tenants, &config).unwrap();
        let swap = |tenant: &str, path: &std::path::Path, expected: Option<u64>| {
            daemon.swap_response(&SwapDbRequest {
                seq: 7,
                tenant: tenant.into(),
                expected_generation: expected,
                path: path.to_string_lossy().into_owned(),
            })
        };
        let cases = [
            (swap("ghost", &rollout, None), SwapStatus::UnknownTenant),
            (swap("t0", &dir.join("missing"), None), SwapStatus::IoError),
            (swap("t0", &corrupt, None), SwapStatus::VerifyFailed),
            // A generation precondition that does not hold is refused.
            (swap("t0", &rollout, Some(9)), SwapStatus::VerifyFailed),
        ];
        for (frame, expected_status) in cases {
            let Frame::SwapDbResponse(r) = frame else {
                panic!("expected a swap response, got {frame:?}")
            };
            assert_eq!(r.status, expected_status);
            assert_eq!(r.generation, 0, "the seeded generation keeps serving");
        }
        // Every refusal was recorded; none of them re-seated the tenant.
        let outcomes = daemon.into_outcomes();
        assert_eq!(outcomes[0].generation, 0);
        assert_eq!(outcomes[0].points, 8);
        assert_eq!(
            outcomes[0].swaps.len(),
            3,
            "unknown-tenant never reaches a session"
        );
        assert!(outcomes[0]
            .swaps
            .iter()
            .all(|s| s.status != SwapStatus::Swapped));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn learn_fleet(n: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| {
                Tenant::from_parts(
                    format!("t{i}"),
                    jpeg_encoder(),
                    Platform::dac19(),
                    small_db(8, 1.0 + i as f64 * 0.1),
                    PolicySpec::AuraLearn {
                        p_rc: 0.5,
                        gamma: 0.6,
                        alpha: 0.2,
                        epsilon: 0.1,
                        seed: 7,
                    },
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn mid_stream_promote_learns_and_checkpoints_survive_restart() {
        let dir = std::env::temp_dir().join("clr-serve-daemon-learn");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let tenants = learn_fleet(3);
        let trace = generate_trace(&tenants, 41, 4_000.0, 100.0);
        assert!(trace.len() > 20);
        let mut bytes = Vec::new();
        let mid = trace.len() / 2;
        for (i, event) in trace.events().iter().enumerate() {
            if i == mid {
                bytes.extend_from_slice(
                    &Frame::Promote(PromoteRequest {
                        seq: 91_000,
                        tenant: "t1".into(),
                    })
                    .to_bytes(),
                );
            }
            bytes.extend_from_slice(
                &Frame::Request(Request::from_event(i as u64 + 1, event)).to_bytes(),
            );
        }
        bytes.extend_from_slice(
            &Frame::Promote(PromoteRequest {
                seq: 91_001,
                tenant: "ghost".into(),
            })
            .to_bytes(),
        );
        bytes.extend_from_slice(&Frame::Shutdown.to_bytes());

        let mut outputs = Vec::new();
        let mut checkpoints = Vec::new();
        let mut first_run_decisions = 0;
        for threads in [1usize, 8] {
            let learn_dir = dir.join(format!("threads-{threads}"));
            let config = DaemonConfig {
                batch: 7,
                replay: ReplayConfig {
                    threads,
                    ..ReplayConfig::default()
                },
                learn_dir: Some(learn_dir.clone()),
            };
            let mut input = std::io::Cursor::new(bytes.clone());
            let mut output = Vec::new();
            let report = serve_stream(&tenants, &mut input, &mut output, &config).unwrap();
            assert!(report.clean_shutdown);
            assert_eq!(report.promotes, 2, "t1 promote + ghost promote answered");
            let t1 = report.outcomes.iter().find(|o| o.name == "t1").unwrap();
            assert_eq!(t1.promotes.len(), 1);
            assert_eq!(t1.promotes[0].status, PromoteStatus::Promoted);
            let learn = t1.learn.expect("learning tenant carries a summary");
            assert_eq!(learn.promotions, 1);
            assert!(!t1.shadows.is_empty(), "every decision was shadow-scored");
            first_run_decisions = learn.decisions;
            // One CLRLRN1 checkpoint per learning tenant was written.
            let cp: Vec<Vec<u8>> = (0..3)
                .map(|i| std::fs::read(learn_dir.join(format!("t{i}.learn"))).unwrap())
                .collect();
            assert!(cp.iter().all(|b| clr_learn::is_learn_checkpoint(b)));
            outputs.push(output);
            checkpoints.push(cp);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "promote-under-traffic output must be byte-identical at threads 1 and 8"
        );
        assert_eq!(
            checkpoints[0], checkpoints[1],
            "checkpoint bytes must be byte-identical at threads 1 and 8"
        );
        let ack = decode_all(&outputs[0])
            .into_iter()
            .find_map(|f| match f {
                Frame::PromoteResponse(r) if r.seq == 91_000 => Some(r),
                _ => None,
            })
            .expect("the promotion was acknowledged in stream position");
        assert_eq!(ack.status, PromoteStatus::Promoted);
        assert_eq!(ack.promotions, 1);

        // Restart against the saved checkpoints: the learner warm-starts
        // and keeps accumulating where the first run stopped.
        let config = DaemonConfig {
            batch: 7,
            replay: ReplayConfig::default(),
            learn_dir: Some(dir.join("threads-1")),
        };
        let mut input = std::io::Cursor::new(frames_for(&trace, true));
        let mut output = Vec::new();
        let report = serve_stream(&tenants, &mut input, &mut output, &config).unwrap();
        assert!(
            report.learn_notes.iter().any(|n| n.contains("restored")),
            "notes: {:?}",
            report.learn_notes
        );
        let t1 = report.outcomes.iter().find(|o| o.name == "t1").unwrap();
        let learn = t1.learn.expect("learning tenant carries a summary");
        assert_eq!(
            learn.decisions,
            2 * first_run_decisions,
            "warm start keeps the first run's scored decisions"
        );
        assert_eq!(learn.promotions, 1, "promotion count survives the restart");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_fleet_is_rejected_at_seating() {
        let mut tenants = fleet(1);
        tenants.push(tenants[0].clone());
        let err = Daemon::new(&tenants, &DaemonConfig::default()).unwrap_err();
        assert_eq!(
            err,
            DaemonError::Replay(ReplayError::DuplicateTenant("t0".into()))
        );
    }
}
