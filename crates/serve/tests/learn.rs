//! Online-learning determinism properties.
//!
//! The `aura+learn:` serving path adds three moving parts on top of the
//! batch engine — incremental value updates, shadow scoring with
//! counterfactual regret, and reconfiguration prefetch — and every one
//! of them must stay a pure function of the tenant's serial event
//! stream. These tests pin that down:
//!
//! - batch replay of a learning fleet is **byte-identical** (decisions
//!   CSV and obs journal, shadow events included) at engine thread
//!   counts 1 and 8;
//! - a daemon serving the same fleet writes **byte-identical** `CLRLRN1`
//!   checkpoints at `--threads 1` and `8`;
//! - the A/B arm of every learner agrees with the deterministic
//!   [`clr_learn::assign_variant`] of its `(seed, tenant)`;
//! - the journal-refolded A/B report agrees with the live one;
//! - a quarantined tenant's learner is **frozen** — quarantine recording
//!   never updates value tables.

use std::sync::OnceLock;

use clr_chaos::{FaultKind, FaultPlan, FaultRates};
use clr_dse::{explore_based, DseConfig, ExplorationMode};
use clr_moea::GaParams;
use clr_obs::{Obs, ObsMode};
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_serve::wire::{Frame, Request};
use clr_serve::{
    ab_report_from_journal, generate_trace, replay, serve_stream, DaemonConfig, PolicySpec,
    ReplayConfig, ReplayReport, ServeStatus, Tenant, TenantSession,
};
use clr_taskgraph::{TgffConfig, TgffGenerator};
use proptest::prelude::*;

const LEARN_SEED: u64 = 7;

fn tenant(name: &str, seed: u64, policy: PolicySpec) -> Tenant {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(seed);
    let platform = Platform::dac19();
    let cfg = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    let db = explore_based(
        &graph,
        &platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        &cfg,
        seed,
    );
    Tenant::from_parts(name, graph, platform, db, policy).unwrap()
}

fn learn_spec() -> PolicySpec {
    PolicySpec::AuraLearn {
        p_rc: 0.5,
        gamma: 0.6,
        alpha: 0.2,
        epsilon: 0.1,
        seed: LEARN_SEED,
    }
}

/// Three learning tenants plus one frozen `aura:` control — expensive
/// to explore, so built once (tenants are immutable; sessions own all
/// state).
fn fleet() -> &'static [Tenant] {
    static FLEET: OnceLock<Vec<Tenant>> = OnceLock::new();
    FLEET.get_or_init(|| {
        vec![
            tenant("cam0", 91, learn_spec()),
            tenant("nav", 92, learn_spec()),
            tenant("audio", 93, learn_spec()),
            tenant(
                "radar",
                94,
                PolicySpec::Aura {
                    p_rc: 0.5,
                    gamma: 0.6,
                    alpha: 0.1,
                },
            ),
        ]
    })
}

/// Renders a report's byte-comparable artifacts: the decisions CSV and
/// the deterministic journal section.
fn render(report: &ReplayReport) -> (String, String) {
    let obs = Obs::new(ObsMode::Json);
    report.emit_obs(&obs);
    (
        report.decisions_csv(),
        obs.render_det_jsonl_labeled("learn"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn learn_replay_is_byte_identical_across_threads(
        seed in 0u64..1_000_000,
        cycles in 500.0f64..3_000.0,
    ) {
        let tenants = fleet();
        let trace = generate_trace(tenants, seed, cycles, 100.0);
        let one = replay(tenants, &trace, &ReplayConfig { threads: 1, ..ReplayConfig::default() }).unwrap();
        let eight = replay(tenants, &trace, &ReplayConfig { threads: 8, ..ReplayConfig::default() }).unwrap();
        prop_assert_eq!(one.outcomes(), eight.outcomes());
        let (csv_one, journal_one) = render(&one);
        let (csv_eight, journal_eight) = render(&eight);
        prop_assert_eq!(&csv_one, &csv_eight, "decisions CSV must be byte-identical");
        prop_assert_eq!(&journal_one, &journal_eight, "journal (shadow events included) must be byte-identical");
        prop_assert!(journal_one.contains("\"type\":\"shadow\""), "learning tenants journal shadow events");
        // The journal-refolded A/B report and the live report agree line
        // for line on everything the journal can see.
        let refolded = ab_report_from_journal(&journal_one).unwrap();
        prop_assert!(!refolded.is_empty());
        let live = one.ab_lines();
        prop_assert!(!live.is_empty());
        for o in one.outcomes().iter().filter(|o| o.learn.is_some()) {
            let l = o.learn.unwrap();
            // Seeded A/B assignment is a pure function of (seed, name).
            prop_assert_eq!(l.variant, clr_learn::assign_variant(LEARN_SEED, &o.name));
            let refold_line = refolded.iter().find(|line| line.starts_with(&format!("tenant {}:", o.name))).unwrap();
            prop_assert!(
                refold_line.contains(&format!("regret live {} shadow {}", l.cum_live_regret, l.cum_shadow_regret)),
                "journal refold disagrees: {} vs live {:?}", refold_line, l
            );
        }
        // The frozen control tenant carries no learner.
        let radar = one.outcomes().iter().find(|o| o.name == "radar").unwrap();
        prop_assert!(radar.learn.is_none());
        prop_assert!(radar.shadows.is_empty());
    }

    #[test]
    fn daemon_checkpoints_are_byte_identical_across_threads(
        seed in 0u64..1_000_000,
    ) {
        let tenants = fleet();
        let trace = generate_trace(tenants, seed, 1_500.0, 100.0);
        let mut bytes = Vec::new();
        for (i, event) in trace.events().iter().enumerate() {
            bytes.extend_from_slice(&Frame::Request(Request::from_event(i as u64 + 1, event)).to_bytes());
        }
        bytes.extend_from_slice(&Frame::Shutdown.to_bytes());
        let dir = std::env::temp_dir().join(format!("clr-serve-learn-prop-{seed}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut checkpoints: Vec<Vec<Vec<u8>>> = Vec::new();
        for threads in [1usize, 8] {
            let learn_dir = dir.join(format!("threads-{threads}"));
            let config = DaemonConfig {
                batch: 5,
                replay: ReplayConfig { threads, ..ReplayConfig::default() },
                learn_dir: Some(learn_dir.clone()),
            };
            let mut input = std::io::Cursor::new(bytes.clone());
            let mut output = Vec::new();
            let report = serve_stream(tenants, &mut input, &mut output, &config).unwrap();
            prop_assert!(report.clean_shutdown);
            let cp: Vec<Vec<u8>> = ["cam0", "nav", "audio"]
                .iter()
                .map(|name| std::fs::read(learn_dir.join(format!("{name}.learn"))).unwrap())
                .collect();
            prop_assert!(cp.iter().all(|b| clr_learn::is_learn_checkpoint(b)));
            // The frozen control tenant never writes a checkpoint.
            prop_assert!(!learn_dir.join("radar.learn").exists());
            checkpoints.push(cp);
        }
        prop_assert_eq!(
            &checkpoints[0], &checkpoints[1],
            "checkpoint bytes must be byte-identical at threads 1 and 8"
        );
        // Every checkpoint round-trips byte-exactly through the codec.
        for bytes in &checkpoints[0] {
            let state = clr_learn::LearnerState::from_bytes(bytes).unwrap();
            prop_assert_eq!(&state.to_bytes(), bytes);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Quarantine is a learning freeze: the session's early return for a
/// quarantined tenant never calls `decide`/`observe`, so the value
/// tables, regret accumulators and prefetch counters all stop moving
/// the moment the tenant enters quarantine.
#[test]
fn quarantine_freezes_learning() {
    let tenants = vec![tenant("solo", 95, learn_spec())];
    let trace = generate_trace(&tenants, 17, 6_000.0, 100.0);
    let config = ReplayConfig {
        faults: FaultPlan::new(3, FaultRates::only(FaultKind::PolicyFailure, 0.6)).unwrap(),
        quarantine_after: 1,
        ..ReplayConfig::default()
    };
    let mut session = TenantSession::new(&tenants[0], 0, &config);
    let mut frozen: Option<(u64, f64, f64, u64, u64)> = None;
    let mut quarantined_events = 0usize;
    for event in trace.events() {
        let record = session.feed(event);
        if record.status != ServeStatus::Quarantined {
            continue;
        }
        quarantined_events += 1;
        let learner = session.learner().expect("learning tenant has a learner");
        let now = (
            learner.decisions(),
            learner.cum_live_regret(),
            learner.cum_shadow_regret(),
            learner.prefetch_hits() + learner.prefetch_misses(),
            learner.explored(),
        );
        match frozen {
            None => frozen = Some(now),
            Some(at_entry) => assert_eq!(
                now, at_entry,
                "a quarantined tenant's learner must not move"
            ),
        }
    }
    assert!(
        frozen.is_some() && quarantined_events > 1,
        "the chaos campaign must quarantine the tenant with events left to record \
         (got {quarantined_events} quarantined events)"
    );
    let outcome = session.into_outcome();
    assert!(outcome.health.quarantine_entries > 0);
    // Shadow records stop at the freeze too: every recorded shadow
    // belongs to a served (pre-quarantine) event.
    let served: Vec<usize> = outcome
        .decisions
        .iter()
        .filter(|d| d.status != ServeStatus::Quarantined)
        .map(|d| d.event)
        .collect();
    assert!(outcome.shadows.iter().all(|s| served.contains(&s.event)));
}
