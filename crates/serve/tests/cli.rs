//! Integration tests driving the real `clr-serve` and `clr-served`
//! binaries.
//!
//! Covers the strict-flag contract (an unknown or typo'd `--flag` is a
//! usage error with exit code 2, never silently ignored) and the
//! daemon end-to-end loop: `gen-trace` → `wire-encode` → `clr-served`
//! → `wire-decode` must reproduce `replay`'s `decisions.csv`
//! byte-for-byte — the same loop `ci.sh` closes as its daemon smoke
//! test.

use std::fs::File;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

use clr_dse::{explore_based, DseConfig, ExplorationMode};
use clr_moea::GaParams;
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_serve::Snapshot;
use clr_taskgraph::{TgffConfig, TgffGenerator};

fn serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_clr-serve"))
        .args(args)
        .output()
        .expect("clr-serve must run")
}

fn served(args: &[&str], stdin: Stdio, stdout: Stdio) -> Output {
    let child = Command::new(env!("CARGO_BIN_EXE_clr-served"))
        .args(args)
        .stdin(stdin)
        .stdout(stdout)
        .stderr(Stdio::piped())
        .spawn()
        .expect("clr-served must start");
    child.wait_with_output().expect("clr-served must finish")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch directory holding a servable snapshot, unique per test so
/// `cargo test`'s parallel runner cannot interleave artifacts.
fn scratch(test: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("clr-serve-cli-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let graph_desc = "tgff:8:81";
    let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(81);
    let platform = Platform::dac19();
    let cfg = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    let db = explore_based(
        &graph,
        &platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        &cfg,
        81,
    );
    let snap = dir.join("fleet.snap");
    Snapshot::new(graph_desc, "dac19", db)
        .write_file(&snap)
        .expect("snapshot written");
    (dir, snap.to_string_lossy().into_owned())
}

#[test]
fn unknown_flag_is_a_usage_error_not_silently_ignored() {
    // `--tenants` is the classic typo for `--tenant`.
    let out = serve(&["replay", "--trace", "t.jsonl", "--tenants", "a=b@hv"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("unknown flag --tenants"), "{err}");
    assert!(
        err.contains("--tenant"),
        "must list the accepted flags: {err}"
    );
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn every_subcommand_rejects_unknown_flags() {
    for cmd in [
        &["snapshot", "a.db", "b.snap", "--graf", "jpeg"][..],
        &["inspect", "a.snap", "--verbose", "yes"][..],
        &["gen-trace", "--out", "t", "--sede", "1"][..],
        &["wire-encode", "--trace", "t", "--output", "f"][..],
        &["wire-decode", "--in", "f", "--tenant", "a"][..],
    ] {
        let out = serve(cmd);
        assert_eq!(out.status.code(), Some(2), "{cmd:?}: {}", stderr_of(&out));
        assert!(
            stderr_of(&out).contains("unknown flag"),
            "{cmd:?}: {}",
            stderr_of(&out)
        );
    }
}

#[test]
fn served_rejects_unknown_flags_with_a_usage_error() {
    let out = served(
        &["--thread", "4", "--tenant", "a=b@hv"],
        Stdio::null(),
        Stdio::null(),
    );
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("unknown flag --thread"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn daemon_responses_are_byte_identical_to_batch_replay() {
    let (dir, snap) = scratch("e2e");
    let cam0 = format!("cam0={snap}@ura:0.5");
    let nav = format!("nav={snap}@aura:0.5,0.6,0.1");
    let trace = dir.join("trace.jsonl").to_string_lossy().into_owned();
    let frames = dir.join("frames.bin");
    let responses = dir.join("responses.bin");
    let out_dir = dir.join("batch").to_string_lossy().into_owned();

    let gen = serve(&[
        "gen-trace",
        "--out",
        &trace,
        "--tenant",
        &cam0,
        "--tenant",
        &nav,
        "--seed",
        "7",
        "--cycles",
        "2000",
        "--mean-gap",
        "100",
    ]);
    assert_eq!(gen.status.code(), Some(0), "{}", stderr_of(&gen));

    let replayed = serve(&[
        "replay",
        "--trace",
        &trace,
        "--tenant",
        &cam0,
        "--tenant",
        &nav,
        "--out-dir",
        &out_dir,
    ]);
    assert_eq!(replayed.status.code(), Some(0), "{}", stderr_of(&replayed));
    let batch_csv = std::fs::read_to_string(format!("{out_dir}/decisions.csv")).expect("batch CSV");

    let encoded = serve(&[
        "wire-encode",
        "--trace",
        &trace,
        "--out",
        &frames.to_string_lossy(),
    ]);
    assert_eq!(encoded.status.code(), Some(0), "{}", stderr_of(&encoded));

    let daemon = served(
        &["--tenant", &cam0, "--tenant", &nav, "--batch", "8"],
        Stdio::from(File::open(&frames).expect("frames readable")),
        Stdio::from(File::create(&responses).expect("responses writable")),
    );
    assert_eq!(daemon.status.code(), Some(0), "{}", stderr_of(&daemon));
    let log = stderr_of(&daemon);
    assert!(log.contains("drained"), "{log}");
    assert!(log.contains("shutdown frame"), "{log}");
    assert!(log.contains("0 rejected"), "{log}");

    let decoded = serve(&[
        "wire-decode",
        "--in",
        &responses.to_string_lossy(),
        "--tenants",
        "cam0,nav",
    ]);
    assert_eq!(decoded.status.code(), Some(0), "{}", stderr_of(&decoded));
    let daemon_csv = String::from_utf8(decoded.stdout).expect("CSV is UTF-8");
    assert_eq!(
        daemon_csv, batch_csv,
        "daemon responses must reproduce batch replay byte-for-byte"
    );
    assert!(
        daemon_csv.lines().count() > 2,
        "the comparison must cover real decisions, not an empty stream"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_fails_loudly_on_a_corrupt_frame_stream() {
    let (dir, snap) = scratch("corrupt");
    let cam0 = format!("cam0={snap}@hv");
    let trace = dir.join("trace.jsonl").to_string_lossy().into_owned();
    let frames = dir.join("frames.bin");

    let gen = serve(&[
        "gen-trace",
        "--out",
        &trace,
        "--tenant",
        &cam0,
        "--seed",
        "3",
        "--cycles",
        "500",
    ]);
    assert_eq!(gen.status.code(), Some(0), "{}", stderr_of(&gen));
    let encoded = serve(&[
        "wire-encode",
        "--trace",
        &trace,
        "--out",
        &frames.to_string_lossy(),
    ]);
    assert_eq!(encoded.status.code(), Some(0), "{}", stderr_of(&encoded));

    // Flip one payload byte in the first frame: the checksum must catch
    // it and the daemon must refuse to keep serving a lost framing.
    let mut bytes = std::fs::read(&frames).expect("frames readable");
    bytes[40] ^= 0xFF;
    std::fs::write(&frames, &bytes).expect("frames writable");

    let daemon = served(
        &["--tenant", &cam0],
        Stdio::from(File::open(&frames).expect("frames readable")),
        Stdio::null(),
    );
    assert_eq!(daemon.status.code(), Some(1), "{}", stderr_of(&daemon));
    assert!(
        stderr_of(&daemon).contains("checksum"),
        "{}",
        stderr_of(&daemon)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
