//! Property: feeding a generated trace event-by-event through
//! [`TenantSession::feed`] is **byte-identical** — decisions CSV and obs
//! journal — to one batch [`replay`] call, at engine thread counts 1
//! and 8, with and without chaos injection.
//!
//! This is the tentpole's contract: batch and incremental serving are
//! one code path, so they cannot drift. The incremental side here is
//! driven exactly the way `clr-served` drives sessions (route by name,
//! feed in file order), and its outcomes are rendered through the same
//! [`ReplayReport`] renderers the batch side uses.

use std::sync::OnceLock;

use clr_chaos::{FaultPlan, FaultRates};
use clr_dse::{explore_based, DseConfig, ExplorationMode};
use clr_moea::GaParams;
use clr_obs::{Obs, ObsMode};
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_serve::{
    generate_trace, replay, PolicySpec, ReplayConfig, ReplayReport, Tenant, TenantSession, Trace,
};
use clr_taskgraph::{TgffConfig, TgffGenerator};
use proptest::prelude::*;

fn tenant(name: &str, seed: u64, policy: PolicySpec) -> Tenant {
    let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(seed);
    let platform = Platform::dac19();
    let cfg = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    let db = explore_based(
        &graph,
        &platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        &cfg,
        seed,
    );
    Tenant::from_parts(name, graph, platform, db, policy).unwrap()
}

/// The fleet is expensive to explore, so it is built once and shared by
/// every generated case (tenants are immutable; sessions own all state).
fn fleet() -> &'static [Tenant] {
    static FLEET: OnceLock<Vec<Tenant>> = OnceLock::new();
    FLEET.get_or_init(|| {
        vec![
            tenant("cam0", 81, PolicySpec::Ura { p_rc: 0.5 }),
            tenant(
                "nav",
                82,
                PolicySpec::Aura {
                    p_rc: 0.5,
                    gamma: 0.6,
                    alpha: 0.1,
                },
            ),
            tenant("audio", 83, PolicySpec::Hv),
        ]
    })
}

/// Renders a report's byte-comparable artifacts: the decisions CSV and
/// the deterministic journal section.
fn render(report: &ReplayReport) -> (String, String) {
    let obs = Obs::new(ObsMode::Json);
    report.emit_obs(&obs);
    (
        report.decisions_csv(),
        obs.render_det_jsonl_labeled("feed-replay"),
    )
}

/// The incremental path: one session per tenant, events routed by name
/// and fed one at a time in file order — exactly what the daemon does.
fn feed_incrementally(tenants: &[Tenant], trace: &Trace, config: &ReplayConfig) -> ReplayReport {
    let mut sessions: Vec<TenantSession<'_>> = tenants
        .iter()
        .enumerate()
        .map(|(idx, t)| TenantSession::new(t, idx, config))
        .collect();
    let mut dropped: Vec<(String, usize)> = Vec::new();
    for event in trace.events() {
        match sessions
            .iter_mut()
            .find(|s| s.tenant().name() == event.tenant)
        {
            Some(session) => {
                let record = session.feed(event);
                // feed's return value is the same record it accumulates.
                assert_eq!(
                    record,
                    *session.outcome().decisions.last().unwrap(),
                    "feed must return the accumulated record"
                );
            }
            None => match dropped.iter_mut().find(|(n, _)| *n == event.tenant) {
                Some((_, n)) => *n += 1,
                None => dropped.push((event.tenant.clone(), 1)),
            },
        }
    }
    dropped.sort();
    ReplayReport::from_parts(
        sessions
            .into_iter()
            .map(TenantSession::into_outcome)
            .collect(),
        dropped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn feed_is_byte_identical_to_batch_replay(
        seed in 0u64..1_000_000,
        cycles in 500.0f64..4_000.0,
    ) {
        let tenants = fleet();
        let trace = generate_trace(tenants, seed, cycles, 100.0);
        let config = ReplayConfig::default();
        let incremental = feed_incrementally(tenants, &trace, &config);
        for threads in [1usize, 8] {
            let batch = replay(
                tenants,
                &trace,
                &ReplayConfig { threads, ..config },
            )
            .unwrap();
            prop_assert_eq!(batch.outcomes(), incremental.outcomes());
            let (batch_csv, batch_journal) = render(&batch);
            let (inc_csv, inc_journal) = render(&incremental);
            prop_assert_eq!(&batch_csv, &inc_csv, "CSV must be byte-identical (threads {})", threads);
            prop_assert_eq!(&batch_journal, &inc_journal, "journal must be byte-identical (threads {})", threads);
        }
    }

    #[test]
    fn feed_matches_batch_under_chaos_injection(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..10_000,
    ) {
        let tenants = fleet();
        let trace = generate_trace(tenants, seed, 2_000.0, 100.0);
        let config = ReplayConfig {
            faults: FaultPlan::new(plan_seed, FaultRates::default_campaign()).unwrap(),
            quarantine_after: 2,
            ..ReplayConfig::default()
        };
        let incremental = feed_incrementally(tenants, &trace, &config);
        for threads in [1usize, 8] {
            let batch = replay(
                tenants,
                &trace,
                &ReplayConfig { threads, ..config },
            )
            .unwrap();
            let (batch_csv, batch_journal) = render(&batch);
            let (inc_csv, inc_journal) = render(&incremental);
            prop_assert_eq!(&batch_csv, &inc_csv, "chaos CSV must be byte-identical (threads {})", threads);
            prop_assert_eq!(&batch_journal, &inc_journal, "chaos journal must be byte-identical (threads {})", threads);
        }
    }
}
