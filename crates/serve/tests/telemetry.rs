//! The live-telemetry contracts, end to end:
//!
//! 1. The schema-2 snapshot codec round-trips **byte-identically** for
//!    arbitrary observed histories (proptest).
//! 2. A `Stats` frame answered mid-stream by [`serve_stream`] yields
//!    the same bytes at `threads = 1` and `threads = 8`, and the
//!    end-of-stream snapshot equals what a batch [`replay`] of the same
//!    trace reports — one shared source for CLI summary, stats wire
//!    response and replay telemetry.
//! 3. Quarantine freezes the flight recorder: the snapshot carries the
//!    tenant's final served approach even when flight was not requested.
//! 4. The closed-loop cost of leaving telemetry on stays within a
//!    generous hard bound (the honest number lives in
//!    `results/BENCH_telemetry.json`; this is a regression tripwire in
//!    the spirit of the obs crate's overhead bar, not a benchmark).

use std::sync::OnceLock;

use clr_dse::{DesignPoint, DesignPointDb, PointOrigin, QosSpec};
use clr_platform::Platform;
use clr_sched::{Mapping, SystemMetrics};
use clr_serve::wire::{Frame, Request, StatsRequest};
use clr_serve::{
    fleet_snapshot, generate_trace, replay, serve_stream, Daemon, DaemonConfig, DecisionRecord,
    FaultKind, HealthState, PolicySpec, ReplayConfig, ServeStatus, Tenant, TraceEvent,
};
use clr_taskgraph::jpeg_encoder;
use proptest::prelude::*;

/// A small synthetic fleet: shared mapped graph, per-tenant metric skew
/// (the serve_load construction at test scale — no DSE run needed).
fn fleet() -> &'static [Tenant] {
    static FLEET: OnceLock<Vec<Tenant>> = OnceLock::new();
    FLEET.get_or_init(|| {
        let graph = jpeg_encoder();
        let platform = Platform::dac19();
        let mapping = Mapping::first_fit(&graph, &platform).expect("jpeg maps onto dac19");
        (0..6)
            .map(|i| {
                let skew = 1.0 + (i % 5) as f64 * 0.07;
                let mut db = DesignPointDb::new("telemetry-test");
                for p in 0..12 {
                    let f = f64::from(p) / 12.0;
                    db.push(DesignPoint::new(
                        mapping.clone(),
                        SystemMetrics {
                            makespan: 50.0 + 100.0 * f * skew,
                            reliability: 0.6 + 0.35 * f,
                            energy: 1.0 + f,
                            peak_power: 1.0,
                            mean_mttf: 100.0,
                        },
                        PointOrigin::Pareto,
                    ));
                }
                Tenant::from_parts(
                    format!("t{i}"),
                    graph.clone(),
                    platform.clone(),
                    db,
                    PolicySpec::Ura { p_rc: 0.5 },
                )
                .expect("synthetic tenants are valid")
            })
            .collect()
    })
}

/// Decodes every frame from a daemon's output stream.
fn decode_frames(mut bytes: &[u8]) -> Vec<Frame> {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        let (frame, used) = Frame::from_bytes(bytes).expect("daemon output decodes");
        frames.push(frame);
        bytes = &bytes[used..];
    }
    frames
}

/// The snapshot texts carried by the stream's stats responses, in order.
fn stats_texts(frames: &[Frame]) -> Vec<String> {
    frames
        .iter()
        .filter_map(|f| match f {
            Frame::StatsResponse(r) => Some(r.snapshot.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn stats_snapshots_are_byte_identical_across_thread_counts() {
    let tenants = fleet();
    let trace = generate_trace(tenants, 23, 3_000.0, 100.0);
    // Requests with a mid-stream stats probe and a final one: the
    // mid-stream probe lands at a fixed stream position, so its answer
    // is a pure function of the prefix — whatever the thread count.
    let mut stream = Vec::new();
    let events: Vec<&TraceEvent> = trace.events().iter().collect();
    let mid = events.len() / 2;
    for (i, event) in events.iter().enumerate() {
        if i == mid {
            stream.extend_from_slice(&Frame::Stats(StatsRequest::fleet(90_000, false)).to_bytes());
        }
        stream.extend_from_slice(
            &Frame::Request(Request {
                seq: i as u64 + 1,
                tenant: event.tenant.clone(),
                time: event.time,
                spec: event.spec,
            })
            .to_bytes(),
        );
    }
    stream.extend_from_slice(&Frame::Stats(StatsRequest::fleet(90_001, true)).to_bytes());
    stream.extend_from_slice(&Frame::Shutdown.to_bytes());

    let mut per_threads: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 8] {
        let config = DaemonConfig {
            replay: ReplayConfig {
                threads,
                ..ReplayConfig::default()
            },
            ..DaemonConfig::default()
        };
        let mut reader = &stream[..];
        let mut out = Vec::new();
        let report =
            serve_stream(tenants, &mut reader, &mut out, &config).expect("stream serves cleanly");
        assert!(report.clean_shutdown);
        assert_eq!(report.stats, 2, "both stats probes answered");
        assert_eq!(report.served, events.len());
        let texts = stats_texts(&decode_frames(&out));
        assert_eq!(texts.len(), 2);
        per_threads.push(texts);
    }
    assert_eq!(
        per_threads[0], per_threads[1],
        "stats snapshots must be byte-identical at threads 1 and 8"
    );

    // The end-of-stream snapshot is the batch replay's telemetry: one
    // shared source behind the CLI summary, replay telemetry and the
    // stats wire response.
    let batch = replay(tenants, &trace, &ReplayConfig::default()).expect("trace replays");
    assert_eq!(
        per_threads[0][1],
        batch.telemetry("fleet", true).to_json(),
        "daemon stats and batch replay report the same fleet snapshot"
    );
}

#[test]
fn quarantine_freezes_the_flight_recorder() {
    let tenants = fleet();
    let tenant = &tenants[0];
    let config = ReplayConfig {
        quarantine_after: 2,
        ..ReplayConfig::default()
    };
    let mut session = clr_serve::TenantSession::new(tenant, 0, &config);
    let ev = |time: f64| TraceEvent {
        tenant: tenant.name().to_string(),
        time,
        spec: QosSpec::new(f64::MAX, 0.0),
    };
    for i in 0..5 {
        session.feed(&ev(f64::from(i) * 10.0));
    }
    // Two malformed timestamps in a row trip the quarantine threshold.
    session.feed(&ev(f64::NAN));
    session.feed(&ev(f64::NAN));
    assert!(session.is_quarantined());
    let frozen_served = session.outcome().health.served;
    for i in 0..4 {
        session.feed(&ev(100.0 + f64::from(i)));
    }
    let outcome = session.outcome();
    assert_eq!(
        outcome.health.served, frozen_served,
        "quarantined events are recorded, never served"
    );
    // Flight rows surface without being requested once quarantined, and
    // the newest row is the last *served* decision, not a quarantined one.
    let t = outcome
        .health
        .telemetry(tenant.name(), outcome.generation, false, &outcome.decisions);
    assert!(!t.flight.is_empty(), "quarantine forces flight rows out");
    let last_served = outcome
        .decisions
        .iter()
        .rev()
        .find(|d| d.status.is_served())
        .expect("five clean events were served");
    assert!(
        t.flight[t.flight.len() - 1].starts_with(&format!(
            "{},{},",
            tenant.name(),
            last_served.event
        )),
        "the flight recorder's newest row is the final served approach"
    );
}

#[test]
fn telemetry_overhead_stays_within_the_bar() {
    // A regression tripwire, not a benchmark: the honest overhead
    // number is measured by `telemetry_bench` at fleet scale (single
    // digits, percent). On a noisy CI machine a tight bound would
    // flake, so the bar only catches gross regressions (telemetry
    // costing >50% of the closed loop).
    let tenants = fleet();
    let trace = generate_trace(tenants, 29, 12_000.0, 10.0);
    let requests: Vec<Request> = trace
        .events()
        .iter()
        .enumerate()
        .map(|(i, e)| Request {
            seq: i as u64 + 1,
            tenant: e.tenant.clone(),
            time: e.time,
            spec: e.spec,
        })
        .collect();
    let run = |telemetry: bool| -> f64 {
        let config = DaemonConfig {
            replay: ReplayConfig {
                telemetry,
                threads: 1,
                ..ReplayConfig::default()
            },
            ..DaemonConfig::default()
        };
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let daemon = Daemon::new(tenants, &config).expect("unique tenant names");
            // clr-audit: nondet(begin) wall-clock overhead tripwire, test only
            let start = std::time::Instant::now();
            for chunk in requests.chunks(256) {
                daemon.handle_batch(chunk);
            }
            best = best.min(start.elapsed().as_secs_f64());
            // clr-audit: nondet(end)
        }
        best
    };
    // Interleaved warm-up pass so neither config pays first-touch costs.
    let _ = (run(true), run(false));
    let on = run(true);
    let off = run(false);
    assert!(
        on < off * 1.5 || on - off < 0.05,
        "telemetry-on closed loop took {on:.4}s vs {off:.4}s off — over the 1.5x bar"
    );
}

/// Builds a health registry + decision log from generated row seeds:
/// each seed's bits pick the status, violation flag, feasible-set size
/// and a slack value spanning many binary exponents.
fn observed_history(seeds: &[u64]) -> (HealthState, Vec<DecisionRecord>) {
    let mut health = HealthState::new();
    let mut log = Vec::new();
    for (i, &s) in seeds.iter().enumerate() {
        let status = match s % 5 {
            0 => ServeStatus::Normal,
            1 => ServeStatus::DegradedLkg,
            2 => ServeStatus::DegradedBaseline,
            3 => ServeStatus::DegradedHold,
            _ => ServeStatus::Quarantined,
        };
        let fault = match status {
            ServeStatus::Normal | ServeStatus::Quarantined => None,
            _ => Some(FaultKind::ALL[usize::try_from(s >> 3).unwrap_or(0) % FaultKind::ALL.len()]),
        };
        let feasible = usize::try_from((s >> 7) & 0x3ff).unwrap_or(0);
        let d = DecisionRecord {
            event: i + 1,
            time: i as f64,
            spec: QosSpec::new(100.0, 0.5),
            feasible,
            from: usize::try_from(s >> 17).unwrap_or(0) % 7,
            to: feasible % 7,
            drc: 0.0,
            score: None,
            p_rc: None,
            violated: (s >> 6) & 1 == 1,
            status,
            fault,
        };
        let slack = f64::from_bits(s % (1u64 << 62)).abs();
        let slack = if slack.is_finite() { slack } else { 0.0 };
        health.observe(&d, slack);
        log.push(d);
    }
    (health, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_codec_round_trips_byte_identically(
        rows in collection::vec(0u64..u64::MAX, 0..200),
        shape in 0u64..1_000_000,
    ) {
        // Shape bits: quarantine entries, flight inclusion and the
        // dropped-tenant list all derive from one seed, keeping the
        // macro arity low.
        let (mut health, log) = observed_history(&rows);
        for _ in 0..(shape % 3) {
            health.note_quarantine_entry();
        }
        let include_flight = shape % 2 == 1;
        let dropped: Vec<(String, u64)> = (0..(shape / 3) % 4)
            .map(|i| (format!("ghost{i}"), (shape / 7) % 100 + 1))
            .collect();
        let snap = fleet_snapshot(
            "prop",
            [("cam", shape % 9, &health, log.as_slice())],
            &dropped,
            include_flight,
        );
        let line = snap.to_json();
        let back = clr_obs::TelemetrySnapshot::from_json(&line)
            .expect("self-encoded snapshot decodes");
        prop_assert_eq!(back.to_json(), line, "decode(encode(s)) must re-encode identically");
        prop_assert_eq!(back.schema, 2u64);
        prop_assert_eq!(back.tenants.len(), 1);
        prop_assert_eq!(back.tenants[0].events, rows.len() as u64);
    }
}
