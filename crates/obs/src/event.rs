//! The structured journal schema: one [`Event`] per JSONL line.
//!
//! Every event encodes to a single-line JSON object with a **fixed key
//! order** starting with `seq` (the logical sequence number assigned by
//! the journal) and `type`. Encoding is deterministic down to the byte —
//! floats use Rust's shortest-round-trip formatting — so two runs that
//! emit the same events produce identical files, which is the foundation
//! of the thread-count byte-compare gate. [`Event::from_json_line`]
//! inverts [`Event::to_json_line`] exactly; the `clr-verify` journal
//! round-trip lint re-encodes each parsed line and compares bytes.

use crate::json::{self, fmt_f64, fmt_f64_array, fmt_opt_f64, fmt_u64_array, Value};

/// Version stamped into every journal's leading `meta` event; bump when
/// the schema of any event changes shape. Version 2 added the `db_swap`
/// event; version 3 added the `shadow` and `promote` events of the
/// online-learning loop.
pub const SCHEMA_VERSION: u64 = 3;

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Journal header: run label and schema version (always the first
    /// deterministic event).
    Meta {
        /// Run label (e.g. the experiment binary name).
        label: String,
        /// Schema version ([`SCHEMA_VERSION`] at write time).
        schema: u64,
    },
    /// Per-generation MOEA statistics, emitted from the master thread of
    /// an optimiser's generation loop.
    GaGen {
        /// Optimiser kind: `hvga`, `nsga2` or `spea2`.
        algo: String,
        /// Caller-assigned run label (e.g. `based-hv-0`).
        label: String,
        /// Generation index (0 = the evaluated initial population).
        gen: usize,
        /// Solutions evaluated this generation.
        evals: usize,
        /// Feasible individuals in the generation.
        feasible: usize,
        /// Current first-front size.
        front: usize,
        /// Current archive (or population) size.
        archive: usize,
        /// Hyper-volume of the archive w.r.t. the reference point, when
        /// the optimiser has one (HvGA only).
        hv: Option<f64>,
    },
    /// A design-time exploration stage finished with this many stored
    /// points.
    DseStage {
        /// Stage name (`based`, `red`).
        stage: String,
        /// Database size after the stage.
        points: usize,
    },
    /// Outcome of one ReD per-seed neighbourhood search (emitted in seed
    /// order from the serial merge).
    RedSeed {
        /// Seed-point index within BaseD.
        index: usize,
        /// Candidates the inner GA produced below the seed's average dRC.
        candidates: usize,
        /// Candidates actually kept after dedup against the database.
        kept: usize,
    },
    /// One Monte-Carlo prior-training episode (emitted in episode order
    /// from the serial value-update loop).
    Episode {
        /// Global episode index.
        index: u64,
        /// Steps (QoS events) in the episode.
        steps: usize,
        /// Discounted return of the episode's trajectory.
        ret: f64,
    },
    /// A run-time simulation starts.
    SimStart {
        /// Simulation label (unique within the journal).
        label: String,
        /// Stored design points the policy adapts over.
        points: usize,
        /// Event-stream RNG seed.
        seed: u64,
    },
    /// One agent adaptation decision (paper Algorithm 1 / §4.3).
    Decision {
        /// Event index within the enclosing simulation (1-based).
        event: usize,
        /// Simulated cycle of the QoS change (logical clock, not wall
        /// time).
        cycle: f64,
        /// Size of the feasible stored-point set for the new requirement.
        feasible: usize,
        /// Active point before the decision.
        from: usize,
        /// Active point after the decision.
        to: usize,
        /// Reconfiguration cost paid.
        drc: f64,
        /// Winning `RET` score, when the policy exposes one (uRA/AuRA).
        score: Option<f64>,
        /// The policy's `p_RC` modulation parameter, when it has one.
        p_rc: Option<f64>,
        /// `true` when no stored point satisfied the requirement.
        violated: bool,
    },
    /// A run-time simulation finished.
    SimEnd {
        /// Simulation label (matches the `sim_start`).
        label: String,
        /// QoS-change events processed.
        events: usize,
        /// Events that moved the operating point.
        reconfigurations: usize,
        /// Events with no feasible stored point.
        violations: usize,
        /// Sum of paid reconfiguration costs.
        total_drc: f64,
    },
    /// Tally of one Monte-Carlo fault-injection campaign (emitted after
    /// the chunk-ordered reduction).
    Inject {
        /// Campaign label.
        label: String,
        /// Injected trials.
        trials: u64,
        /// Trials whose error escaped to the task output.
        errors: u64,
        /// Estimated error probability.
        err_prob: f64,
    },
    /// One injected-or-absorbed fault on the serve path: which layer it
    /// hit, what kind it was, and which degradation-ladder rung absorbed
    /// it. Emitted serially from collected outcomes, so fault journals are
    /// bit-identical across thread counts like every deterministic event.
    Fault {
        /// Campaign-cell or run label the fault belongs to.
        label: String,
        /// Layer the fault was injected at: `snapshot`, `trace` or
        /// `decision`.
        layer: String,
        /// Fault kind (`bitflip`, `truncate`, `malformed`, `reorder`,
        /// `budget`, `policy`, `infeasible`, …).
        kind: String,
        /// Affected tenant name (empty for fleet-wide load faults).
        tenant: String,
        /// 1-based event ordinal within the tenant's stream (0 for
        /// load-time faults).
        event: usize,
        /// Ladder action that absorbed the fault: `retry`, `skip`, `lkg`,
        /// `baseline`, `hold` or `quarantine`.
        action: String,
    },
    /// A tenant's database was hot-swapped (or the swap was refused)
    /// between decisions on the serve path. Emitted serially in stream
    /// order, so swap journals are bit-identical across thread counts.
    DbSwap {
        /// Run label the swap belongs to.
        label: String,
        /// The tenant whose database was addressed.
        tenant: String,
        /// 1-based ordinal of the last admitted request before the swap
        /// (0 = before any request was served).
        event: usize,
        /// Generation serving before the attempt.
        from_gen: u64,
        /// Generation the command asked for.
        to_gen: u64,
        /// Design points in the database serving *after* the attempt.
        points: usize,
        /// Outcome: `swapped`, `verify-failed`, `unknown-tenant` or
        /// `io-error`.
        status: String,
    },
    /// One scored decision's shadow evaluation: the incumbent and
    /// candidate policies' picks on the same event and each pick's
    /// one-step counterfactual regret. Emitted serially in stream order
    /// right after the matching `decision`, so shadow journals are
    /// bit-identical across thread counts.
    Shadow {
        /// Run label the evaluation belongs to.
        label: String,
        /// The tenant whose decision was shadow-scored.
        tenant: String,
        /// 1-based event ordinal within the tenant's stream.
        event: usize,
        /// Seeded A/B variant: `control` or `treatment`.
        variant: String,
        /// Which table served the pick: `live` or `shadow`.
        serving: String,
        /// The incumbent table's pick.
        live_choice: usize,
        /// The candidate table's pick (after any seeded exploration).
        shadow_choice: usize,
        /// One-step oracle regret of the incumbent's pick (≥ 0).
        live_regret: f64,
        /// One-step oracle regret of the candidate's pick (≥ 0).
        shadow_regret: f64,
    },
    /// A candidate policy was promoted over the incumbent (or the
    /// promotion was refused) between decisions on the serve path.
    /// Emitted serially in stream order like `db_swap`.
    Promote {
        /// Run label the promotion belongs to.
        label: String,
        /// The tenant whose learner was addressed.
        tenant: String,
        /// 1-based ordinal of the last admitted request before the
        /// promotion (0 = before any request was served).
        event: usize,
        /// Total promotions applied to the tenant *after* the attempt.
        promotions: u64,
        /// Outcome: `promoted`, `unknown-tenant` or `no-learner`.
        status: String,
    },
    /// A logical-clock span: a named interval measured in generations,
    /// simulated cycles or episodes — never wall time, so spans are
    /// bit-identical across thread counts.
    Span {
        /// Span label.
        label: String,
        /// Clock domain: `gen`, `cycle` or `episode`.
        clock: String,
        /// Inclusive start on the logical clock.
        start: f64,
        /// Exclusive end on the logical clock.
        end: f64,
    },
    /// A recorder counter at snapshot time.
    Counter {
        /// Metric name.
        name: String,
        /// Accumulated count.
        value: u64,
    },
    /// A recorder gauge at snapshot time.
    Gauge {
        /// Metric name.
        name: String,
        /// Last value set.
        value: f64,
    },
    /// A recorder histogram at snapshot time.
    Histogram {
        /// Metric name.
        name: String,
        /// Upper bucket bounds (bucket `i` counts samples `≤ bounds[i]`;
        /// one overflow bucket follows).
        bounds: Vec<f64>,
        /// Per-bucket sample counts (`bounds.len() + 1` entries).
        counts: Vec<u64>,
        /// Total samples recorded.
        total: u64,
        /// Smallest sample (absent when empty).
        min: Option<f64>,
        /// Largest sample (absent when empty).
        max: Option<f64>,
    },
    /// Worker-pool statistics of one parallel fan-out site
    /// (**non-deterministic**: scheduling decides the per-worker split).
    Pool {
        /// Fan-out site label.
        site: String,
        /// Work items executed.
        items: usize,
        /// Worker threads used.
        workers: usize,
        /// Items executed per worker.
        per_worker: Vec<u64>,
        /// Queue-backlog high-water mark observed at pull time.
        queue_hwm: usize,
    },
    /// A wall-clock measurement (**non-deterministic** by nature; never
    /// part of the deterministic journal section).
    Wall {
        /// Timer label.
        label: String,
        /// Elapsed nanoseconds.
        nanos: u64,
    },
}

impl Event {
    /// The event's `type` tag as written to the journal.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Event::Meta { .. } => "meta",
            Event::GaGen { .. } => "ga_gen",
            Event::DseStage { .. } => "dse_stage",
            Event::RedSeed { .. } => "red_seed",
            Event::Episode { .. } => "episode",
            Event::SimStart { .. } => "sim_start",
            Event::Decision { .. } => "decision",
            Event::SimEnd { .. } => "sim_end",
            Event::Inject { .. } => "inject",
            Event::Fault { .. } => "fault",
            Event::DbSwap { .. } => "db_swap",
            Event::Shadow { .. } => "shadow",
            Event::Promote { .. } => "promote",
            Event::Span { .. } => "span",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Histogram { .. } => "histogram",
            Event::Pool { .. } => "pool",
            Event::Wall { .. } => "wall",
        }
    }

    /// `true` for event kinds that are deterministic across thread counts.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, Event::Pool { .. } | Event::Wall { .. })
    }

    /// Encodes the event as one JSONL line (no trailing newline) with the
    /// given sequence number.
    pub fn to_json_line(&self, seq: u64) -> String {
        let head = format!("{{\"seq\":{seq},\"type\":\"{}\"", self.type_tag());
        let body = match self {
            Event::Meta { label, schema } => {
                format!(",\"label\":{},\"schema\":{schema}", json::escape(label))
            }
            Event::GaGen {
                algo,
                label,
                gen,
                evals,
                feasible,
                front,
                archive,
                hv,
            } => format!(
                ",\"algo\":{},\"label\":{},\"gen\":{gen},\"evals\":{evals},\"feasible\":{feasible},\"front\":{front},\"archive\":{archive},\"hv\":{}",
                json::escape(algo),
                json::escape(label),
                fmt_opt_f64(*hv)
            ),
            Event::DseStage { stage, points } => {
                format!(",\"stage\":{},\"points\":{points}", json::escape(stage))
            }
            Event::RedSeed {
                index,
                candidates,
                kept,
            } => format!(",\"index\":{index},\"candidates\":{candidates},\"kept\":{kept}"),
            Event::Episode { index, steps, ret } => {
                format!(",\"index\":{index},\"steps\":{steps},\"ret\":{}", fmt_f64(*ret))
            }
            Event::SimStart {
                label,
                points,
                seed,
            } => format!(
                ",\"label\":{},\"points\":{points},\"seed\":{seed}",
                json::escape(label)
            ),
            Event::Decision {
                event,
                cycle,
                feasible,
                from,
                to,
                drc,
                score,
                p_rc,
                violated,
            } => format!(
                ",\"event\":{event},\"cycle\":{},\"feasible\":{feasible},\"from\":{from},\"to\":{to},\"drc\":{},\"score\":{},\"p_rc\":{},\"violated\":{violated}",
                fmt_f64(*cycle),
                fmt_f64(*drc),
                fmt_opt_f64(*score),
                fmt_opt_f64(*p_rc)
            ),
            Event::SimEnd {
                label,
                events,
                reconfigurations,
                violations,
                total_drc,
            } => format!(
                ",\"label\":{},\"events\":{events},\"reconfigurations\":{reconfigurations},\"violations\":{violations},\"total_drc\":{}",
                json::escape(label),
                fmt_f64(*total_drc)
            ),
            Event::Inject {
                label,
                trials,
                errors,
                err_prob,
            } => format!(
                ",\"label\":{},\"trials\":{trials},\"errors\":{errors},\"err_prob\":{}",
                json::escape(label),
                fmt_f64(*err_prob)
            ),
            Event::Fault {
                label,
                layer,
                kind,
                tenant,
                event,
                action,
            } => format!(
                ",\"label\":{},\"layer\":{},\"kind\":{},\"tenant\":{},\"event\":{event},\"action\":{}",
                json::escape(label),
                json::escape(layer),
                json::escape(kind),
                json::escape(tenant),
                json::escape(action)
            ),
            Event::DbSwap {
                label,
                tenant,
                event,
                from_gen,
                to_gen,
                points,
                status,
            } => format!(
                ",\"label\":{},\"tenant\":{},\"event\":{event},\"from_gen\":{from_gen},\"to_gen\":{to_gen},\"points\":{points},\"status\":{}",
                json::escape(label),
                json::escape(tenant),
                json::escape(status)
            ),
            Event::Shadow {
                label,
                tenant,
                event,
                variant,
                serving,
                live_choice,
                shadow_choice,
                live_regret,
                shadow_regret,
            } => format!(
                ",\"label\":{},\"tenant\":{},\"event\":{event},\"variant\":{},\"serving\":{},\"live_choice\":{live_choice},\"shadow_choice\":{shadow_choice},\"live_regret\":{},\"shadow_regret\":{}",
                json::escape(label),
                json::escape(tenant),
                json::escape(variant),
                json::escape(serving),
                fmt_f64(*live_regret),
                fmt_f64(*shadow_regret)
            ),
            Event::Promote {
                label,
                tenant,
                event,
                promotions,
                status,
            } => format!(
                ",\"label\":{},\"tenant\":{},\"event\":{event},\"promotions\":{promotions},\"status\":{}",
                json::escape(label),
                json::escape(tenant),
                json::escape(status)
            ),
            Event::Span {
                label,
                clock,
                start,
                end,
            } => format!(
                ",\"label\":{},\"clock\":{},\"start\":{},\"end\":{}",
                json::escape(label),
                json::escape(clock),
                fmt_f64(*start),
                fmt_f64(*end)
            ),
            Event::Counter { name, value } => {
                format!(",\"name\":{},\"value\":{value}", json::escape(name))
            }
            Event::Gauge { name, value } => {
                format!(",\"name\":{},\"value\":{}", json::escape(name), fmt_f64(*value))
            }
            Event::Histogram {
                name,
                bounds,
                counts,
                total,
                min,
                max,
            } => format!(
                ",\"name\":{},\"bounds\":{},\"counts\":{},\"total\":{total},\"min\":{},\"max\":{}",
                json::escape(name),
                fmt_f64_array(bounds),
                fmt_u64_array(counts),
                fmt_opt_f64(*min),
                fmt_opt_f64(*max)
            ),
            Event::Pool {
                site,
                items,
                workers,
                per_worker,
                queue_hwm,
            } => format!(
                ",\"site\":{},\"items\":{items},\"workers\":{workers},\"per_worker\":{},\"queue_hwm\":{queue_hwm}",
                json::escape(site),
                fmt_u64_array(per_worker)
            ),
            Event::Wall { label, nanos } => {
                format!(",\"label\":{},\"nanos\":{nanos}", json::escape(label))
            }
        };
        format!("{head}{body}}}")
    }

    /// Parses one JSONL line produced by [`Event::to_json_line`],
    /// returning the sequence number and the event.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: syntax
    /// errors, a missing/`non-number` `seq`, an unknown `type`, or a
    /// missing/badly typed field.
    pub fn from_json_line(line: &str) -> Result<(u64, Event), String> {
        let v = json::parse(line)?;
        if !matches!(v, Value::Obj(_)) {
            return Err("journal line is not a JSON object".to_string());
        }
        let seq = v
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or("missing or non-integer \"seq\"")?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("missing \"type\"")?;

        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("missing or non-string {k:?}"))
        };
        let usize_field = |k: &str| -> Result<usize, String> {
            v.get(k)
                .and_then(Value::as_usize)
                .ok_or(format!("missing or non-integer {k:?}"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or(format!("missing or non-integer {k:?}"))
        };
        let f64_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or(format!("missing or non-number {k:?}"))
        };
        let opt_f64_field = |k: &str| -> Result<Option<f64>, String> {
            match v.get(k) {
                None => Err(format!("missing {k:?}")),
                Some(Value::Null) => Ok(None),
                Some(x) => x.as_f64().map(Some).ok_or(format!("non-number {k:?}")),
            }
        };
        let bool_field = |k: &str| -> Result<bool, String> {
            v.get(k)
                .and_then(Value::as_bool)
                .ok_or(format!("missing or non-boolean {k:?}"))
        };

        let event = match ty {
            "meta" => Event::Meta {
                label: str_field("label")?,
                schema: u64_field("schema")?,
            },
            "ga_gen" => Event::GaGen {
                algo: str_field("algo")?,
                label: str_field("label")?,
                gen: usize_field("gen")?,
                evals: usize_field("evals")?,
                feasible: usize_field("feasible")?,
                front: usize_field("front")?,
                archive: usize_field("archive")?,
                hv: opt_f64_field("hv")?,
            },
            "dse_stage" => Event::DseStage {
                stage: str_field("stage")?,
                points: usize_field("points")?,
            },
            "red_seed" => Event::RedSeed {
                index: usize_field("index")?,
                candidates: usize_field("candidates")?,
                kept: usize_field("kept")?,
            },
            "episode" => Event::Episode {
                index: u64_field("index")?,
                steps: usize_field("steps")?,
                ret: f64_field("ret")?,
            },
            "sim_start" => Event::SimStart {
                label: str_field("label")?,
                points: usize_field("points")?,
                seed: u64_field("seed")?,
            },
            "decision" => Event::Decision {
                event: usize_field("event")?,
                cycle: f64_field("cycle")?,
                feasible: usize_field("feasible")?,
                from: usize_field("from")?,
                to: usize_field("to")?,
                drc: f64_field("drc")?,
                score: opt_f64_field("score")?,
                p_rc: opt_f64_field("p_rc")?,
                violated: bool_field("violated")?,
            },
            "sim_end" => Event::SimEnd {
                label: str_field("label")?,
                events: usize_field("events")?,
                reconfigurations: usize_field("reconfigurations")?,
                violations: usize_field("violations")?,
                total_drc: f64_field("total_drc")?,
            },
            "inject" => Event::Inject {
                label: str_field("label")?,
                trials: u64_field("trials")?,
                errors: u64_field("errors")?,
                err_prob: f64_field("err_prob")?,
            },
            "fault" => Event::Fault {
                label: str_field("label")?,
                layer: str_field("layer")?,
                kind: str_field("kind")?,
                tenant: str_field("tenant")?,
                event: usize_field("event")?,
                action: str_field("action")?,
            },
            "db_swap" => Event::DbSwap {
                label: str_field("label")?,
                tenant: str_field("tenant")?,
                event: usize_field("event")?,
                from_gen: u64_field("from_gen")?,
                to_gen: u64_field("to_gen")?,
                points: usize_field("points")?,
                status: str_field("status")?,
            },
            "shadow" => Event::Shadow {
                label: str_field("label")?,
                tenant: str_field("tenant")?,
                event: usize_field("event")?,
                variant: str_field("variant")?,
                serving: str_field("serving")?,
                live_choice: usize_field("live_choice")?,
                shadow_choice: usize_field("shadow_choice")?,
                live_regret: f64_field("live_regret")?,
                shadow_regret: f64_field("shadow_regret")?,
            },
            "promote" => Event::Promote {
                label: str_field("label")?,
                tenant: str_field("tenant")?,
                event: usize_field("event")?,
                promotions: u64_field("promotions")?,
                status: str_field("status")?,
            },
            "span" => Event::Span {
                label: str_field("label")?,
                clock: str_field("clock")?,
                start: f64_field("start")?,
                end: f64_field("end")?,
            },
            "counter" => Event::Counter {
                name: str_field("name")?,
                value: u64_field("value")?,
            },
            "gauge" => Event::Gauge {
                name: str_field("name")?,
                value: f64_field("value")?,
            },
            "histogram" => {
                let arr_f64 = |k: &str| -> Result<Vec<f64>, String> {
                    v.get(k)
                        .and_then(Value::as_arr)
                        .ok_or(format!("missing or non-array {k:?}"))?
                        .iter()
                        .map(|x| x.as_f64().ok_or(format!("non-number in {k:?}")))
                        .collect()
                };
                let arr_u64 = |k: &str| -> Result<Vec<u64>, String> {
                    v.get(k)
                        .and_then(Value::as_arr)
                        .ok_or(format!("missing or non-array {k:?}"))?
                        .iter()
                        .map(|x| x.as_u64().ok_or(format!("non-integer in {k:?}")))
                        .collect()
                };
                Event::Histogram {
                    name: str_field("name")?,
                    bounds: arr_f64("bounds")?,
                    counts: arr_u64("counts")?,
                    total: u64_field("total")?,
                    min: opt_f64_field("min")?,
                    max: opt_f64_field("max")?,
                }
            }
            "pool" => {
                let per_worker = v
                    .get("per_worker")
                    .and_then(Value::as_arr)
                    .ok_or("missing or non-array \"per_worker\"")?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .ok_or("non-integer in \"per_worker\"".to_string())
                    })
                    .collect::<Result<Vec<u64>, String>>()?;
                Event::Pool {
                    site: str_field("site")?,
                    items: usize_field("items")?,
                    workers: usize_field("workers")?,
                    per_worker,
                    queue_hwm: usize_field("queue_hwm")?,
                }
            }
            "wall" => Event::Wall {
                label: str_field("label")?,
                nanos: u64_field("nanos")?,
            },
            other => return Err(format!("unknown event type {other:?}")),
        };
        Ok((seq, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::Meta {
                label: "t".into(),
                schema: SCHEMA_VERSION,
            },
            Event::GaGen {
                algo: "hvga".into(),
                label: "based-hv-0".into(),
                gen: 3,
                evals: 24,
                feasible: 20,
                front: 5,
                archive: 5,
                hv: Some(1.25),
            },
            Event::GaGen {
                algo: "nsga2".into(),
                label: "based-nsga2".into(),
                gen: 0,
                evals: 24,
                feasible: 24,
                front: 7,
                archive: 24,
                hv: None,
            },
            Event::DseStage {
                stage: "based".into(),
                points: 12,
            },
            Event::RedSeed {
                index: 2,
                candidates: 4,
                kept: 3,
            },
            Event::Episode {
                index: 7,
                steps: 11,
                ret: -0.5,
            },
            Event::SimStart {
                label: "csp-red".into(),
                points: 14,
                seed: u64::MAX,
            },
            Event::Decision {
                event: 1,
                cycle: 103.25,
                feasible: 4,
                from: 0,
                to: 2,
                drc: 1.5,
                score: Some(0.25),
                p_rc: Some(0.0),
                violated: false,
            },
            Event::SimEnd {
                label: "csp-red".into(),
                events: 200,
                reconfigurations: 50,
                violations: 2,
                total_drc: 123.5,
            },
            Event::Inject {
                label: "jpeg".into(),
                trials: 10_000,
                errors: 12,
                err_prob: 0.0012,
            },
            Event::Fault {
                label: "budget@0.01".into(),
                layer: "decision".into(),
                kind: "budget".into(),
                tenant: "cam0".into(),
                event: 17,
                action: "lkg".into(),
            },
            Event::DbSwap {
                label: "fleet".into(),
                tenant: "cam0".into(),
                event: 42,
                from_gen: 0,
                to_gen: 1,
                points: 128,
                status: "swapped".into(),
            },
            Event::Shadow {
                label: "fleet".into(),
                tenant: "cam0".into(),
                event: 17,
                variant: "treatment".into(),
                serving: "shadow".into(),
                live_choice: 2,
                shadow_choice: 3,
                live_regret: 0.125,
                shadow_regret: 0.0,
            },
            Event::Promote {
                label: "fleet".into(),
                tenant: "cam0".into(),
                event: 42,
                promotions: 1,
                status: "promoted".into(),
            },
            Event::Span {
                label: "based-hv-0".into(),
                clock: "gen".into(),
                start: 0.0,
                end: 12.0,
            },
            Event::Counter {
                name: "sim.events".into(),
                value: 200,
            },
            Event::Gauge {
                name: "db.points".into(),
                value: 14.0,
            },
            Event::Histogram {
                name: "sim.drc".into(),
                bounds: vec![0.0, 1.0, 10.0],
                counts: vec![5, 3, 2, 1],
                total: 11,
                min: Some(0.0),
                max: Some(25.5),
            },
            Event::Pool {
                site: "red.seeds".into(),
                items: 12,
                workers: 4,
                per_worker: vec![3, 3, 3, 3],
                queue_hwm: 12,
            },
            Event::Wall {
                label: "based".into(),
                nanos: 123_456,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_to_identical_bytes() {
        for (i, e) in samples().into_iter().enumerate() {
            let line = e.to_json_line(i as u64);
            let (seq, back) = Event::from_json_line(&line).expect("parses");
            assert_eq!(seq, i as u64);
            assert_eq!(back, e, "event round trip");
            assert_eq!(back.to_json_line(seq), line, "byte round trip");
        }
    }

    #[test]
    fn deterministic_flag_separates_pool_and_wall() {
        for e in samples() {
            let det = e.is_deterministic();
            match e {
                Event::Pool { .. } | Event::Wall { .. } => assert!(!det),
                _ => assert!(det),
            }
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::from_json_line("not json").is_err());
        assert!(Event::from_json_line("{\"type\":\"meta\"}").is_err()); // no seq
        assert!(Event::from_json_line("{\"seq\":0,\"type\":\"nope\"}").is_err());
        assert!(
            Event::from_json_line("{\"seq\":0,\"type\":\"meta\",\"label\":\"x\"}").is_err(),
            "missing schema field"
        );
    }
}
