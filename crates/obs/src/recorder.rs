//! Sharded, thread-safe metrics recorder.
//!
//! Metrics are keyed by `&'static str` names and live in one of 16 shards
//! (FNV-hashed by name) so concurrent workers updating *different* metrics
//! rarely contend on the same lock. All update operations are
//! **commutative** — counter adds, histogram bucket increments, and
//! min/max folds give the same final state regardless of the order worker
//! threads apply them — which is what lets the snapshot be part of the
//! deterministic journal section. Gauges are last-write-wins and therefore
//! must only be set from serial (master-thread) code; the wiring in this
//! workspace follows that rule.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::event::Event;

const SHARDS: usize = 16;

/// One metric's accumulated state.
#[derive(Debug, Clone)]
enum Cell {
    /// Monotone event count.
    Counter(u64),
    /// Last value set (serial writers only).
    Gauge(f64),
    /// Fixed-bucket histogram with running min/max.
    Hist {
        bounds: &'static [f64],
        counts: Vec<u64>,
        total: u64,
        min: f64,
        max: f64,
    },
}

/// Thread-safe recorder for counters, gauges, and fixed-bucket histograms.
///
/// See the module docs for the determinism contract. Obtain snapshots with
/// [`Recorder::snapshot_events`], which sorts metrics by name so the
/// emitted journal lines are order-independent.
pub struct Recorder {
    shards: [Mutex<BTreeMap<&'static str, Cell>>; SHARDS],
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over the metric name; cheap and stable across runs.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    fn with_cell(&self, name: &'static str, default: Cell, f: impl FnOnce(&mut Cell)) {
        let mut shard = self.shards[shard_of(name)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(shard.entry(name).or_insert(default));
    }

    /// Adds `n` to the counter `name` (creating it at zero).
    ///
    /// Commutative: safe to call from worker threads.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        self.with_cell(name, Cell::Counter(0), |cell| {
            if let Cell::Counter(v) = cell {
                *v = v.wrapping_add(n);
            }
        });
    }

    /// Sets the gauge `name` to `value`.
    ///
    /// Last-write-wins: call only from serial (master-thread) code when the
    /// snapshot must be deterministic.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        self.with_cell(name, Cell::Gauge(value), |cell| {
            if let Cell::Gauge(v) = cell {
                *v = value;
            }
        });
    }

    /// Records `value` into the histogram `name` with the given upper
    /// bucket `bounds` (bucket `i` counts samples `≤ bounds[i]`, plus one
    /// overflow bucket). The first caller's `bounds` win; all call sites
    /// for one name must pass the same static slice.
    ///
    /// Commutative: safe to call from worker threads.
    pub fn histogram_record(&self, name: &'static str, bounds: &'static [f64], value: f64) {
        let empty = Cell::Hist {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        self.with_cell(name, empty, |cell| {
            if let Cell::Hist {
                bounds,
                counts,
                total,
                min,
                max,
            } = cell
            {
                let bucket = bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(bounds.len());
                counts[bucket] += 1;
                *total += 1;
                *min = min.min(value);
                *max = max.max(value);
            }
        });
    }

    /// Snapshots every metric as a journal [`Event`], sorted by name.
    pub fn snapshot_events(&self) -> Vec<Event> {
        let mut named: Vec<(&'static str, Cell)> = Vec::new();
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            named.extend(shard.iter().map(|(&k, v)| (k, v.clone())));
        }
        named.sort_by_key(|&(name, _)| name);
        named
            .into_iter()
            .map(|(name, cell)| match cell {
                Cell::Counter(value) => Event::Counter {
                    name: name.to_string(),
                    value,
                },
                Cell::Gauge(value) => Event::Gauge {
                    name: name.to_string(),
                    value,
                },
                Cell::Hist {
                    bounds,
                    counts,
                    total,
                    min,
                    max,
                } => Event::Histogram {
                    name: name.to_string(),
                    bounds: bounds.to_vec(),
                    counts,
                    total,
                    min: (total > 0).then_some(min),
                    max: (total > 0).then_some(max),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorts_by_name() {
        let r = Recorder::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.counter_add("a.first", 3);
        let snap = r.snapshot_events();
        assert_eq!(
            snap,
            vec![
                Event::Counter {
                    name: "a.first".into(),
                    value: 5
                },
                Event::Counter {
                    name: "z.last".into(),
                    value: 1
                },
            ]
        );
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Recorder::new();
        r.gauge_set("db.points", 3.0);
        r.gauge_set("db.points", 14.0);
        assert_eq!(
            r.snapshot_events(),
            vec![Event::Gauge {
                name: "db.points".into(),
                value: 14.0
            }]
        );
    }

    #[test]
    fn histogram_buckets_totals_and_extremes() {
        static BOUNDS: [f64; 3] = [1.0, 10.0, 100.0];
        let r = Recorder::new();
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            r.histogram_record("sim.drc", &BOUNDS, v);
        }
        assert_eq!(
            r.snapshot_events(),
            vec![Event::Histogram {
                name: "sim.drc".into(),
                bounds: BOUNDS.to_vec(),
                counts: vec![2, 1, 1, 1],
                total: 5,
                min: Some(0.5),
                max: Some(500.0),
            }]
        );
    }

    #[test]
    fn single_sample_histogram_pins_both_extremes() {
        static BOUNDS: [f64; 1] = [1.0];
        let r = Recorder::new();
        r.histogram_record("h", &BOUNDS, 2.0);
        assert_eq!(
            r.snapshot_events(),
            vec![Event::Histogram {
                name: "h".into(),
                bounds: BOUNDS.to_vec(),
                counts: vec![0, 1],
                total: 1,
                min: Some(2.0),
                max: Some(2.0),
            }]
        );
    }

    #[test]
    fn updates_from_many_threads_converge() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        r.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(
            r.snapshot_events(),
            vec![Event::Counter {
                name: "hits".into(),
                value: 8000
            }]
        );
    }
}
