//! `clr-obs`: deterministic observability for the hybrid CLR flow.
//!
//! The workspace-wide invariant is that results are **bit-identical at any
//! `CLR_THREADS` setting**; this crate extends that invariant to
//! observability data. It provides three layers:
//!
//! 1. A sharded, thread-safe [`Recorder`] for counters, gauges, and
//!    fixed-bucket histograms keyed by static names (see
//!    [`recorder`] for the commutativity rules that keep snapshots
//!    deterministic).
//! 2. Logical-clock [`Event::Span`]s measured in generation indices,
//!    simulated cycles, or episode numbers — never wall time. Wall-clock
//!    timings exist too ([`Obs::wall_timer`]) but are quarantined in a
//!    separate non-deterministic journal section.
//! 3. A structured event journal ([`Event`]) exported as JSONL and as
//!    Chrome `chrome://tracing` JSON.
//!
//! ## Determinism contract
//!
//! The journal has two sections. The **deterministic** section may only be
//! appended to from serial (master-thread) code — MOEA generation loops,
//! the ReD seed-order merge, the AuRA serial value-update loop, the
//! simulation event loop, and post-aggregation campaign tallies — so its
//! rendered bytes are identical across thread counts (CI byte-compares
//! `CLR_THREADS=1` vs `8`). The **non-deterministic** section holds
//! worker-pool statistics and wall-clock timings, which legitimately vary
//! between runs, and is exported to a separate `*.nondet.jsonl` file.
//!
//! ## Usage
//!
//! ```
//! use clr_obs::{Obs, ObsMode, Event};
//!
//! let obs = Obs::new(ObsMode::Json);
//! obs.counter_add("sim.events", 1);
//! obs.emit(Event::DseStage { stage: "based".into(), points: 12 });
//! let jsonl = obs.render_det_jsonl();
//! assert!(jsonl.lines().count() >= 2); // meta header + the stage event
//! ```
//!
//! A disabled handle ([`Obs::off`]) makes every call a cheap no-op (one
//! `Option` check), which is what keeps instrumented hot paths within the
//! <5 % overhead budget when observability is off.

pub mod event;
mod json;
pub mod recorder;
pub mod telemetry;

pub use event::{Event, SCHEMA_VERSION};
pub use json::{parse as parse_json, Value};
pub use recorder::Recorder;
pub use telemetry::{
    BitWindow, QuantileHistogram, Ring, RollingWindow, TelemetrySnapshot, TenantTelemetry,
    WindowStat, TELEMETRY_SCHEMA_VERSION,
};

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Environment variable selecting the observability mode
/// (`off` | `json` | `chrome`).
pub const OBS_ENV: &str = "CLR_OBS";

/// Output mode of an enabled [`Obs`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Observability disabled; all calls are no-ops.
    Off,
    /// Journal exported as JSONL (deterministic + non-deterministic files).
    Json,
    /// JSONL plus a Chrome `chrome://tracing` JSON trace.
    Chrome,
}

#[derive(Debug, Default)]
struct JournalState {
    det: Vec<Event>,
    nondet: Vec<Event>,
}

#[derive(Debug)]
struct ObsInner {
    mode: ObsMode,
    recorder: Recorder,
    journal: Mutex<JournalState>,
}

/// Cheaply clonable observability handle.
///
/// `Obs` is either *off* (all methods are no-ops; see [`Obs::off`]) or
/// holds shared journal/recorder state behind an [`Arc`] — clones observe
/// into the same journal. Thread it through the flow by value; cloning is
/// one atomic increment.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<ObsInner>>);

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Obs").field(&self.mode()).finish()
    }
}

impl Obs {
    /// A disabled handle: every method is a cheap no-op.
    pub fn off() -> Self {
        Obs(None)
    }

    /// An enabled handle in the given mode ([`ObsMode::Off`] yields a
    /// disabled handle).
    pub fn new(mode: ObsMode) -> Self {
        match mode {
            ObsMode::Off => Obs(None),
            mode => Obs(Some(Arc::new(ObsInner {
                mode,
                recorder: Recorder::new(),
                journal: Mutex::new(JournalState::default()),
            }))),
        }
    }

    /// Builds a handle from the [`OBS_ENV`] environment variable:
    /// `json` / `chrome` enable it, anything else (including unset) is off.
    pub fn from_env() -> Self {
        match std::env::var(OBS_ENV).as_deref() {
            Ok("json") => Obs::new(ObsMode::Json),
            Ok("chrome") => Obs::new(ObsMode::Chrome),
            _ => Obs::off(),
        }
    }

    /// `true` when the handle records anything at all.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The handle's mode ([`ObsMode::Off`] when disabled).
    pub fn mode(&self) -> ObsMode {
        self.0.as_ref().map_or(ObsMode::Off, |inner| inner.mode)
    }

    /// Appends `event` to the **deterministic** journal section.
    ///
    /// Call only from serial (master-thread) code; the sequence number is
    /// the append index, so worker-thread emission would make the journal
    /// depend on scheduling. Emitting a [`Event::Pool`] or [`Event::Wall`]
    /// here is a contract violation caught by the `clr-verify` journal
    /// lint.
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.0 {
            inner
                .journal
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .det
                .push(event);
        }
    }

    /// Appends `event` to the **non-deterministic** journal section
    /// (worker-pool stats, wall-clock timings).
    pub fn emit_nondet(&self, event: Event) {
        if let Some(inner) = &self.0 {
            inner
                .journal
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .nondet
                .push(event);
        }
    }

    /// Adds `n` to counter `name` (no-op when disabled). Safe from any
    /// thread: counter adds commute.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.0 {
            inner.recorder.counter_add(name, n);
        }
    }

    /// Sets gauge `name` (no-op when disabled). Serial code only — gauges
    /// are last-write-wins.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner.recorder.gauge_set(name, value);
        }
    }

    /// Records `value` into histogram `name` (no-op when disabled). Safe
    /// from any thread: bucket increments and min/max folds commute.
    pub fn histogram_record(&self, name: &'static str, bounds: &'static [f64], value: f64) {
        if let Some(inner) = &self.0 {
            inner.recorder.histogram_record(name, bounds, value);
        }
    }

    /// Starts a wall-clock timer that emits a [`Event::Wall`] into the
    /// non-deterministic section when dropped. Inert when disabled.
    pub fn wall_timer(&self, label: &str) -> WallTimer {
        // clr-audit: nondet(begin) wall timers feed only the journal's nondeterministic section
        WallTimer {
            obs: self.clone(),
            label: label.to_string(),
            start: self.enabled().then(Instant::now),
        }
        // clr-audit: nondet(end)
    }

    /// The deterministic events emitted so far (for tests).
    pub fn det_events(&self) -> Vec<Event> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner
                .journal
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .det
                .clone()
        })
    }

    /// Renders the deterministic journal section as JSONL: a `meta`
    /// header, every deterministic event in emission order, then the
    /// recorder snapshot sorted by metric name. Returns an empty string
    /// when disabled.
    pub fn render_det_jsonl(&self) -> String {
        self.render_det_jsonl_labeled("run")
    }

    /// [`Obs::render_det_jsonl`] with an explicit run label in the `meta`
    /// header.
    pub fn render_det_jsonl_labeled(&self, label: &str) -> String {
        let Some(inner) = &self.0 else {
            return String::new();
        };
        let journal = inner
            .journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        let mut seq: u64 = 0;
        let push = |out: &mut String, e: &Event, seq: &mut u64| {
            out.push_str(&e.to_json_line(*seq));
            out.push('\n');
            *seq += 1;
        };
        let meta = Event::Meta {
            label: label.to_string(),
            schema: SCHEMA_VERSION,
        };
        push(&mut out, &meta, &mut seq);
        for e in &journal.det {
            push(&mut out, e, &mut seq);
        }
        for e in inner.recorder.snapshot_events() {
            push(&mut out, &e, &mut seq);
        }
        out
    }

    /// Renders the non-deterministic journal section (pool stats, wall
    /// timings) as JSONL. Empty when disabled or nothing was recorded.
    pub fn render_nondet_jsonl(&self) -> String {
        let Some(inner) = &self.0 else {
            return String::new();
        };
        let journal = inner
            .journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for (seq, e) in journal.nondet.iter().enumerate() {
            out.push_str(&e.to_json_line(seq as u64));
            out.push('\n');
        }
        out
    }

    /// Renders the deterministic journal as a Chrome `chrome://tracing`
    /// document (`{"traceEvents": [...]}`): spans and GA generations
    /// become complete (`"X"`) events on the logical clock, decisions
    /// become instant (`"i"`) events.
    pub fn render_chrome(&self) -> String {
        let Some(inner) = &self.0 else {
            return String::new();
        };
        let journal = inner
            .journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut items: Vec<String> = Vec::new();
        for e in &journal.det {
            match e {
                Event::Span {
                    label,
                    clock,
                    start,
                    end,
                } => items.push(format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{}}}",
                    json::escape(label),
                    json::escape(clock),
                    json::fmt_f64(*start),
                    json::fmt_f64((end - start).max(0.0))
                )),
                Event::GaGen {
                    algo, label, gen, ..
                } => items.push(format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":{gen},\"dur\":1}}",
                    json::escape(&format!("{label}/g{gen}")),
                    json::escape(algo)
                )),
                Event::Decision { cycle, to, .. } => items.push(format!(
                    "{{\"name\":{},\"cat\":\"decision\",\"ph\":\"i\",\"pid\":1,\"tid\":3,\"ts\":{},\"s\":\"t\"}}",
                    json::escape(&format!("to{to}")),
                    json::fmt_f64(*cycle)
                )),
                _ => {}
            }
        }
        format!("{{\"traceEvents\":[{}]}}\n", items.join(","))
    }

    /// Writes the journal files into `dir` using `name` as the file stem:
    /// `<name>.obs.jsonl` (deterministic section), `<name>.obs.nondet.jsonl`
    /// (only when non-deterministic events exist), and `<name>.trace.json`
    /// (Chrome mode only). Returns the paths written; none when disabled.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating `dir` or writing files.
    pub fn export(&self, dir: &str, name: &str) -> std::io::Result<Vec<std::path::PathBuf>> {
        if !self.enabled() {
            return Ok(Vec::new());
        }
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let det_path = std::path::Path::new(dir).join(format!("{name}.obs.jsonl"));
        write_file(&det_path, &self.render_det_jsonl_labeled(name))?;
        written.push(det_path);
        let nondet = self.render_nondet_jsonl();
        if !nondet.is_empty() {
            let path = std::path::Path::new(dir).join(format!("{name}.obs.nondet.jsonl"));
            write_file(&path, &nondet)?;
            written.push(path);
        }
        if self.mode() == ObsMode::Chrome {
            let path = std::path::Path::new(dir).join(format!("{name}.trace.json"));
            write_file(&path, &self.render_chrome())?;
            written.push(path);
        }
        Ok(written)
    }
}

fn write_file(path: &std::path::Path, content: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(content.as_bytes())
}

/// Wall-clock timer returned by [`Obs::wall_timer`]; emits a
/// [`Event::Wall`] into the non-deterministic journal section on drop.
#[derive(Debug)]
pub struct WallTimer {
    obs: Obs,
    label: String,
    start: Option<Instant>,
}

impl Drop for WallTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.obs.emit_nondet(Event::Wall {
                label: std::mem::take(&mut self.label),
                nanos,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        assert_eq!(obs.mode(), ObsMode::Off);
        obs.counter_add("x", 1);
        obs.emit(Event::DseStage {
            stage: "based".into(),
            points: 1,
        });
        drop(obs.wall_timer("t"));
        assert!(obs.render_det_jsonl().is_empty());
        assert!(obs.render_nondet_jsonl().is_empty());
        assert!(obs.det_events().is_empty());
    }

    #[test]
    fn new_with_off_mode_is_disabled() {
        assert!(!Obs::new(ObsMode::Off).enabled());
    }

    #[test]
    fn clones_share_the_journal() {
        let obs = Obs::new(ObsMode::Json);
        let clone = obs.clone();
        clone.emit(Event::DseStage {
            stage: "based".into(),
            points: 3,
        });
        assert_eq!(obs.det_events().len(), 1);
    }

    #[test]
    fn det_jsonl_has_meta_header_events_then_sorted_snapshot() {
        let obs = Obs::new(ObsMode::Json);
        obs.emit(Event::DseStage {
            stage: "based".into(),
            points: 3,
        });
        obs.counter_add("z", 1);
        obs.gauge_set("a", 2.0);
        let text = obs.render_det_jsonl_labeled("t");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"type\":\"meta\",\"label\":\"t\",\"schema\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"type\":\"dse_stage\",\"stage\":\"based\",\"points\":3}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\":2,\"type\":\"gauge\",\"name\":\"a\",\"value\":2}"
        );
        assert_eq!(
            lines[3],
            "{\"seq\":3,\"type\":\"counter\",\"name\":\"z\",\"value\":1}"
        );
        // Every line parses back and the seq numbers are strictly monotone.
        for (i, line) in lines.iter().enumerate() {
            let (seq, _) = Event::from_json_line(line).unwrap();
            assert_eq!(seq, i as u64);
        }
    }

    #[test]
    fn wall_timer_lands_in_the_nondet_section_only() {
        let obs = Obs::new(ObsMode::Json);
        drop(obs.wall_timer("stage"));
        assert!(obs.det_events().is_empty());
        let nondet = obs.render_nondet_jsonl();
        let (_, e) = Event::from_json_line(nondet.trim()).unwrap();
        assert!(matches!(e, Event::Wall { ref label, .. } if label == "stage"));
    }

    #[test]
    fn chrome_rendering_wraps_trace_events() {
        let obs = Obs::new(ObsMode::Chrome);
        obs.emit(Event::Span {
            label: "based".into(),
            clock: "gen".into(),
            start: 0.0,
            end: 12.0,
        });
        obs.emit(Event::Decision {
            event: 1,
            cycle: 10.5,
            feasible: 2,
            from: 0,
            to: 1,
            drc: 0.5,
            score: None,
            p_rc: None,
            violated: false,
        });
        let doc = obs.render_chrome();
        let v = parse_json(doc.trim()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn export_writes_det_and_chrome_files() {
        let dir = std::env::temp_dir().join("clr-obs-test-export");
        let dir = dir.to_str().unwrap();
        let obs = Obs::new(ObsMode::Chrome);
        obs.emit(Event::DseStage {
            stage: "based".into(),
            points: 1,
        });
        drop(obs.wall_timer("w"));
        let written = obs.export(dir, "unit").unwrap();
        assert_eq!(written.len(), 3);
        let det = std::fs::read_to_string(&written[0]).unwrap();
        assert_eq!(det, obs.render_det_jsonl_labeled("unit"));
        for p in &written {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn identical_emission_renders_identical_bytes() {
        let make = || {
            let obs = Obs::new(ObsMode::Json);
            for g in 0..3 {
                obs.emit(Event::GaGen {
                    algo: "hvga".into(),
                    label: "l".into(),
                    gen: g,
                    evals: 24,
                    feasible: 20,
                    front: 4,
                    archive: 4,
                    hv: Some(1.0 + g as f64),
                });
            }
            obs.counter_add("c", 7);
            obs.render_det_jsonl()
        };
        assert_eq!(make(), make());
    }
}
