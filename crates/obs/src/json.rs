//! Minimal hand-rolled JSON support: a deterministic writer (fixed key
//! order, shortest-round-trip floats) and a small recursive-descent parser
//! used by the journal round-trip lint.
//!
//! The workspace has no crates.io access, so this module carries exactly
//! the JSON surface the observability layer needs — nothing external is
//! pulled in and the byte-level output is fully under our control, which
//! is what makes journals byte-comparable across thread counts.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers keep their **raw token** instead of an eagerly converted `f64`,
/// so 64-bit integers (e.g. RNG seeds) survive a parse → re-encode round
/// trip without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw source token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an `f64` (numbers only; `null` is `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as a `u64` (integer numbers only, exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as a `usize` (integer numbers only, exact).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes and quotes `s` as a JSON string token.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` deterministically: Rust's shortest-round-trip
/// `Display` for finite values, `null` otherwise (the journal schema
/// treats non-finite measurements as absent).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional `f64` (`None` → `null`).
pub fn fmt_opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_string(), fmt_f64)
}

/// Formats a slice of `f64` as a JSON array.
pub fn fmt_f64_array(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|&x| fmt_f64(x)).collect();
    format!("[{}]", items.join(","))
}

/// Formats a slice of `u64` as a JSON array.
pub fn fmt_u64_array(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser {
        chars: &bytes,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected '{c}', found '{got}' at {}", self.pos)),
            None => Err(format!("expected '{c}', found end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected character '{c}' at {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Value::Obj(fields)),
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Value::Arr(items)),
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or("truncated \\u escape")?;
                            let d = c.to_digit(16).ok_or("bad hex digit in \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some('-' | '+' | '.' | 'e' | 'E' | '0'..='9')) {
            self.pos += 1;
        }
        let raw: String = self.chars[start..self.pos].iter().collect();
        raw.parse::<f64>()
            .map_err(|_| format!("bad number token {raw:?}"))?;
        Ok(Value::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-2.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX;
        let v = parse(&format!("{{\"seed\":{big}}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote \" backslash \\ tab \t unicode \u{1}";
        let v = parse(&escape(s)).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        let x = 1.0 / 3.0;
        assert_eq!(fmt_f64(x).parse::<f64>().unwrap(), x);
    }
}
