//! Deterministic telemetry primitives: log-bucketed quantile
//! histograms, event-indexed rolling windows, a bounded ring, and the
//! schema-versioned [`TelemetrySnapshot`] v1 codec.
//!
//! Everything here rides the logical clock. Histograms bucket values by
//! their IEEE-754 binary exponent (fixed power-of-two bucket bounds, no
//! float `log`), windows advance one slot per *event* (never wall
//! time), and the snapshot encoder emits a single canonical JSON line —
//! sorted keys, sparse bucket pairs, shortest round-trip floats — so a
//! snapshot taken at `CLR_THREADS=1` and one taken at `CLR_THREADS=8`
//! are byte-identical whenever the same events were observed in the
//! same per-tenant order.

use crate::json::{self, Value};

/// Version stamp written into every [`TelemetrySnapshot`]; decoders
/// reject other versions. Version 2 added the per-tenant active db
/// `generation`.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 2;

/// Fixed bucket count of every [`QuantileHistogram`]: one bucket per
/// binary exponent from `2^-32` up to `2^63`, with underflow clamped
/// into bucket 0 and overflow into the last bucket.
pub const HIST_BUCKETS: usize = 96;

/// Biased IEEE-754 exponent field that maps to bucket 0 (`2^-32`).
const BUCKET_ZERO_EXP_FIELD: u64 = 991;

// ---------------------------------------------------------------------------
// Quantile histogram
// ---------------------------------------------------------------------------

/// A log-bucketed histogram with fixed power-of-two bucket bounds.
///
/// Bucket `b` holds values in `[2^(b-32), 2^(b-31))`; values `<= 0`
/// (and NaN) clamp into bucket 0, `+inf` into the last bucket. The
/// exact observed minimum and maximum are tracked alongside, so
/// reported quantiles never leave the observed range. Recording is two
/// integer ops and two float compares — cheap enough for the serve hot
/// path.
///
/// # Examples
///
/// ```
/// use clr_obs::telemetry::QuantileHistogram;
/// let mut h = QuantileHistogram::new();
/// for v in [1.0, 2.0, 3.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.quantile(1.0), Some(100.0));
/// assert!(h.quantile(0.5).unwrap() <= 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileHistogram {
    /// Inline (not heap-boxed) so a histogram — and anything embedding
    /// one, like a per-tenant health registry — is one contiguous
    /// block: recording touches no pointer indirection.
    counts: [u64; HIST_BUCKETS],
    total: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket a value falls into, from its binary exponent.
    #[inline]
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0; // zero, negative and NaN all clamp to the lowest bucket
        }
        let field = (v.to_bits() >> 52) & 0x7ff;
        usize::try_from(field.saturating_sub(BUCKET_ZERO_EXP_FIELD))
            .unwrap_or(0)
            .min(HIST_BUCKETS - 1)
    }

    /// The exclusive upper bound of a bucket — the exact power of two
    /// `2^(index - 31)`, assembled from the IEEE-754 bits.
    pub fn bucket_upper_bound(index: usize) -> f64 {
        let biased =
            u64::try_from(index.min(HIST_BUCKETS - 1)).unwrap_or(0) + BUCKET_ZERO_EXP_FIELD + 1;
        f64::from_bits(biased << 52)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations recorded (as stamped; decoders keep the
    /// stored value even when inconsistent so lints can flag it).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact observed minimum.
    pub fn min_value(&self) -> Option<f64> {
        (self.min != f64::INFINITY).then_some(self.min)
    }

    /// The exact observed maximum.
    pub fn max_value(&self) -> Option<f64> {
        Some(self.max).filter(|m| *m != f64::NEG_INFINITY)
    }

    /// The dense per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the rank-`ceil(q * n)` observation, clamped
    /// into the exact observed `[min, max]` range (so `quantile(1.0)`
    /// is the exact maximum).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n: u64 = self.counts.iter().sum();
        if n == 0 {
            return None;
        }
        let rank_f = (q.clamp(0.0, 1.0) * u64_to_f64(n)).ceil().max(1.0);
        let rank = if rank_f >= u64_to_f64(n) {
            n
        } else {
            f64_to_u64(rank_f)
        };
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(Self::bucket_upper_bound(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn from_parts(
        total: u64,
        min: Option<f64>,
        max: Option<f64>,
        sparse: &[(usize, u64)],
    ) -> Result<Self, String> {
        let mut h = Self::new();
        h.total = total;
        h.min = min.unwrap_or(f64::INFINITY);
        h.max = max.unwrap_or(f64::NEG_INFINITY);
        let mut prev: Option<usize> = None;
        for &(idx, count) in sparse {
            if idx >= HIST_BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            if prev.is_some_and(|p| p >= idx) {
                return Err("bucket indices not strictly increasing".to_string());
            }
            prev = Some(idx);
            h.counts[idx] = count;
        }
        Ok(h)
    }
}

/// Exact u64 → f64 (values here are event counts, far below 2^53).
fn u64_to_f64(n: u64) -> f64 {
    n as f64
}

/// Truncating f64 → u64 for a value already known to be in range.
fn f64_to_u64(x: f64) -> u64 {
    x as u64
}

// ---------------------------------------------------------------------------
// Rolling window
// ---------------------------------------------------------------------------

/// Frozen view of a [`RollingWindow`], as carried in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Window capacity (slots).
    pub window: u64,
    /// Total values ever pushed (the logical-clock index).
    pub index: u64,
    /// Values currently held: `min(index, window)`.
    pub len: u64,
    /// Sum of the held values, accumulated oldest → newest.
    pub sum: f64,
}

impl WindowStat {
    /// Mean of the held values.
    pub fn mean(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.sum / u64_to_f64(self.len))
        }
    }
}

/// An event-indexed rolling window: the last `capacity` values pushed,
/// with rates computed over events — never wall time. Summation runs
/// oldest → newest, so the sum is a pure function of the push sequence.
///
/// # Examples
///
/// ```
/// use clr_obs::telemetry::RollingWindow;
/// let mut w = RollingWindow::new(3);
/// for v in [1.0, 0.0, 1.0, 1.0] {
///     w.push(v);
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.index(), 4);
/// assert_eq!(w.sum(), 2.0); // the first push rolled out
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RollingWindow {
    buf: Vec<f64>,
    cap: usize,
    head: usize,
    index: u64,
}

impl RollingWindow {
    /// Creates a window holding the last `capacity` (>= 1) values.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            index: 0,
        }
    }

    /// Pushes one value, evicting the oldest once full.
    #[inline]
    pub fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
        self.index += 1;
    }

    /// Values currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first push.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total values ever pushed.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Sum of the held values, oldest → newest.
    pub fn sum(&self) -> f64 {
        let (tail, hd) = self.buf.split_at(self.head.min(self.buf.len()));
        let mut sum = 0.0;
        for v in hd.iter().chain(tail) {
            sum += *v;
        }
        sum
    }

    /// Mean of the held values.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum() / u64_to_f64(u64::try_from(self.buf.len()).unwrap_or(u64::MAX)))
        }
    }

    /// Freezes the window into its snapshot form.
    pub fn stat(&self) -> WindowStat {
        WindowStat {
            window: u64::try_from(self.cap).unwrap_or(u64::MAX),
            index: self.index,
            len: u64::try_from(self.buf.len()).unwrap_or(u64::MAX),
            sum: self.sum(),
        }
    }
}

/// A 0/1 indicator window over the last `capacity` (≤ 64) events,
/// packed into one machine word: a push is a shift-and-or, the sum is a
/// popcount. This is the hot-path carrier behind the per-tenant fault
/// and violation rates — it produces exactly the [`WindowStat`] a
/// [`RollingWindow`] fed the same 0/1 values would, without touching a
/// heap buffer per event.
///
/// # Examples
///
/// ```
/// use clr_obs::telemetry::BitWindow;
/// let mut w = BitWindow::new(3);
/// for hit in [true, false, true, true] {
///     w.push(hit);
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.index(), 4);
/// assert_eq!(w.sum(), 2); // the first push rolled out
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitWindow {
    bits: u64,
    cap: u32,
    index: u64,
}

impl BitWindow {
    /// Creates a window over the last `capacity` events, clamped into
    /// `1..=64` (one machine word).
    pub fn new(capacity: usize) -> Self {
        Self {
            bits: 0,
            cap: u32::try_from(capacity.clamp(1, 64)).unwrap_or(64),
            index: 0,
        }
    }

    /// Pushes one indicator, evicting the oldest once full.
    #[inline]
    pub fn push(&mut self, hit: bool) {
        self.bits = (self.bits << 1) | u64::from(hit);
        self.index += 1;
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        usize::try_from(self.cap).unwrap_or(usize::MAX)
    }

    /// Total indicators ever pushed.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Indicators currently held: `min(index, capacity)`.
    pub fn len(&self) -> u64 {
        self.index.min(u64::from(self.cap))
    }

    /// `true` before the first push.
    pub fn is_empty(&self) -> bool {
        self.index == 0
    }

    /// Count of set indicators among the held ones.
    pub fn sum(&self) -> u64 {
        let len = self.len();
        let mask = if len >= 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        u64::from((self.bits & mask).count_ones())
    }

    /// Mean of the held indicators (the windowed rate).
    pub fn mean(&self) -> Option<f64> {
        let len = self.len();
        if len == 0 {
            None
        } else {
            Some(u64_to_f64(self.sum()) / u64_to_f64(len))
        }
    }

    /// Freezes the window into its snapshot form.
    pub fn stat(&self) -> WindowStat {
        WindowStat {
            window: u64::from(self.cap),
            index: self.index,
            len: self.len(),
            sum: u64_to_f64(self.sum()),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded ring
// ---------------------------------------------------------------------------

/// A bounded ring keeping the last `capacity` pushed items — the
/// flight-recorder container. Iteration yields oldest → newest.
#[derive(Debug, Clone, PartialEq)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    head: usize,
    pushed: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding the last `capacity` (>= 1) items.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            pushed: 0,
        }
    }

    /// Pushes one item, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.cap;
        }
        self.pushed += 1;
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first push.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Iterates the held items, oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let split = self.head.min(self.buf.len());
        let (tail, hd) = self.buf.split_at(split);
        hd.iter().chain(tail)
    }
}

// ---------------------------------------------------------------------------
// Snapshot model
// ---------------------------------------------------------------------------

/// One tenant's telemetry in a fleet snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTelemetry {
    /// Tenant name.
    pub name: String,
    /// Events observed (decisions recorded, served or not).
    pub events: u64,
    /// Current ladder rung tag (`normal`, `lkg`, `baseline`, `hold`,
    /// `quarantined`).
    pub status: String,
    /// Active snapshot-store generation of the tenant's database (0 for
    /// an unlineaged CLRSNAP1 load).
    pub generation: u64,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named rolling-window stats, sorted by name.
    pub windows: Vec<(String, WindowStat)>,
    /// Named histograms, sorted by name.
    pub histograms: Vec<(String, QuantileHistogram)>,
    /// Flight-recorder tail: pre-rendered decision CSV rows, oldest →
    /// newest. Empty unless requested or the tenant entered quarantine.
    pub flight: Vec<String>,
}

impl TenantTelemetry {
    /// Mean of a named window, when present and non-empty.
    pub fn window_mean(&self, name: &str) -> Option<f64> {
        self.windows
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, s)| s.mean())
    }

    /// A named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&QuantileHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// A named counter's value, when present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A schema-versioned fleet telemetry snapshot (v1). Encodes to one
/// canonical JSON line; `from_json(to_json(s)) == s` and re-encoding a
/// decoded snapshot reproduces the input bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Always [`TELEMETRY_SCHEMA_VERSION`] when produced by this build.
    pub schema: u64,
    /// Snapshot label (e.g. `fleet`, `journal`).
    pub label: String,
    /// Fleet-wide events observed (sum of tenant events).
    pub events: u64,
    /// Per-unknown-tenant dropped-event counts, sorted by name.
    pub dropped: Vec<(String, u64)>,
    /// Per-tenant telemetry, in fleet (seating) order.
    pub tenants: Vec<TenantTelemetry>,
}

impl TelemetrySnapshot {
    /// Encodes the snapshot to its canonical single-line JSON form (no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.tenants.len() * 512);
        out.push_str(&format!(
            "{{\"schema\":{},\"label\":{},\"events\":{},\"dropped\":[",
            self.schema,
            json::escape(&self.label),
            self.events
        ));
        for (i, (name, n)) in self.dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", json::escape(name), n));
        }
        out.push_str("],\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            encode_tenant(&mut out, t);
        }
        out.push_str("]}");
        out
    }

    /// Decodes a snapshot from its JSON line, rejecting structural
    /// damage and unknown schema versions. Semantic inconsistencies
    /// (histogram totals vs. bucket sums, window lengths) are kept as
    /// stored so `clr-verify stats` can flag them.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text.trim_end_matches(['\n', '\r']))?;
        let schema = req_u64(&v, "schema")?;
        if schema != TELEMETRY_SCHEMA_VERSION {
            return Err(format!(
                "unsupported telemetry schema {schema} (this build speaks {TELEMETRY_SCHEMA_VERSION})"
            ));
        }
        let label = req_str(&v, "label")?.to_string();
        let events = req_u64(&v, "events")?;
        let mut dropped = Vec::new();
        for (i, pair) in req_arr(&v, "dropped")?.iter().enumerate() {
            let p = pair
                .as_arr()
                .ok_or_else(|| format!("dropped[{i}]: expected [name, count]"))?;
            match p {
                [name, count] => dropped.push((
                    name.as_str()
                        .ok_or_else(|| format!("dropped[{i}]: name not a string"))?
                        .to_string(),
                    count
                        .as_u64()
                        .ok_or_else(|| format!("dropped[{i}]: count not a u64"))?,
                )),
                _ => return Err(format!("dropped[{i}]: expected a 2-element pair")),
            }
        }
        let mut tenants = Vec::new();
        for (i, tv) in req_arr(&v, "tenants")?.iter().enumerate() {
            tenants.push(decode_tenant(tv).map_err(|e| format!("tenants[{i}]: {e}"))?);
        }
        Ok(Self {
            schema,
            label,
            events,
            dropped,
            tenants,
        })
    }

    /// Finds a tenant entry by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantTelemetry> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

fn encode_tenant(out: &mut String, t: &TenantTelemetry) {
    out.push_str(&format!(
        "{{\"name\":{},\"events\":{},\"status\":{},\"generation\":{},\"counters\":[",
        json::escape(&t.name),
        t.events,
        json::escape(&t.status),
        t.generation
    ));
    for (i, (name, v)) in t.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{}]", json::escape(name), v));
    }
    out.push_str("],\"windows\":[");
    for (i, (name, s)) in t.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},{{\"window\":{},\"index\":{},\"len\":{},\"sum\":{}}}]",
            json::escape(name),
            s.window,
            s.index,
            s.len,
            json::fmt_f64(s.sum)
        ));
    }
    out.push_str("],\"histograms\":[");
    for (i, (name, h)) in t.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},{{\"total\":{},\"min\":{},\"max\":{},\"buckets\":[",
            json::escape(name),
            h.total,
            json::fmt_opt_f64(h.min_value()),
            json::fmt_opt_f64(h.max_value())
        ));
        let mut first = true;
        for (idx, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{idx},{c}]"));
        }
        out.push_str("]}]");
    }
    out.push_str("],\"flight\":[");
    for (i, row) in t.flight.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::escape(row));
    }
    out.push_str("]}");
}

fn decode_tenant(v: &Value) -> Result<TenantTelemetry, String> {
    let name = req_str(v, "name")?.to_string();
    let events = req_u64(v, "events")?;
    let status = req_str(v, "status")?.to_string();
    let generation = req_u64(v, "generation")?;

    let mut counters = Vec::new();
    for (i, pair) in req_arr(v, "counters")?.iter().enumerate() {
        let (n, val) = decode_pair(pair, i, "counters")?;
        counters.push((
            n,
            val.as_u64()
                .ok_or_else(|| format!("counters[{i}]: value not a u64"))?,
        ));
    }

    let mut windows = Vec::new();
    for (i, pair) in req_arr(v, "windows")?.iter().enumerate() {
        let (n, val) = decode_pair(pair, i, "windows")?;
        windows.push((
            n,
            WindowStat {
                window: req_u64(val, "window").map_err(|e| format!("windows[{i}]: {e}"))?,
                index: req_u64(val, "index").map_err(|e| format!("windows[{i}]: {e}"))?,
                len: req_u64(val, "len").map_err(|e| format!("windows[{i}]: {e}"))?,
                sum: req_f64(val, "sum").map_err(|e| format!("windows[{i}]: {e}"))?,
            },
        ));
    }

    let mut histograms = Vec::new();
    for (i, pair) in req_arr(v, "histograms")?.iter().enumerate() {
        let (n, val) = decode_pair(pair, i, "histograms")?;
        let total = req_u64(val, "total").map_err(|e| format!("histograms[{i}]: {e}"))?;
        let min = opt_f64(val, "min").map_err(|e| format!("histograms[{i}]: {e}"))?;
        let max = opt_f64(val, "max").map_err(|e| format!("histograms[{i}]: {e}"))?;
        let mut sparse = Vec::new();
        for (j, b) in req_arr(val, "buckets")
            .map_err(|e| format!("histograms[{i}]: {e}"))?
            .iter()
            .enumerate()
        {
            let p = b
                .as_arr()
                .ok_or_else(|| format!("histograms[{i}].buckets[{j}]: expected [index, count]"))?;
            match p {
                [idx, count] => sparse.push((
                    idx.as_usize().ok_or_else(|| {
                        format!("histograms[{i}].buckets[{j}]: index not a usize")
                    })?,
                    count
                        .as_u64()
                        .ok_or_else(|| format!("histograms[{i}].buckets[{j}]: count not a u64"))?,
                )),
                _ => {
                    return Err(format!(
                        "histograms[{i}].buckets[{j}]: expected a 2-element pair"
                    ))
                }
            }
        }
        let h = QuantileHistogram::from_parts(total, min, max, &sparse)
            .map_err(|e| format!("histograms[{i}] ({n}): {e}"))?;
        histograms.push((n, h));
    }

    let mut flight = Vec::new();
    for (i, row) in req_arr(v, "flight")?.iter().enumerate() {
        flight.push(
            row.as_str()
                .ok_or_else(|| format!("flight[{i}]: not a string"))?
                .to_string(),
        );
    }

    Ok(TenantTelemetry {
        name,
        events,
        status,
        generation,
        counters,
        windows,
        histograms,
        flight,
    })
}

fn decode_pair<'a>(pair: &'a Value, i: usize, ctx: &str) -> Result<(String, &'a Value), String> {
    let p = pair
        .as_arr()
        .ok_or_else(|| format!("{ctx}[{i}]: expected [name, value]"))?;
    match p {
        [name, value] => Ok((
            name.as_str()
                .ok_or_else(|| format!("{ctx}[{i}]: name not a string"))?
                .to_string(),
            value,
        )),
        _ => Err(format!("{ctx}[{i}]: expected a 2-element pair")),
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-u64 field `{key}`"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric field `{key}`")),
    }
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn req_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing or non-array field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_binary_exponents() {
        // 1.0 has exponent 0 → bucket 32; its upper bound is 2.0.
        assert_eq!(QuantileHistogram::bucket_index(1.0), 32);
        assert_eq!(QuantileHistogram::bucket_upper_bound(32), 2.0);
        assert_eq!(QuantileHistogram::bucket_index(1.999), 32);
        assert_eq!(QuantileHistogram::bucket_index(2.0), 33);
        assert_eq!(QuantileHistogram::bucket_index(0.5), 31);
        // Underflow, zero, negatives and NaN clamp low; +inf clamps high.
        assert_eq!(QuantileHistogram::bucket_index(0.0), 0);
        assert_eq!(QuantileHistogram::bucket_index(-3.0), 0);
        assert_eq!(QuantileHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(QuantileHistogram::bucket_index(1e-300), 0);
        assert_eq!(
            QuantileHistogram::bucket_index(f64::INFINITY),
            HIST_BUCKETS - 1
        );
        assert_eq!(QuantileHistogram::bucket_index(1e300), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_stay_inside_the_observed_range() {
        let mut h = QuantileHistogram::new();
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!((1.0..=100.0).contains(&p50));
        assert!(p99 >= p50);
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0).unwrap(), 2.0); // upper bound of 1.0's bucket
        assert!(QuantileHistogram::new().p50().is_none());
    }

    #[test]
    fn merge_adds_counts_and_widens_the_range() {
        let mut a = QuantileHistogram::new();
        a.record(1.0);
        let mut b = QuantileHistogram::new();
        b.record(64.0);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.min_value(), Some(1.0));
        assert_eq!(a.max_value(), Some(64.0));
    }

    #[test]
    fn windows_roll_on_the_event_index() {
        let mut w = RollingWindow::new(4);
        assert!(w.is_empty());
        for i in 0..10 {
            w.push(f64::from(i));
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.index(), 10);
        assert_eq!(w.sum(), 6.0 + 7.0 + 8.0 + 9.0);
        assert_eq!(w.mean(), Some(7.5));
        let s = w.stat();
        assert_eq!((s.window, s.index, s.len), (4, 10, 4));
    }

    #[test]
    fn bit_windows_match_rolling_windows_on_indicators() {
        for cap in [1usize, 3, 7, 64, 200] {
            let mut bits = BitWindow::new(cap);
            let mut rolling = RollingWindow::new(cap.clamp(1, 64));
            for i in 0..150u64 {
                let hit = i % 3 == 0 || i % 7 == 0;
                bits.push(hit);
                rolling.push(if hit { 1.0 } else { 0.0 });
                assert_eq!(bits.stat(), rolling.stat(), "cap {cap}, push {i}");
                assert_eq!(bits.mean(), rolling.mean(), "cap {cap}, push {i}");
            }
        }
    }

    #[test]
    fn rings_keep_the_last_k_in_order() {
        let mut r = Ring::new(3);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushed(), 7);
        let held: Vec<i32> = r.iter().copied().collect();
        assert_eq!(held, [4, 5, 6]);
    }

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut slack = QuantileHistogram::new();
        for v in [0.25, 4.0, 4.5, 1000.0] {
            slack.record(v);
        }
        let mut w = RollingWindow::new(8);
        for v in [1.0, 0.0, 0.0, 1.0] {
            w.push(v);
        }
        TelemetrySnapshot {
            schema: TELEMETRY_SCHEMA_VERSION,
            label: "fleet".to_string(),
            events: 4,
            dropped: vec![("ghost".to_string(), 2)],
            tenants: vec![TenantTelemetry {
                name: "cam".to_string(),
                events: 4,
                status: "normal".to_string(),
                generation: 1,
                counters: vec![("decisions".to_string(), 4), ("served".to_string(), 3)],
                windows: vec![("fault_rate".to_string(), w.stat())],
                histograms: vec![("slack".to_string(), slack)],
                flight: vec!["cam,1,0,100,0.9,5,0,0,0,,,false,normal".to_string()],
            }],
        }
    }

    #[test]
    fn snapshot_codec_round_trips_byte_for_byte() {
        let snap = sample_snapshot();
        let line = snap.to_json();
        assert!(!line.contains('\n'));
        let back = TelemetrySnapshot::from_json(&line).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn snapshot_decoder_rejects_structural_damage() {
        assert!(TelemetrySnapshot::from_json("{").is_err());
        assert!(TelemetrySnapshot::from_json("{\"schema\":9}").is_err());
        let mut snap = sample_snapshot();
        snap.schema = 1;
        assert!(TelemetrySnapshot::from_json(&snap.to_json())
            .unwrap_err()
            .contains("unsupported telemetry schema"));
        // Out-of-range bucket index.
        let bad = sample_snapshot()
            .to_json()
            .replace("\"buckets\":[[30,", "\"buckets\":[[960,");
        assert!(TelemetrySnapshot::from_json(&bad).is_err());
    }

    #[test]
    fn empty_histograms_encode_null_bounds() {
        let mut snap = sample_snapshot();
        snap.tenants[0].histograms = vec![("slack".to_string(), QuantileHistogram::new())];
        let line = snap.to_json();
        assert!(line.contains("\"min\":null,\"max\":null,\"buckets\":[]"));
        let back = TelemetrySnapshot::from_json(&line).unwrap();
        assert_eq!(back.to_json(), line);
    }
}
