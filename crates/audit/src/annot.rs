//! `clr-audit:` control comments: explicit, validated suppression.
//!
//! Two forms exist, both line-comment only (doc comments cannot carry
//! annotations — their content starts with `/` or `!`, which fails the
//! prefix match by construction):
//!
//! ```text
//! // clr-audit: allow(CLR102) comparator feeds no persisted output
//! // clr-audit: nondet(begin) timing is reporting-only
//! // clr-audit: nondet(end)
//! ```
//!
//! `allow` suppresses one code on its own line or the next
//! code-bearing line; `nondet(begin)`/`nondet(end)` bracket a
//! wall-clock region that feeds only the journal's nondeterministic
//! section.
//!
//! The tool validates its own escape hatch: a reasonless or unparsable
//! annotation is CLR109, an allow that suppresses nothing is CLR108,
//! and an unbalanced nondet section is CLR110. The meta codes
//! CLR108–CLR110 can never themselves be allowed.

use crate::codes::AuditCode;

/// The marker every control comment starts with (after trimming).
pub const MARKER: &str = "clr-audit:";

/// One parsed control comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annotation {
    /// `allow(CLRnnn) reason` — suppress `code` on the annotated line.
    Allow {
        /// The suppressed lint.
        code: AuditCode,
        /// The mandatory human justification.
        reason: String,
    },
    /// `nondet(begin) reason` — opens a wall-clock-permitted region.
    NondetBegin {
        /// The mandatory human justification.
        reason: String,
    },
    /// `nondet(end)` — closes the innermost open region.
    NondetEnd,
}

impl Annotation {
    /// Renders the annotation back to its canonical comment text
    /// (without the leading `//`). Parsing the result yields the same
    /// annotation — the property the round-trip proptest pins down.
    pub fn render(&self) -> String {
        match self {
            Annotation::Allow { code, reason } => {
                format!("{MARKER} allow({}) {reason}", code.code())
            }
            Annotation::NondetBegin { reason } => format!("{MARKER} nondet(begin) {reason}"),
            Annotation::NondetEnd => format!("{MARKER} nondet(end)"),
        }
    }
}

/// Why a control comment failed to parse (reported as CLR109).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationError {
    /// Human-readable cause.
    pub detail: String,
}

/// Parses a line comment's content (the text after `//`).
///
/// Returns `None` when the comment is not a control comment at all,
/// `Some(Ok(..))` for a valid annotation and `Some(Err(..))` for a
/// malformed one.
pub fn parse_comment(text: &str) -> Option<Result<Annotation, AnnotationError>> {
    let trimmed = text.trim_start();
    let rest = trimmed.strip_prefix(MARKER)?;
    Some(parse_directive(rest.trim()))
}

fn parse_directive(rest: &str) -> Result<Annotation, AnnotationError> {
    let err = |detail: String| Err(AnnotationError { detail });
    if let Some(args) = rest.strip_prefix("allow(") {
        let Some(close) = args.find(')') else {
            return err("allow(: missing closing parenthesis".to_string());
        };
        let code_text = args[..close].trim();
        let reason = args[close + 1..].trim();
        let Some(code) = AuditCode::from_code(code_text) else {
            return err(format!("allow names unknown code {code_text:?}"));
        };
        if code.is_meta() {
            return err(format!(
                "{} is an annotation-hygiene lint and cannot be allowed",
                code.code()
            ));
        }
        if reason.is_empty() {
            return err(format!("allow({code_text}) carries no reason"));
        }
        return Ok(Annotation::Allow {
            code,
            reason: reason.to_string(),
        });
    }
    if let Some(args) = rest.strip_prefix("nondet(begin)") {
        let reason = args.trim();
        if reason.is_empty() {
            return err("nondet(begin) carries no reason".to_string());
        }
        return Ok(Annotation::NondetBegin {
            reason: reason.to_string(),
        });
    }
    if rest.trim_end() == "nondet(end)" || rest.starts_with("nondet(end)") {
        return Ok(Annotation::NondetEnd);
    }
    err(format!(
        "unrecognized directive {rest:?} (expected allow(CLR1xx) <reason>, \
         nondet(begin) <reason>, or nondet(end))"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_control_comments_are_ignored() {
        assert!(parse_comment(" ordinary comment").is_none());
        assert!(parse_comment("! doc comment body").is_none());
        assert!(parse_comment("/ outer doc body").is_none());
        // Doc-comment content always starts with `/` or `!`, so an
        // annotation shown *inside* docs can never be live.
        assert!(parse_comment("/ clr-audit: allow(CLR102) example").is_none());
    }

    #[test]
    fn allow_parses_code_and_reason() {
        let a = parse_comment(" clr-audit: allow(CLR102) comparator is test-only")
            .unwrap()
            .unwrap();
        assert_eq!(
            a,
            Annotation::Allow {
                code: AuditCode::PartialCmpOnFloats,
                reason: "comparator is test-only".to_string(),
            }
        );
    }

    #[test]
    fn reasonless_unknown_and_meta_allows_are_malformed() {
        for bad in [
            "clr-audit: allow(CLR102)",
            "clr-audit: allow(CLR102)   ",
            "clr-audit: allow(CLR999) whatever",
            "clr-audit: allow(CLR031) wrong family",
            "clr-audit: allow(CLR108) allowing the allow lint",
            "clr-audit: allow(CLR102 no close",
            "clr-audit: disable(CLR102) unknown verb",
            "clr-audit: nondet(begin)",
        ] {
            assert!(
                parse_comment(bad).unwrap().is_err(),
                "{bad} should be malformed"
            );
        }
    }

    #[test]
    fn nondet_markers_parse() {
        assert_eq!(
            parse_comment("clr-audit: nondet(begin) wall timers feed only the nondet journal")
                .unwrap()
                .unwrap(),
            Annotation::NondetBegin {
                reason: "wall timers feed only the nondet journal".to_string()
            }
        );
        assert_eq!(
            parse_comment("clr-audit: nondet(end)").unwrap().unwrap(),
            Annotation::NondetEnd
        );
    }

    #[test]
    fn render_round_trips() {
        for a in [
            Annotation::Allow {
                code: AuditCode::WallClock,
                reason: "reporting only".to_string(),
            },
            Annotation::NondetBegin {
                reason: "timing loop".to_string(),
            },
            Annotation::NondetEnd,
        ] {
            assert_eq!(parse_comment(&a.render()).unwrap().unwrap(), a);
        }
    }
}
