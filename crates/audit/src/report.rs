//! Findings, reports, renderers and the warn baseline.

use std::fmt;

use crate::codes::{AuditCode, Severity};

/// One source finding: a lint code anchored to a `file:line` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated lint.
    pub code: AuditCode,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// What exactly was observed.
    pub detail: String,
}

impl Finding {
    /// The severity inherited from the lint code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}:{}: {}\n  hint: {}",
            self.code.code(),
            self.severity(),
            self.path,
            self.line,
            self.detail,
            self.code.fix_hint()
        )
    }
}

/// An accumulated audit over one or more source files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    findings: Vec<Finding>,
    files: usize,
    grandfathered: usize,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one file's findings and bumps the scanned-file count.
    pub fn absorb_file(&mut self, findings: Vec<Finding>) {
        self.findings.extend(findings);
        self.files += 1;
    }

    /// All findings, sorted by `(path, line, code)`.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Number of files scanned.
    pub fn files_scanned(&self) -> usize {
        self.files
    }

    /// Number of warn findings removed by the baseline.
    pub fn grandfathered(&self) -> usize {
        self.grandfathered
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity() == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings (after baseline subtraction).
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity() == Severity::Warn)
            .count()
    }

    /// `true` if some finding carries the given code.
    pub fn has_code(&self, code: AuditCode) -> bool {
        self.findings.iter().any(|d| d.code == code)
    }

    /// The process exit code: `0` clean or warn-only, `1` on any deny.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.deny_count() > 0)
    }

    /// Sorts findings into the canonical `(path, line, code)` order so
    /// reports are byte-identical across directory-walk orders.
    pub fn finish(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.code).cmp(&(&b.path, b.line, b.code)));
    }

    /// Subtracts baseline-granted warn findings (deny findings are
    /// never grandfatherable), recording how many were dropped.
    pub fn apply_baseline(&mut self, baseline: &Baseline) {
        let mut budget = baseline.entries.clone();
        let mut kept = Vec::with_capacity(self.findings.len());
        for finding in self.findings.drain(..) {
            let grandfathered = finding.severity() == Severity::Warn
                && budget.iter_mut().any(|(code, path, left)| {
                    let hit = *code == finding.code && *path == finding.path && *left > 0;
                    if hit {
                        *left -= 1;
                    }
                    hit
                });
            if grandfathered {
                self.grandfathered += 1;
            } else {
                kept.push(finding);
            }
        }
        self.findings = kept;
    }

    /// Renders the report for humans.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.findings {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} finding(s) over {} file(s): {} deny, {} warn ({} grandfathered)",
            self.findings.len(),
            self.files,
            self.deny_count(),
            self.warn_count(),
            self.grandfathered
        );
        out
    }

    /// Renders the report as a JSON document.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"findings\":[");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"severity\":{},\"file\":{},\"line\":{},\"detail\":{},\"hint\":{}}}",
                json_string(d.code.code()),
                json_string(&d.severity().to_string()),
                json_string(&d.path),
                d.line,
                json_string(&d.detail),
                json_string(d.code.fix_hint()),
            );
        }
        let _ = write!(
            out,
            "],\"files\":{},\"deny\":{},\"warn\":{},\"grandfathered\":{}}}",
            self.files,
            self.deny_count(),
            self.warn_count(),
            self.grandfathered
        );
        out
    }
}

/// The checked-in grandfather list for warn findings.
///
/// Format: one `<code> <path> <max-count>` entry per line; `#` starts a
/// comment. An entry tolerates up to `max-count` findings of `code` in
/// `path` — counts rather than line numbers, so unrelated edits do not
/// invalidate the baseline. Deny codes in a baseline are rejected: the
/// baseline exists to grandfather warns, never to bypass the gate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: Vec<(AuditCode, String, usize)>,
}

impl Baseline {
    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending line when an entry
    /// is malformed, names an unknown code, or names a deny-level code.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [code_text, path, count] = fields.as_slice() else {
                return Err(format!(
                    "baseline line {}: expected `<code> <path> <max-count>`, got {raw:?}",
                    idx + 1
                ));
            };
            let Some(code) = AuditCode::from_code(code_text) else {
                return Err(format!(
                    "baseline line {}: unknown code {code_text:?}",
                    idx + 1
                ));
            };
            if code.severity() == Severity::Deny {
                return Err(format!(
                    "baseline line {}: {} is deny-level and cannot be grandfathered",
                    idx + 1,
                    code.code()
                ));
            }
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {count:?}", idx + 1))?;
            entries.push((code, (*path).to_string(), count));
        }
        Ok(Self { entries })
    }

    /// `true` when the baseline grants nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Escapes a string into a JSON string literal (RFC 8259 §7).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: AuditCode, path: &str, line: usize) -> Finding {
        Finding {
            code,
            path: path.to_string(),
            line,
            detail: "x".to_string(),
        }
    }

    fn sample() -> AuditReport {
        let mut r = AuditReport::new();
        r.absorb_file(vec![
            finding(AuditCode::PartialCmpOnFloats, "b.rs", 9),
            finding(AuditCode::LossyCastInCodec, "a.rs", 3),
        ]);
        r.finish();
        r
    }

    #[test]
    fn counts_ordering_and_exit_code() {
        let r = sample();
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.exit_code(), 1);
        assert_eq!(r.findings()[0].path, "a.rs", "sorted by path first");
        assert!(r.has_code(AuditCode::LossyCastInCodec));
    }

    #[test]
    fn baseline_grandfathers_warns_but_never_denies() {
        let mut r = sample();
        let b = Baseline::from_text("CLR106 a.rs 1\n").unwrap();
        r.apply_baseline(&b);
        assert_eq!(r.warn_count(), 0);
        assert_eq!(r.grandfathered(), 1);
        assert_eq!(r.deny_count(), 1, "deny findings survive any baseline");
    }

    #[test]
    fn baseline_counts_cap_the_grandfathering() {
        let mut r = AuditReport::new();
        r.absorb_file(vec![
            finding(AuditCode::LossyCastInCodec, "a.rs", 1),
            finding(AuditCode::LossyCastInCodec, "a.rs", 2),
        ]);
        r.finish();
        let b = Baseline::from_text("# comment\nCLR106 a.rs 1 # trailing\n\n").unwrap();
        r.apply_baseline(&b);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.grandfathered(), 1);
    }

    #[test]
    fn baselines_reject_deny_codes_and_junk() {
        assert!(Baseline::from_text("CLR102 a.rs 1").is_err());
        assert!(Baseline::from_text("CLR999 a.rs 1").is_err());
        assert!(Baseline::from_text("CLR106 a.rs lots").is_err());
        assert!(Baseline::from_text("CLR106 a.rs").is_err());
        assert!(Baseline::from_text("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"findings\":["));
        assert!(json.ends_with("\"files\":1,\"deny\":1,\"warn\":1,\"grandfathered\":0}"));
        assert!(json.contains("\"code\":\"CLR102\""));
        assert!(json.contains("\"line\":9"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
