//! `clr-audit` — the CLI for the CLR1xx source lints.
//!
//! ```text
//! clr-audit [--json] [--root DIR] [--baseline FILE] [FILE...]
//! clr-audit list
//! ```
//!
//! With no `FILE` arguments the whole workspace under `--root` (default
//! `.`) is scanned. Exit code 0 means clean or warn-only, 1 means at
//! least one deny finding, 2 means usage or I/O error. A baseline file
//! (`--baseline`, or `<root>/audit.baseline` when present) grandfathers
//! warn findings; deny findings are never grandfathered.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use clr_audit::{audit_source, audit_workspace, normalize_path, AuditCode, AuditReport, Baseline};

const USAGE: &str = "\
usage: clr-audit [--json] [--root DIR] [--baseline FILE] [FILE...]
       clr-audit list

Scans first-party Rust sources for CLR1xx determinism/reliability
violations. Without FILE arguments the workspace under --root
(default: the current directory) is scanned and <root>/audit.baseline,
when present, grandfathers warn-level findings.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("clr-audit: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "list" if files.is_empty() => {
                print_registry();
                return Ok(ExitCode::SUCCESS);
            }
            "--json" => json = true,
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--baseline needs a file".to_string())?,
                ));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{USAGE}"));
            }
            file => files.push(file.to_string()),
        }
    }

    let mut report = if files.is_empty() {
        audit_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?
    } else {
        let mut r = AuditReport::new();
        for file in &files {
            let source = fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            r.absorb_file(audit_source(&normalize_path(file), &source));
        }
        r.finish();
        r
    };

    let baseline = load_baseline(baseline_path.as_deref(), &root)?;
    report.apply_baseline(&baseline);

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(ExitCode::from(
        u8::try_from(report.exit_code()).unwrap_or(2),
    ))
}

/// Loads the explicit baseline, or the conventional
/// `<root>/audit.baseline` when one exists, or an empty baseline.
fn load_baseline(explicit: Option<&Path>, root: &Path) -> Result<Baseline, String> {
    let conventional = root.join("audit.baseline");
    let path = match explicit {
        Some(p) => p.to_path_buf(),
        None if conventional.is_file() => conventional,
        None => return Ok(Baseline::default()),
    };
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
    Baseline::from_text(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
}

/// Prints the CLR1xx registry, one code per line.
fn print_registry() {
    println!("CLR1xx source lints (clr-audit):");
    for code in AuditCode::ALL {
        println!(
            "  {} [{}] {}",
            code.code(),
            code.severity(),
            code.description()
        );
        println!("      fix: {}", code.fix_hint());
    }
}
