//! The source-lint registry: every check `clr-audit` performs has a
//! stable `CLR1xx` code, a fixed severity and a one-line fix hint.
//!
//! The family complements `clr-verify`'s `CLR0xx` *artifact* lints:
//! CLR0xx codes audit what the pipeline *produced*, CLR1xx codes audit
//! the *source code* that produced it. The two registries live in
//! separate crates but are printed side by side by `clr-verify list`,
//! and a cross-crate test keeps the code ranges disjoint forever.
//! Codes are append-only — a retired lint's number is never reused.

use std::fmt;

/// How severe a source finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but grandfatherable via the baseline file; does not
    /// fail an audit.
    Warn,
    /// A broken determinism/reliability invariant; the tree must not
    /// merge with this finding outstanding.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// A registered source lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum AuditCode {
    /// CLR100: a wall-clock read (`Instant::now`, `SystemTime`) outside
    /// an annotated nondet section. Wall time is inherently
    /// nondeterministic; it may only feed the journal's nondeterministic
    /// section, and every such site must be marked.
    WallClock,
    /// CLR101: `HashMap`/`HashSet` in non-test code. Their iteration
    /// order is randomized per process, so a single leak into a journal,
    /// CSV or codec path silently breaks the bit-identical-at-any-
    /// `CLR_THREADS` invariant. Deterministic code uses `BTreeMap`/
    /// `BTreeSet` or index-keyed `Vec`s.
    UnorderedContainer,
    /// CLR102: a float comparison via `partial_cmp`. `partial_cmp`
    /// returns `None` on NaN, forcing an `unwrap`/fallback that either
    /// panics or silently reorders; `f64::total_cmp` is total and
    /// deterministic.
    PartialCmpOnFloats,
    /// CLR103: an unseeded or thread-local RNG (`thread_rng`,
    /// `from_entropy`, `OsRng`). Every random stream in this workspace
    /// must be derived from an explicit seed via `splitmix64`.
    UnseededRng,
    /// CLR104: raw `std::thread` spawning outside `crates/par`. All
    /// fan-out goes through the deterministic `clr-par` worker pool so
    /// results cannot depend on scheduling.
    RawThreadSpawn,
    /// CLR105: `unwrap()`/`expect()`/`panic!` in a serve/chaos decision
    /// path. Those paths absorb faults via `clr_core::Error` and the
    /// degradation ladder; a panic there turns one bad event into a
    /// crashed replay.
    PanicInDecisionPath,
    /// CLR106: a potentially lossy `as` cast inside codec code. Codecs
    /// must round-trip byte-for-byte; a silent truncation corrupts the
    /// artifact without an error.
    LossyCastInCodec,
    /// CLR107: a call to a deprecated workspace API
    /// (`DesignPointDb::point` — use the total `get`).
    DeprecatedApi,
    /// CLR108: a `clr-audit: allow(...)` annotation that suppresses
    /// nothing. Dangling allows rot into false confidence; delete them
    /// when the hazard is gone.
    DanglingAllow,
    /// CLR109: a malformed or reasonless `clr-audit:` annotation
    /// (missing justification, unknown or non-suppressible code).
    MalformedAnnotation,
    /// CLR110: an unbalanced `nondet(begin)`/`nondet(end)` section.
    UnbalancedNondetSection,
}

impl AuditCode {
    /// Every registered source lint, in code order.
    pub const ALL: [AuditCode; 11] = [
        AuditCode::WallClock,
        AuditCode::UnorderedContainer,
        AuditCode::PartialCmpOnFloats,
        AuditCode::UnseededRng,
        AuditCode::RawThreadSpawn,
        AuditCode::PanicInDecisionPath,
        AuditCode::LossyCastInCodec,
        AuditCode::DeprecatedApi,
        AuditCode::DanglingAllow,
        AuditCode::MalformedAnnotation,
        AuditCode::UnbalancedNondetSection,
    ];

    /// The stable `CLRnnn` code string.
    pub fn code(&self) -> &'static str {
        match self {
            AuditCode::WallClock => "CLR100",
            AuditCode::UnorderedContainer => "CLR101",
            AuditCode::PartialCmpOnFloats => "CLR102",
            AuditCode::UnseededRng => "CLR103",
            AuditCode::RawThreadSpawn => "CLR104",
            AuditCode::PanicInDecisionPath => "CLR105",
            AuditCode::LossyCastInCodec => "CLR106",
            AuditCode::DeprecatedApi => "CLR107",
            AuditCode::DanglingAllow => "CLR108",
            AuditCode::MalformedAnnotation => "CLR109",
            AuditCode::UnbalancedNondetSection => "CLR110",
        }
    }

    /// Looks a lint up by its `CLRnnn` code string.
    pub fn from_code(code: &str) -> Option<AuditCode> {
        AuditCode::ALL.into_iter().find(|c| c.code() == code)
    }

    /// The fixed severity of this lint.
    pub fn severity(&self) -> Severity {
        match self {
            AuditCode::LossyCastInCodec => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// `true` for the annotation-hygiene meta lints, which can never be
    /// suppressed by an `allow` (an allow naming them is itself
    /// malformed).
    pub fn is_meta(&self) -> bool {
        matches!(
            self,
            AuditCode::DanglingAllow
                | AuditCode::MalformedAnnotation
                | AuditCode::UnbalancedNondetSection
        )
    }

    /// A one-line description of what the lint checks.
    pub fn description(&self) -> &'static str {
        match self {
            AuditCode::WallClock => "wall-clock reads must sit inside a nondet section",
            AuditCode::UnorderedContainer => {
                "non-test code must not use randomized-order containers"
            }
            AuditCode::PartialCmpOnFloats => "float comparisons must use total_cmp",
            AuditCode::UnseededRng => "randomness must come from an explicitly seeded RNG",
            AuditCode::RawThreadSpawn => "thread fan-out must go through the clr-par pool",
            AuditCode::PanicInDecisionPath => "serve/chaos decision paths must not panic",
            AuditCode::LossyCastInCodec => "codec code must not truncate through as-casts",
            AuditCode::DeprecatedApi => "deprecated workspace APIs must not gain new callers",
            AuditCode::DanglingAllow => "allow annotations must suppress a live finding",
            AuditCode::MalformedAnnotation => "clr-audit annotations must parse and carry a reason",
            AuditCode::UnbalancedNondetSection => "nondet sections must open and close in pairs",
        }
    }

    /// A one-line suggestion for fixing a finding.
    pub fn fix_hint(&self) -> &'static str {
        match self {
            AuditCode::WallClock => {
                "wrap the site in `// clr-audit: nondet(begin) <why>` .. `nondet(end)`"
            }
            AuditCode::UnorderedContainer => "switch to BTreeMap/BTreeSet or an index-keyed Vec",
            AuditCode::PartialCmpOnFloats => "compare with f64::total_cmp (drops the unwrap too)",
            AuditCode::UnseededRng => "derive a seed with clr_par::derive_seed / splitmix64",
            AuditCode::RawThreadSpawn => "use clr_par::par_map; it is bit-identical at any width",
            AuditCode::PanicInDecisionPath => {
                "return clr_core::Error and let the degradation ladder absorb it"
            }
            AuditCode::LossyCastInCodec => "use try_from / from and surface a codec error",
            AuditCode::DeprecatedApi => "call the replacement named in the API's deprecation note",
            AuditCode::DanglingAllow => "delete the stale allow (or fix the code it named)",
            AuditCode::MalformedAnnotation => {
                "write `// clr-audit: allow(CLR1xx) <reason>` with a real reason"
            }
            AuditCode::UnbalancedNondetSection => {
                "close every nondet(begin) with a nondet(end) in the same file"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_stable_and_in_family() {
        let mut seen = std::collections::BTreeSet::new();
        for lint in AuditCode::ALL {
            let c = lint.code();
            assert!(c.starts_with("CLR1") && c.len() == 6, "bad code {c}");
            assert!(c[3..].chars().all(|ch| ch.is_ascii_digit()));
            assert!(seen.insert(c), "duplicate code {c}");
            assert_eq!(AuditCode::from_code(c), Some(lint));
        }
        assert_eq!(AuditCode::from_code("CLR999"), None);
    }

    #[test]
    fn all_is_sorted_by_code_with_nonempty_metadata() {
        let codes: Vec<&str> = AuditCode::ALL.iter().map(AuditCode::code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted);
        for lint in AuditCode::ALL {
            assert!(!lint.description().is_empty());
            assert!(!lint.fix_hint().is_empty());
        }
    }

    #[test]
    fn only_the_codec_cast_lint_is_grandfatherable() {
        for lint in AuditCode::ALL {
            let expect = matches!(lint, AuditCode::LossyCastInCodec);
            assert_eq!(lint.severity() == Severity::Warn, expect, "{}", lint.code());
        }
    }

    #[test]
    fn meta_lints_are_exactly_the_annotation_family() {
        let metas: Vec<&str> = AuditCode::ALL
            .iter()
            .filter(|c| c.is_meta())
            .map(AuditCode::code)
            .collect();
        assert_eq!(metas, ["CLR108", "CLR109", "CLR110"]);
    }
}
