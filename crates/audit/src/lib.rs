//! `clr-audit` — source-level determinism & reliability static
//! analyzer for the CLR workspace.
//!
//! The pipeline's contract is *bit-identical artifacts from identical
//! seeds*, and `clr-verify` (the `CLR0xx` family) audits the artifacts
//! after the fact. This crate closes the other half of the loop: it
//! audits the **source** that produces them, catching the constructs
//! that break determinism or reliability before they ever reach an
//! artifact — wall-clock reads, randomized-order containers,
//! `partial_cmp` float sorts, unseeded RNGs, raw thread spawns,
//! panicking decision paths, lossy codec casts and deprecated-API
//! callers. Each check is a stable `CLR1xx` code with a fixed severity
//! and a fix hint (see [`AuditCode`]).
//!
//! The analyzer is a hand-rolled lexer plus token-sequence rules — no
//! syn, no rustc plumbing, no external dependencies — which keeps it
//! fast (the whole workspace scans in milliseconds), fully
//! deterministic, and runnable as a bare CI gate before anything else
//! compiles.
//!
//! Suppression is explicit and itself audited: a
//! `// clr-audit: allow(CLR1xx) <reason>` comment suppresses exactly
//! one code on its line (or the next code-bearing line), and the tool
//! validates its own escape hatch — a reasonless allow is CLR109, a
//! dangling one CLR108, an unbalanced `nondet(begin)`/`nondet(end)`
//! wall-clock section CLR110. Warn-level findings can be grandfathered
//! through a checked-in [`Baseline`]; deny findings never can.

pub mod annot;
pub mod codes;
pub mod lexer;
pub mod report;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use annot::{parse_comment, Annotation, AnnotationError};
pub use codes::{AuditCode, Severity};
pub use report::{AuditReport, Baseline, Finding};
pub use scan::{audit_source, normalize_path};

/// Workspace subtrees that contain first-party Rust sources.
const SOURCE_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Directory names that are never scanned: build output, vendored
/// third-party stubs, and the seeded-violation lint fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// Lists every auditable `.rs` file under `root`, as sorted
/// workspace-relative paths with `/` separators.
///
/// # Errors
///
/// Propagates filesystem errors from reading directories; a missing
/// source root is skipped silently (not every checkout has `src/`).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for sub in SOURCE_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|f| f.strip_prefix(root).map_or(f.clone(), Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audits every first-party `.rs` file under `root` and returns the
/// finished (sorted) report. No baseline is applied — callers decide.
///
/// # Errors
///
/// Propagates filesystem errors from walking or reading sources.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut report = AuditReport::new();
    for rel in workspace_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_text = normalize_path(&rel.to_string_lossy());
        report.absorb_file(audit_source(&rel_text, &source));
    }
    report.finish();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_vendor_target_and_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).unwrap();
        assert!(!files.is_empty());
        for f in &files {
            let text = f.to_string_lossy();
            assert!(text.ends_with(".rs"));
            for skip in ["vendor/", "target/", "fixtures/"] {
                assert!(!text.contains(skip), "{text} should be skipped");
            }
        }
        // Sorted and duplicate-free.
        let mut sorted = files.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(files, sorted);
    }

    #[test]
    fn this_crate_is_part_of_the_walk() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).unwrap();
        assert!(files
            .iter()
            .any(|f| f.to_string_lossy().replace('\\', "/") == "crates/audit/src/lib.rs"));
    }
}
