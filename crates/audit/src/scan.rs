//! The rule engine: runs every CLR1xx check over one lexed file,
//! applies suppressions, and validates the annotations themselves.

use std::collections::BTreeSet;

use crate::annot::{parse_comment, Annotation};
use crate::codes::AuditCode;
use crate::lexer::{lex, Token};
use crate::report::Finding;

/// Paths allowed to spawn threads directly: the deterministic pool
/// itself.
const PAR_PATHS: &[&str] = &["crates/par/"];

/// Decision paths: code that must absorb faults via `clr_core::Error`
/// and the degradation ladder rather than panic (CLR105).
const DECISION_PATHS: &[&str] = &[
    "crates/serve/src/engine.rs",
    "crates/serve/src/tenant.rs",
    "crates/serve/src/session.rs",
    "crates/serve/src/daemon.rs",
    "crates/serve/src/health.rs",
    "crates/store/src/lib.rs",
    "crates/chaos/src/",
    "crates/learn/src/learner.rs",
];

/// Codec code: byte-stable encoders/decoders where a lossy `as` cast
/// silently corrupts artifacts (CLR106).
const CODEC_PATHS: &[&str] = &[
    "crates/serve/src/snapshot.rs",
    "crates/serve/src/trace.rs",
    "crates/serve/src/wire.rs",
    "crates/obs/src/json.rs",
    "crates/obs/src/event.rs",
    "crates/obs/src/telemetry.rs",
    "crates/dse/src/codec.rs",
    "crates/store/src/changeset.rs",
    "crates/store/src/backend.rs",
    "crates/chaos/src/plan.rs",
    "crates/learn/src/checkpoint.rs",
];

/// Cast targets that can silently drop information (CLR106). Widening
/// targets (`u64`, `i64`, `f64`, `u128`, `i128`) are not listed: every
/// workspace source value fits them.
const LOSSY_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32", "usize"];

/// Deprecated workspace methods (CLR107): method name → what to call
/// instead. Append-only, like the code registry itself.
const DEPRECATED_METHODS: &[(&str, &str)] = &[
    ("point", "DesignPointDb::point is deprecated; call get()"),
    (
        "decide_scored",
        "RuntimePolicy::decide_scored is deprecated; call decide(&DecisionInput)",
    ),
    (
        "decide_scored_from",
        "RuntimePolicy::decide_scored_from is deprecated; call decide(&DecisionInput)",
    ),
];

/// Normalizes a path for scope matching and reporting: `/` separators,
/// no leading `./`.
pub fn normalize_path(path: &str) -> String {
    let unified = path.replace('\\', "/");
    unified.strip_prefix("./").unwrap_or(&unified).to_string()
}

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Audits one source file, returning its findings sorted by
/// `(line, code)`. `path` should be workspace-relative; it selects the
/// path-scoped rules (decision paths, codec code, the `crates/par`
/// spawn exemption).
pub fn audit_source(path: &str, source: &str) -> Vec<Finding> {
    let path = normalize_path(path);
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let in_test = test_region_mask(tokens);
    let token_lines: BTreeSet<usize> = tokens.iter().map(|t| t.line).collect();

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<(usize, AuditCode, bool)> = Vec::new(); // (line, code, used)
    let mut nondet: Vec<(usize, usize)> = Vec::new(); // inclusive line ranges
    let mut open_nondet: Option<usize> = None;

    let push = |findings: &mut Vec<Finding>, code: AuditCode, line: usize, detail: String| {
        findings.push(Finding {
            code,
            path: path.clone(),
            line,
            detail,
        });
    };

    // ---- annotations: parse, validate, and build the exempt regions ----
    for comment in &lexed.comments {
        match parse_comment(comment.text) {
            None => {}
            Some(Err(e)) => push(
                &mut findings,
                AuditCode::MalformedAnnotation,
                comment.line,
                e.detail,
            ),
            Some(Ok(Annotation::Allow { code, .. })) => {
                allows.push((comment.line, code, false));
            }
            Some(Ok(Annotation::NondetBegin { .. })) => {
                if open_nondet.is_some() {
                    push(
                        &mut findings,
                        AuditCode::UnbalancedNondetSection,
                        comment.line,
                        "nondet(begin) while a section is already open (no nesting)".to_string(),
                    );
                } else {
                    open_nondet = Some(comment.line);
                }
            }
            Some(Ok(Annotation::NondetEnd)) => match open_nondet.take() {
                Some(begin) => nondet.push((begin, comment.line)),
                None => push(
                    &mut findings,
                    AuditCode::UnbalancedNondetSection,
                    comment.line,
                    "nondet(end) without an open nondet(begin)".to_string(),
                ),
            },
        }
    }
    if let Some(begin) = open_nondet {
        push(
            &mut findings,
            AuditCode::UnbalancedNondetSection,
            begin,
            "nondet(begin) never closed before end of file".to_string(),
        );
    }
    let in_nondet = |line: usize| nondet.iter().any(|&(b, e)| line >= b && line <= e);

    // ---- token rules ---------------------------------------------------
    let scope_par = in_scope(&path, PAR_PATHS);
    let scope_decision = in_scope(&path, DECISION_PATHS);
    let scope_codec = in_scope(&path, CODEC_PATHS);
    let txt = |k: usize| tokens.get(k).map_or("", |t: &Token<'_>| t.text);

    for (i, tok) in tokens.iter().enumerate() {
        let line = tok.line;
        match tok.text {
            "Instant"
                if txt(i + 1) == ":"
                    && txt(i + 2) == ":"
                    && txt(i + 3) == "now"
                    && !in_nondet(line) =>
            {
                push(
                    &mut findings,
                    AuditCode::WallClock,
                    line,
                    "Instant::now() outside a nondet section".to_string(),
                );
            }
            "SystemTime" if !in_nondet(line) => {
                push(
                    &mut findings,
                    AuditCode::WallClock,
                    line,
                    "SystemTime outside a nondet section".to_string(),
                );
            }
            "HashMap" | "HashSet" if !in_test[i] => {
                push(
                    &mut findings,
                    AuditCode::UnorderedContainer,
                    line,
                    format!("{} in non-test code (randomized iteration order)", tok.text),
                );
            }
            "partial_cmp" => {
                push(
                    &mut findings,
                    AuditCode::PartialCmpOnFloats,
                    line,
                    "float comparison via partial_cmp".to_string(),
                );
            }
            "thread_rng" | "from_entropy" | "OsRng" => {
                push(
                    &mut findings,
                    AuditCode::UnseededRng,
                    line,
                    format!("{} draws entropy outside the seed discipline", tok.text),
                );
            }
            "thread"
                if txt(i + 1) == ":"
                    && txt(i + 2) == ":"
                    && matches!(txt(i + 3), "spawn" | "scope")
                    && !scope_par
                    && !in_test[i] =>
            {
                push(
                    &mut findings,
                    AuditCode::RawThreadSpawn,
                    line,
                    format!("thread::{} outside crates/par", txt(i + 3)),
                );
            }
            "unwrap" | "expect"
                if scope_decision
                    && !in_test[i]
                    && txt(i + 1) == "("
                    && i > 0
                    && txt(i - 1) == "." =>
            {
                push(
                    &mut findings,
                    AuditCode::PanicInDecisionPath,
                    line,
                    format!(".{}() in a serve/chaos decision path", tok.text),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if scope_decision && !in_test[i] && txt(i + 1) == "!" =>
            {
                push(
                    &mut findings,
                    AuditCode::PanicInDecisionPath,
                    line,
                    format!("{}! in a serve/chaos decision path", tok.text),
                );
            }
            "as" if scope_codec && !in_test[i] && LOSSY_CAST_TARGETS.contains(&txt(i + 1)) => {
                push(
                    &mut findings,
                    AuditCode::LossyCastInCodec,
                    line,
                    format!("potentially lossy `as {}` in codec code", txt(i + 1)),
                );
            }
            "." if txt(i + 2) == "(" => {
                if let Some((_, note)) = DEPRECATED_METHODS.iter().find(|(m, _)| *m == txt(i + 1)) {
                    push(
                        &mut findings,
                        AuditCode::DeprecatedApi,
                        line,
                        (*note).to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    // ---- suppression ---------------------------------------------------
    // An allow covers its own line (trailing comment) or, when it sits
    // alone, the next code-bearing line. Meta lints are unsuppressible.
    findings.retain(|finding| {
        if finding.code.is_meta() {
            return true;
        }
        let suppressed = allows.iter_mut().any(|(line, code, used)| {
            let target = finding.line == *line
                || token_lines.range(*line + 1..).next() == Some(&finding.line);
            if target && *code == finding.code {
                *used = true;
                true
            } else {
                false
            }
        });
        !suppressed
    });
    for (line, code, used) in &allows {
        if !used {
            push(
                &mut findings,
                AuditCode::DanglingAllow,
                *line,
                format!(
                    "allow({}) suppresses nothing on its target line",
                    code.code()
                ),
            );
        }
    }

    findings.sort_by_key(|f| (f.line, f.code));
    findings
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item. The
/// attribute's item extends to its matching close brace (or to the
/// terminating semicolon for brace-less items).
fn test_region_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].text == "#" && tokens[i + 1].text == "[") {
            i += 1;
            continue;
        }
        // Collect the attribute's identifier tokens up to the matching ']'.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() {
            match tokens[j].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                t if crate::lexer::TokenKind::Ident == tokens[j].kind => idents.push(t),
                _ => {}
            }
            j += 1;
        }
        let close = j;
        let testy = idents.as_slice() == ["test"]
            || (idents.first() == Some(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not"));
        if testy {
            // Skip any further attributes stacked on the same item.
            let mut k = close + 1;
            while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
                let mut d = 0usize;
                while k < tokens.len() {
                    match tokens[k].text {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
            }
            // The item body: to the matching '}' of its first brace, or
            // to ';' for brace-less items (`#[cfg(test)] use ...;`).
            let mut end = tokens.len().saturating_sub(1);
            let mut m = k;
            while m < tokens.len() {
                match tokens[m].text {
                    ";" => {
                        end = m;
                        break;
                    }
                    "{" => {
                        let mut d = 0usize;
                        while m < tokens.len() {
                            match tokens[m].text {
                                "{" => d += 1,
                                "}" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        end = m.min(tokens.len() - 1);
                        break;
                    }
                    _ => m += 1,
                }
            }
            for slot in &mut mask[i..=end.min(tokens.len() - 1)] {
                *slot = true;
            }
        }
        i = close + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        audit_source(path, src)
            .iter()
            .map(|f| f.code.code())
            .collect()
    }

    #[test]
    fn wall_clock_fires_outside_but_not_inside_nondet() {
        let hot = "fn f() { let t = Instant::now(); }";
        assert_eq!(codes("a.rs", hot), ["CLR100"]);
        let marked = "\
fn f() {
    // clr-audit: nondet(begin) throughput reporting only
    let t = Instant::now();
    // clr-audit: nondet(end)
}";
        assert!(codes("a.rs", marked).is_empty());
    }

    #[test]
    fn hash_containers_are_exempt_in_tests() {
        let src = "\
use std::collections::BTreeMap;
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let s: std::collections::HashSet<u8> = Default::default(); let _ = s; }
}";
        assert!(codes("a.rs", src).is_empty());
        assert_eq!(codes("a.rs", "use std::collections::HashMap;"), ["CLR101"]);
    }

    #[test]
    fn cfg_not_test_is_still_live_code() {
        let src = "#[cfg(not(test))]\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        assert_eq!(codes("a.rs", src), ["CLR101", "CLR101"]);
    }

    #[test]
    fn decision_path_rules_are_path_scoped() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(codes("crates/moea/src/lib.rs", src).is_empty());
        assert_eq!(codes("crates/serve/src/engine.rs", src), ["CLR105"]);
        let in_test = "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }";
        assert!(codes("crates/serve/src/engine.rs", in_test).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }";
        assert!(codes("crates/serve/src/engine.rs", src).is_empty());
    }

    #[test]
    fn codec_casts_are_warns_and_path_scoped() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        assert!(codes("crates/serve/src/engine.rs", src).is_empty());
        let findings = audit_source("crates/obs/src/json.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, AuditCode::LossyCastInCodec);
        assert_eq!(findings[0].severity(), crate::codes::Severity::Warn);
        // Widening casts are fine even in codecs.
        assert!(codes("crates/obs/src/json.rs", "fn f(x: u32) -> u64 { x as u64 }").is_empty());
    }

    #[test]
    fn spawn_is_allowed_only_in_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(codes("crates/obs/src/lib.rs", src), ["CLR104"]);
        assert!(codes("crates/par/src/lib.rs", src).is_empty());
    }

    #[test]
    fn deprecated_method_calls_fire_anywhere() {
        assert_eq!(codes("a.rs", "fn f() { let _ = db.point(3); }"), ["CLR107"]);
        // Different identifiers sharing the suffix do not fire.
        assert!(codes("a.rs", "fn f() { let _ = t.initial_point(); }").is_empty());
        // The pre-DecisionInput RuntimePolicy shims are registered too —
        // call sites fire, the shim definitions themselves do not.
        assert_eq!(
            codes("a.rs", "fn f() { let _ = p.decide_scored(c, 0, s); }"),
            ["CLR107"]
        );
        assert_eq!(
            codes(
                "a.rs",
                "fn f() { let _ = p.decide_scored_from(c, 0, s, f); }"
            ),
            ["CLR107"]
        );
        assert!(codes("a.rs", "fn decide_scored(&mut self) {}").is_empty());
    }

    #[test]
    fn trailing_and_leading_allows_suppress_and_get_consumed() {
        let trailing = "fn f(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // clr-audit: allow(CLR102) exercising the API
}";
        assert!(codes("a.rs", trailing).is_empty());
        let leading = "fn f(v: &mut Vec<f64>) {
    // clr-audit: allow(CLR102) exercising the API
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}";
        assert!(codes("a.rs", leading).is_empty());
    }

    #[test]
    fn allows_never_suppress_a_different_code() {
        let src = "fn f(v: &mut Vec<f64>) {
    // clr-audit: allow(CLR103) wrong code named
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}";
        // The partial_cmp still fires, and the allow dangles.
        assert_eq!(codes("a.rs", src), ["CLR108", "CLR102"]);
    }

    #[test]
    fn dangling_reasonless_and_unbalanced_annotations_fire() {
        assert_eq!(
            codes(
                "a.rs",
                "// clr-audit: allow(CLR102) nothing here\nfn f() {}"
            ),
            ["CLR108"]
        );
        assert_eq!(
            codes("a.rs", "// clr-audit: allow(CLR102)\nfn f() {}"),
            ["CLR109"]
        );
        assert_eq!(
            codes(
                "a.rs",
                "// clr-audit: nondet(begin) forever open\nfn f() {}"
            ),
            ["CLR110"]
        );
        assert_eq!(
            codes("a.rs", "// clr-audit: nondet(end)\nfn f() {}"),
            ["CLR110"]
        );
    }

    #[test]
    fn hazards_inside_literals_and_docs_never_fire() {
        let src = r#"
/// Uses `partial_cmp` and `Instant::now()` — documentation only.
fn f() { let s = "HashMap::new() thread_rng()"; let _ = s; }
"#;
        assert!(codes("a.rs", src).is_empty());
    }
}
