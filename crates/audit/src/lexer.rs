//! A hand-rolled Rust lexer: just enough tokenization to scan source
//! for determinism hazards without false positives from comments,
//! strings, or char/lifetime ambiguity.
//!
//! The lexer is deliberately *not* a parser: it produces a flat token
//! stream (identifiers, numbers, single-character punctuation) plus the
//! line comments, with string/char/byte/raw-string literals and block
//! comments consumed and discarded. That is exactly the surface the
//! CLR1xx rules need — they match short token sequences like
//! `Instant :: now` or `. point (` — while guaranteeing that a hazard
//! word inside a string literal or a doc comment never fires a lint.

/// What kind of token was scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `as`, `HashMap`, ...).
    Ident,
    /// A numeric literal (value is never interpreted).
    Number,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// 1-based line the token starts on.
    pub line: usize,
    /// The token class.
    pub kind: TokenKind,
    /// The token text, borrowed from the source.
    pub text: &'a str,
}

/// One `//` line comment (block comments are discarded — annotations
/// are line-comment only, so a `/* clr-audit: ... */` can never be an
/// annotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comment<'a> {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The text after `//`, untrimmed.
    pub text: &'a str,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All code tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// All line comments in source order.
    pub comments: Vec<Comment<'a>>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and line comments.
pub fn lex(source: &str) -> Lexed<'_> {
    let mut out = Lexed::default();
    let bytes = source.as_bytes();
    let len = bytes.len();
    let mut i = 0usize;
    let mut line = 1usize;

    // Returns the char starting at byte `at`, if any.
    let char_at = |at: usize| source[at..].chars().next();

    while i < len {
        let Some(c) = char_at(i) else { break };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += c.len_utf8();
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let eol = source[i..].find('\n').map_or(len, |p| i + p);
                out.comments.push(Comment {
                    line,
                    text: &source[i + 2..eol],
                });
                i = eol; // the '\n' advances the line counter next round
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment; count newlines inside it.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < len && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                i = skip_string(source, i, &mut line);
            }
            '\'' => {
                i = skip_char_or_lifetime(source, i, &mut line);
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < len {
                    match char_at(j) {
                        Some(c) if is_ident_continue(c) => j += c.len_utf8(),
                        _ => break,
                    }
                }
                let word = &source[start..j];
                // String-ish prefixes: r"", r#""#, b"", br"", b'x', and
                // raw identifiers r#name.
                let next = if j < len { char_at(j) } else { None };
                match (word, next) {
                    ("r" | "b" | "br" | "rb", Some('"')) => {
                        i = skip_string(source, j, &mut line);
                    }
                    ("r" | "br" | "rb", Some('#')) => {
                        let mut hashes = 0usize;
                        let mut k = j;
                        while bytes.get(k) == Some(&b'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if bytes.get(k) == Some(&b'"') {
                            i = skip_raw_string(source, k, hashes, &mut line);
                        } else {
                            // A raw identifier `r#name`: emit the name.
                            let mut m = k;
                            while m < len {
                                match char_at(m) {
                                    Some(c) if is_ident_continue(c) => m += c.len_utf8(),
                                    _ => break,
                                }
                            }
                            out.tokens.push(Token {
                                line,
                                kind: TokenKind::Ident,
                                text: &source[k..m],
                            });
                            i = m;
                        }
                    }
                    ("b", Some('\'')) => {
                        // Byte char literal b'x' — always a literal.
                        i = skip_char_literal(source, j, &mut line);
                    }
                    _ => {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Ident,
                            text: word,
                        });
                        i = j;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i + 1;
                while j < len {
                    match char_at(j) {
                        Some('.') => {
                            // Stop before `.method` on a numeric/tuple
                            // receiver so `x.0.total_cmp(..)` keeps its
                            // method-call token shape.
                            match char_at(j + 1) {
                                Some(n) if is_ident_start(n) => break,
                                _ => j += 1,
                            }
                        }
                        Some(c) if c.is_ascii_alphanumeric() || c == '_' => j += 1,
                        _ => break,
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Number,
                    text: &source[start..j],
                });
                i = j;
            }
            c => {
                let end = i + c.len_utf8();
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Punct,
                    text: &source[i..end],
                });
                i = end;
            }
        }
    }
    out
}

/// Skips a `"`-delimited string starting at `open` (the quote), handling
/// `\"`/`\\` escapes and embedded newlines. Returns the index after the
/// closing quote.
fn skip_string(source: &str, open: usize, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips a raw string whose opening quote is at `quote`, closed by a
/// quote followed by `hashes` `#`s.
fn skip_raw_string(source: &str, quote: usize, hashes: usize, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    let mut j = quote + 1;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            j += 1;
        } else if bytes[j] == b'"' && bytes[j + 1..].iter().take(hashes).all(|&b| b == b'#') {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}

/// Skips a char literal starting at `open` (the `'`).
fn skip_char_literal(source: &str, open: usize, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Disambiguates `'` at `open`: a char literal is skipped, a lifetime is
/// consumed silently (lifetimes carry no lint signal).
fn skip_char_or_lifetime(source: &str, open: usize, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    let Some(next) = source[open + 1..].chars().next() else {
        return open + 1;
    };
    if next == '\\' {
        return skip_char_literal(source, open, line);
    }
    if is_ident_start(next) {
        // Scan the identifier after the quote; a closing quote right
        // after it means a char literal ('a'), anything else a lifetime.
        let mut j = open + 1;
        while j < bytes.len() {
            match source[j..].chars().next() {
                Some(c) if is_ident_continue(c) => j += c.len_utf8(),
                _ => break,
            }
        }
        if bytes.get(j) == Some(&b'\'') {
            return j + 1;
        }
        return j; // lifetime: skip `'name`, emit nothing
    }
    // Non-identifier char literal: '1', '(', ' ', multibyte chars.
    skip_char_literal(source, open, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_tokens() {
        let src = r###"
            // partial_cmp in a line comment
            /* HashMap in a /* nested */ block comment */
            let s = "Instant::now() in a string";
            let r = r#"thread_rng in a raw "string""#;
            let b = b"SystemTime bytes";
            let c = 'H';
            fn real_code() {}
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_code"));
        for hazard in [
            "partial_cmp",
            "HashMap",
            "Instant",
            "thread_rng",
            "SystemTime",
        ] {
            assert!(!ids.contains(&hazard), "{hazard} leaked out of a literal");
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let _ = c; x }";
        let ids = idents(src);
        // 'x' is a char literal (no `x` ident from it), but the fn body
        // identifiers survive.
        assert!(ids.contains(&"str"));
        assert!(!ids.contains(&"a"), "lifetime name leaked as ident");
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"two\nlines\";\nInstant";
        let lexed = lex(src);
        let instant = lexed.tokens.iter().find(|t| t.text == "Instant").unwrap();
        assert_eq!(instant.line, 3);
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let src = "fn f() {}\n// clr-audit: allow(CLR102) tested elsewhere\nfn g() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("clr-audit"));
    }

    #[test]
    fn tuple_field_method_calls_keep_their_shape() {
        let src = "a.0.partial_cmp(&b.0)";
        let texts: Vec<&str> = lex(src).tokens.iter().map(|t| t.text).collect();
        assert_eq!(
            texts,
            [
                "a",
                ".",
                "0",
                ".",
                "partial_cmp",
                "(",
                "&",
                "b",
                ".",
                "0",
                ")"
            ]
        );
    }

    #[test]
    fn raw_identifiers_emit_their_name() {
        let ids = idents("let r#type = 1; let rb = 2;");
        assert!(ids.contains(&"type"));
        assert!(ids.contains(&"rb"));
    }
}
