// Seeded violation: raw thread fan-out outside crates/par.
pub fn fan_out() {
    std::thread::spawn(|| {}).join().ok();
}
