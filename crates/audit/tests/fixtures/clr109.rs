// Seeded violation: an allow annotation without a justification.
// clr-audit: allow(CLR102)
pub fn undocumented() {}
