// Seeded violation: a randomized-iteration-order container in live code.
pub fn build_index() {
    let m: std::collections::HashMap<u8, u8> = Default::default();
    let _ = m;
}
