// Seeded violation: a float sort through partial_cmp.
pub fn sort_floats(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
