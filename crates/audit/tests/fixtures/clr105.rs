// Seeded violation: a panic in a decision path (the fixture test scans
// this file under a crates/chaos virtual path).
pub fn decide(x: Option<u8>) -> u8 {
    x.unwrap()
}
