// Seeded violation: a lossy cast in codec code (the fixture test scans
// this file under a codec virtual path).
pub fn pack(x: u64) -> u32 {
    x as u32
}
