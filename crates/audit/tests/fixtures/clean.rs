// A fixture with no findings: deterministic containers, total_cmp,
// and no annotations at all.
pub fn sort_floats(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

pub fn build_index() {
    let m: std::collections::BTreeMap<u8, u8> = Default::default();
    let _ = m;
}
