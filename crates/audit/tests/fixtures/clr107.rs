// Seeded violation: a call to the deprecated RuntimePolicy shim that
// predates the DecisionInput redesign.
pub fn legacy_decide(
    policy: &mut dyn clr_runtime::RuntimePolicy,
    ctx: &clr_runtime::RuntimeContext<'_>,
    spec: &clr_dse::QosSpec,
) {
    let _ = policy.decide_scored(ctx, 0, spec);
}
