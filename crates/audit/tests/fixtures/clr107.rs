// Seeded violation: a call to the deprecated DesignPointDb::point.
pub fn legacy_read(db: &clr_dse::DesignPointDb) {
    let _ = db.point(0);
}
