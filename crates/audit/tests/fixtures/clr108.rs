// Seeded violation: an allow annotation with nothing left to suppress.
// clr-audit: allow(CLR102) the comparator this once covered is gone
pub fn clean() {}
