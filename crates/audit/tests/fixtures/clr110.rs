// Seeded violation: a nondet section that never closes.
// clr-audit: nondet(begin) timing block that forgot its end marker
pub fn timed() {}
