// Seeded violation: a wall-clock read outside any nondet section.
pub fn elapsed_marker() {
    let _ = std::time::Instant::now();
}
