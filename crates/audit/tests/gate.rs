//! Runs the real `clr-audit` binary the same way `ci.sh` does and pins
//! the gate semantics: a seeded violation fails the process, a clean
//! file passes, `--json` emits machine-readable findings, and `list`
//! prints the whole registry.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clr-audit"))
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn seeded_violation_fails_the_gate() {
    let out = bin().arg(fixture("clr102.rs")).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "a deny finding must exit 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("CLR102"),
        "human output names the code: {stdout}"
    );
    assert!(
        stdout.contains("1 deny"),
        "summary counts the deny: {stdout}"
    );
}

#[test]
fn json_gate_reports_the_finding() {
    let out = bin()
        .arg("--json")
        .arg(fixture("clr102.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"code\":\"CLR102\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"deny\""), "{stdout}");
    assert!(stdout.contains("\"deny\":1"), "{stdout}");
}

#[test]
fn clean_file_passes_the_gate() {
    let out = bin().arg(fixture("clean.rs")).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "clean source must exit 0");
}

#[test]
fn warn_only_findings_do_not_fail_the_gate() {
    // CLR106 is path-scoped, so stage the fixture at a codec-relative
    // path and scan from there: the warn fires but the exit stays 0.
    let dir = std::env::temp_dir().join("clr-audit-gate-warn");
    let codec_dir = dir.join("crates/dse/src");
    std::fs::create_dir_all(&codec_dir).unwrap();
    std::fs::write(
        codec_dir.join("codec.rs"),
        include_str!("fixtures/clr106.rs"),
    )
    .unwrap();
    let out = bin()
        .current_dir(&dir)
        .arg("crates/dse/src/codec.rs")
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "warn-only must exit 0: {stdout}"
    );
    assert!(
        stdout.contains("CLR106") && stdout.contains("1 warn"),
        "{stdout}"
    );
}

#[test]
fn unknown_flags_and_missing_files_exit_2() {
    let out = bin().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().arg("no/such/file.rs").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_prints_the_whole_registry() {
    let out = bin().arg("list").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for code in clr_audit::AuditCode::ALL {
        assert!(stdout.contains(code.code()), "missing {}", code.code());
    }
}
