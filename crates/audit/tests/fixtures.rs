//! Every registered CLR1xx code has a seeded-violation fixture that
//! fires it exactly once — the registry can never grow a code without a
//! proof that the scanner actually detects it.

use clr_audit::{audit_source, AuditCode};

/// Audits a fixture under a virtual path (path-scoped rules need one)
/// and asserts exactly one finding with the expected code.
fn assert_fires_once(code: AuditCode, virtual_path: &str, source: &str) {
    let findings = audit_source(virtual_path, source);
    let hits: Vec<_> = findings.iter().filter(|f| f.code == code).collect();
    assert_eq!(
        hits.len(),
        1,
        "{} should fire exactly once in {virtual_path}, got {findings:?}",
        code.code()
    );
    assert_eq!(
        findings.len(),
        1,
        "fixture for {} must seed no other finding, got {findings:?}",
        code.code()
    );
    assert_eq!(hits[0].path, virtual_path);
    assert!(hits[0].line > 0);
}

#[test]
fn clr100_wall_clock() {
    assert_fires_once(
        AuditCode::WallClock,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr100.rs"),
    );
}

#[test]
fn clr101_unordered_container() {
    assert_fires_once(
        AuditCode::UnorderedContainer,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr101.rs"),
    );
}

#[test]
fn clr102_partial_cmp() {
    assert_fires_once(
        AuditCode::PartialCmpOnFloats,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr102.rs"),
    );
}

#[test]
fn clr103_unseeded_rng() {
    assert_fires_once(
        AuditCode::UnseededRng,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr103.rs"),
    );
}

#[test]
fn clr104_raw_thread_spawn() {
    assert_fires_once(
        AuditCode::RawThreadSpawn,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr104.rs"),
    );
}

#[test]
fn clr105_panic_in_decision_path() {
    // Fires only under a decision-path virtual location.
    let source = include_str!("fixtures/clr105.rs");
    assert!(audit_source("crates/x/src/lib.rs", source).is_empty());
    assert_fires_once(
        AuditCode::PanicInDecisionPath,
        "crates/chaos/src/injector.rs",
        source,
    );
}

#[test]
fn clr106_lossy_cast_in_codec() {
    // Fires only under a codec virtual location.
    let source = include_str!("fixtures/clr106.rs");
    assert!(audit_source("crates/x/src/lib.rs", source).is_empty());
    assert_fires_once(
        AuditCode::LossyCastInCodec,
        "crates/dse/src/codec.rs",
        source,
    );
}

#[test]
fn clr107_deprecated_api() {
    assert_fires_once(
        AuditCode::DeprecatedApi,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr107.rs"),
    );
}

#[test]
fn clr108_dangling_allow() {
    assert_fires_once(
        AuditCode::DanglingAllow,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr108.rs"),
    );
}

#[test]
fn clr109_malformed_annotation() {
    assert_fires_once(
        AuditCode::MalformedAnnotation,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr109.rs"),
    );
}

#[test]
fn clr110_unbalanced_nondet() {
    assert_fires_once(
        AuditCode::UnbalancedNondetSection,
        "crates/x/src/lib.rs",
        include_str!("fixtures/clr110.rs"),
    );
}

#[test]
fn every_registered_code_has_a_fixture_test() {
    // The fixture files are named after the codes; this meta-check keeps
    // the set in lockstep with the registry so a new code cannot land
    // without a seeded proof.
    let fixture_names = [
        "clr100.rs",
        "clr101.rs",
        "clr102.rs",
        "clr103.rs",
        "clr104.rs",
        "clr105.rs",
        "clr106.rs",
        "clr107.rs",
        "clr108.rs",
        "clr109.rs",
        "clr110.rs",
    ];
    assert_eq!(fixture_names.len(), AuditCode::ALL.len());
    for (name, code) in fixture_names.iter().zip(AuditCode::ALL) {
        assert_eq!(*name, format!("{}.rs", code.code().to_lowercase()));
    }
}

#[test]
fn clean_fixture_is_clean() {
    assert!(audit_source("crates/x/src/lib.rs", include_str!("fixtures/clean.rs")).is_empty());
}
