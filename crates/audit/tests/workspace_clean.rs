//! The dogfood gate: the workspace that ships this analyzer is itself
//! audit-clean, with an empty baseline.

use std::path::Path;

use clr_audit::{audit_workspace, Baseline};

#[test]
fn the_workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned() > 100, "walker found the workspace");
    assert!(
        report.findings().is_empty(),
        "the tree must stay audit-clean:\n{}",
        report.render_human()
    );
}

#[test]
fn the_checked_in_baseline_is_empty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("audit.baseline")).expect("baseline exists");
    let baseline = Baseline::from_text(&text).expect("baseline parses");
    assert!(
        baseline.is_empty(),
        "nothing is grandfathered — fix findings instead of baselining them"
    );
}
