//! Properties of the suppression machinery: annotations render/parse as
//! a lossless round trip, and an `allow` never suppresses a different
//! code than the one it names.

use clr_audit::{audit_source, parse_comment, Annotation, AuditCode};
use proptest::prelude::*;

/// Maps a draw onto one of the suppressible (non-meta) codes.
fn non_meta_code(idx: usize) -> AuditCode {
    let pool: Vec<AuditCode> = AuditCode::ALL
        .iter()
        .copied()
        .filter(|c| !c.is_meta())
        .collect();
    pool[idx % pool.len()]
}

proptest! {
    #[test]
    fn allow_annotations_render_parse_round_trip(idx in 0usize..64, n in 0u32..1_000_000) {
        let annotation = Annotation::Allow {
            code: non_meta_code(idx),
            reason: format!("justification-{n}"),
        };
        let parsed = parse_comment(&annotation.render()).unwrap().unwrap();
        prop_assert_eq!(parsed, annotation);
    }

    #[test]
    fn nondet_annotations_render_parse_round_trip(n in 0u32..1_000_000) {
        let begin = Annotation::NondetBegin {
            reason: format!("timing-block-{n}"),
        };
        prop_assert_eq!(parse_comment(&begin.render()).unwrap().unwrap(), begin);
        prop_assert_eq!(
            parse_comment(&Annotation::NondetEnd.render()).unwrap().unwrap(),
            Annotation::NondetEnd
        );
    }

    #[test]
    fn an_allow_suppresses_only_the_code_it_names(idx in 0usize..64, n in 0u32..1_000_000) {
        let named = non_meta_code(idx);
        // One seeded CLR102 violation, guarded by allow(<named>).
        let source = format!(
            "fn f(v: &mut Vec<f64>) {{\n    \
             // clr-audit: allow({}) reason-{n}\n    \
             v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}}\n",
            named.code()
        );
        let fired: Vec<&str> = audit_source("crates/x/src/lib.rs", &source)
            .iter()
            .map(|f| f.code.code())
            .collect();
        if named == AuditCode::PartialCmpOnFloats {
            prop_assert!(
                fired.is_empty(),
                "allow(CLR102) must suppress the seeded violation, got {fired:?}"
            );
        } else {
            // The violation survives, and the mismatched allow dangles.
            prop_assert_eq!(
                &fired,
                &["CLR108", "CLR102"],
                "allow({}) must not touch CLR102",
                named.code()
            );
        }
    }
}
