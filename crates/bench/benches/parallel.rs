//! Serial vs parallel wall-clock comparison of the four fan-out sites the
//! `clr-par` worker pool wires up: MOEA population evaluation (HvGA and
//! NSGA-II on the CLR mapping problem), Monte-Carlo replications, and
//! fault-injection campaigns. Every site is bit-identical across thread
//! counts, so these benches measure pure wall-clock — the `threads=1` and
//! `threads=N` rows of each group must agree on their outputs and differ
//! only in time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clr_core::prelude::*;
use clr_core::runtime::simulate_replications;

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn graph_of(n: usize) -> TaskGraph {
    TgffGenerator::new(TgffConfig::with_tasks(n)).generate(n as u64)
}

/// HvGA population evaluation on the CLR mapping problem (Eq. 5 loop).
fn hvga_evaluation(c: &mut Criterion) {
    let platform = Platform::dac19();
    let graph = graph_of(30);
    let mut group = c.benchmark_group("hvga_eval_30_tasks");
    for threads in THREAD_COUNTS {
        let problem = ClrMappingProblem::new(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            ExplorationMode::Csp,
        );
        let params = GaParams {
            threads,
            ..GaParams::small()
        };
        // Generous QoS box over the CSP-mode objective pair.
        let reference = vec![1e6, 1e6];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, _| {
                b.iter(|| black_box(HvGa::new(problem.clone(), params, reference.clone()).run(1)));
            },
        );
    }
    group.finish();
}

/// NSGA-II population evaluation on the CLR mapping problem.
fn nsga2_evaluation(c: &mut Criterion) {
    let platform = Platform::dac19();
    let graph = graph_of(30);
    let mut group = c.benchmark_group("nsga2_eval_30_tasks");
    for threads in THREAD_COUNTS {
        let problem = ClrMappingProblem::new(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            ExplorationMode::Csp,
        );
        let params = GaParams {
            threads,
            ..GaParams::small()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, _| {
                b.iter(|| black_box(Nsga2::new(problem.clone(), params).run(1)));
            },
        );
    }
    group.finish();
}

/// Independent Monte-Carlo replications of the run-time simulation.
fn mc_replications(c: &mut Criterion) {
    let platform = Platform::dac19();
    let graph = graph_of(15);
    let cfg = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Csp,
        reference: None,
        max_points: None,
    };
    let db = explore_based(
        &graph,
        &platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        &cfg,
        15,
    );
    let ctx = RuntimeContext::new(&graph, &platform, &db);
    let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
    let sim_cfg = SimConfig::quick(5);
    let mut group = c.benchmark_group("mc_replications_x8");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, &t| {
                b.iter(|| {
                    black_box(simulate_replications(
                        &ctx,
                        |_| UraPolicy::new(0.5).unwrap(),
                        &qos,
                        &sim_cfg,
                        8,
                        t,
                    ))
                });
            },
        );
    }
    group.finish();
}

/// Fault-injection campaign over many derived per-trial RNG streams.
fn injection_campaign(c: &mut Criterion) {
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let im = &graph.implementations(1.into())[0];
    let ty = &platform.pe_types()[0];
    let cfg = ClrConfig::new(
        HwMethod::PartialTmr,
        SswMethod::Retry { max_retries: 2 },
        AswMethod::Checksum,
    );
    let injector = FaultInjector::new(im, ty, cfg, FaultModel::new(2e-3, 1e6, 1.0));
    let mut group = c.benchmark_group("fault_injection_100k");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, &t| {
                b.iter(|| black_box(injector.estimate_with_threads(100_000, 7, t)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    hvga_evaluation,
    nsga2_evaluation,
    mc_replications,
    injection_campaign
);
criterion_main!(benches);
