//! Micro-benchmarks of the substrates: scheduler, task-metric evaluation,
//! reconfiguration distance, hyper-volume and the run-time decision loop.
//! These are the per-operation costs the design-time GA and the run-time
//! Monte-Carlo simulations multiply by millions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clr_core::prelude::*;
use clr_core::{DbChoice, HybridFlow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graph_of(n: usize) -> TaskGraph {
    TgffGenerator::new(TgffConfig::with_tasks(n)).generate(n as u64)
}

/// Full mapping evaluation (Table-2 metrics + list schedule + Table-3
/// aggregation) — the GA's inner loop.
fn evaluate_mapping(c: &mut Criterion) {
    let platform = Platform::dac19();
    let mut group = c.benchmark_group("evaluate_mapping");
    for n in [10usize, 50, 100] {
        let graph = graph_of(n);
        let eval = Evaluator::new(&graph, &platform, FaultModel::default());
        let mapping = Mapping::first_fit(&graph, &platform).expect("maps");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eval.evaluate(&mapping)));
        });
    }
    group.finish();
}

/// Reconfiguration-distance computation between two mappings.
fn reconfig_distance(c: &mut Criterion) {
    let platform = Platform::dac19();
    let graph = graph_of(100);
    let a = Mapping::first_fit(&graph, &platform).expect("maps");
    let mut b_map = a.clone();
    let mut rng = StdRng::seed_from_u64(1);
    for gene in b_map.genes_mut() {
        if rng.gen_bool(0.3) {
            gene.priority ^= 1;
        }
    }
    c.bench_function("reconfiguration_cost_100_tasks", |bch| {
        bch.iter(|| black_box(reconfiguration_cost(&graph, &platform, &a, &b_map)));
    });
}

/// Task-level CLR metric evaluation (the reliability model).
fn task_metrics(c: &mut Criterion) {
    let platform = Platform::dac19();
    let graph = jpeg_encoder();
    let im = &graph.implementations(1.into())[0];
    let ty = &platform.pe_types()[0];
    let fm = FaultModel::default();
    let cfg = ClrConfig::new(
        HwMethod::PartialTmr,
        SswMethod::Retry { max_retries: 2 },
        AswMethod::Checksum,
    );
    c.bench_function("task_metrics_evaluate", |b| {
        b.iter(|| black_box(TaskMetrics::evaluate(im, ty, &cfg, &fm)));
    });
}

/// Exact hyper-volume of growing 3-D fronts.
fn hypervolume_fronts(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypervolume_3d");
    let mut rng = StdRng::seed_from_u64(2);
    for size in [10usize, 50, 100] {
        let pts: Vec<Vec<f64>> = (0..size)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let reference = vec![1.1, 1.1, 1.1];
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(clr_core::moea::hypervolume(&pts, &reference)));
        });
    }
    group.finish();
}

/// One uRA decision over a realistic stored database.
fn ura_decision(c: &mut Criterion) {
    let graph = graph_of(20);
    let platform = Platform::dac19();
    let flow = HybridFlow::builder(&graph, &platform)
        .ga(GaParams::small())
        .seed(3)
        .run();
    let ctx = flow.context(DbChoice::Based);
    let policy = UraPolicy::new(0.5).expect("valid p_rc");
    let spec = QosSpec::new(f64::INFINITY, 0.0);
    c.bench_function("ura_decision", |b| {
        b.iter(|| black_box(policy.select(&ctx, 0, &spec)));
    });
}

/// The list scheduler alone.
fn scheduler(c: &mut Criterion) {
    let platform = Platform::dac19();
    let mut group = c.benchmark_group("list_schedule");
    for n in [10usize, 50, 100] {
        let graph = graph_of(n);
        let mapping = Mapping::first_fit(&graph, &platform).expect("maps");
        let times: Vec<f64> = graph.task_ids().map(|t| 10.0 + t.index() as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(list_schedule(&graph, &mapping, &times)));
        });
    }
    group.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets =
        evaluate_mapping,
        reconfig_distance,
        task_metrics,
        hypervolume_fronts,
        ura_decision,
        scheduler,
}
criterion_main!(substrates);
