//! Overhead of the observability layer: each group runs the same kernel
//! with a disabled handle (the production default) and with a JSON
//! journal attached. The disabled rows must stay within noise of the
//! pre-observability baseline — the acceptance bar is <5% regression —
//! while the enabled rows price the journal itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clr_core::prelude::*;
use clr_experiments::kernels::{csp_migration_comparison, Bundle};
use clr_experiments::Env;
use clr_obs::{Obs, ObsMode};

/// The quick-scale environment with the given observability handle.
fn env_with(obs: Obs) -> Env {
    let mut e = Env::quick();
    e.obs = obs;
    e
}

/// Table4-style CSP comparison (DSE + two instrumented simulations), obs
/// off vs. on.
fn csp_comparison_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_csp_comparison");
    group.sample_size(10);
    for (label, mode) in [("off", ObsMode::Off), ("json", ObsMode::Json)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                // A fresh handle per iteration so the journal does not
                // grow across samples and skew later ones.
                let e = env_with(Obs::new(mode));
                let bundle = Bundle::new(&e, 10);
                black_box(csp_migration_comparison(&e, &bundle, 0))
            });
        });
    }
    group.finish();
}

/// A bare Monte-Carlo simulation (the hottest instrumented loop), obs off
/// vs. on.
fn simulate_overhead(c: &mut Criterion) {
    let e = Env::quick();
    let bundle = Bundle::new(&e, 10);
    let flow = bundle.flow(&e, ExplorationMode::Csp);
    let ctx = flow.context(clr_core::DbChoice::Based);
    let qos = flow.qos_model(clr_core::DbChoice::Based);
    let config = e.sim_config(7);
    let mut group = c.benchmark_group("obs_simulate");
    for (label, mode) in [("off", ObsMode::Off), ("json", ObsMode::Json)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let obs = Obs::new(mode);
                let mut policy = UraPolicy::new(0.5).expect("valid p_rc");
                black_box(simulate_obs(
                    &ctx,
                    &mut policy,
                    &qos,
                    &config,
                    &obs,
                    "bench",
                ))
            });
        });
    }
    group.finish();
}

/// Journal rendering: encode the accumulated events of one instrumented
/// run to JSONL bytes.
fn render_overhead(c: &mut Criterion) {
    let e = env_with(Obs::new(ObsMode::Json));
    let bundle = Bundle::new(&e, 10);
    let _ = csp_migration_comparison(&e, &bundle, 0);
    c.bench_function("obs_render_det_jsonl", |b| {
        b.iter(|| black_box(e.obs.render_det_jsonl()));
    });
}

criterion_group!(
    benches,
    csp_comparison_overhead,
    simulate_overhead,
    render_overhead
);
criterion_main!(benches);
