//! One Criterion benchmark per table/figure of the paper's evaluation.
//!
//! Each bench runs the corresponding experiment kernel at the `quick`
//! scale (tiny GA budgets, 20 k simulated cycles) so the whole suite
//! completes in minutes; the experiment *binaries* regenerate the actual
//! tables at reduced or full (`CLR_FULL=1`) scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clr_experiments::kernels::{
    aura_vs_ura, csp_design_points, csp_migration_comparison, motivation, prc_sweep, red_vs_based,
    Bundle,
};
use clr_experiments::Env;

fn env() -> Env {
    Env::quick()
}

/// Fig. 1 — motivation: HW-Only vs CLR1 vs CLR2 fronts + J_avg bars.
fn fig1_motivation(c: &mut Criterion) {
    let e = env();
    let bundle = Bundle::new(&e, 10);
    c.bench_function("fig1_motivation", |b| {
        b.iter(|| black_box(motivation(&e, &bundle)));
    });
}

/// Table 4 — migration-cost reduction, ReD over BaseD (CSP, R = 0).
fn table4_csp_migration(c: &mut Criterion) {
    let e = env();
    let mut group = c.benchmark_group("table4_csp_migration");
    group.sample_size(10);
    for &n in &e.task_counts {
        let bundle = Bundle::new(&e, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(csp_migration_comparison(&e, &bundle, 0)));
        });
    }
    group.finish();
}

/// Fig. 5 — Pareto front + additional reconfiguration-cost-aware points.
fn fig5_front(c: &mut Criterion) {
    let e = env();
    let bundle = Bundle::new(&e, 20);
    c.bench_function("fig5_front", |b| {
        b.iter(|| black_box(csp_design_points(&e, &bundle)));
    });
}

/// Fig. 6 — dRC traces over the first 50 QoS changes.
fn fig6_trace(c: &mut Criterion) {
    let e = env();
    let bundle = Bundle::new(&e, 20);
    c.bench_function("fig6_trace", |b| {
        b.iter(|| black_box(csp_migration_comparison(&e, &bundle, 50)));
    });
}

/// Table 5 — p_RC = 0 vs p_RC = 1 trade-off on a single database.
fn table5_tradeoff(c: &mut Criterion) {
    let e = env();
    let bundle = Bundle::new(&e, 20);
    c.bench_function("table5_tradeoff", |b| {
        b.iter(|| black_box(prc_sweep(&e, &bundle, &[0.0, 1.0])));
    });
}

/// Fig. 7 — full p_RC sweep.
fn fig7_prc_sweep(c: &mut Criterion) {
    let e = env();
    let bundle = Bundle::new(&e, 20);
    let p_rcs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    c.bench_function("fig7_prc_sweep", |b| {
        b.iter(|| black_box(prc_sweep(&e, &bundle, &p_rcs)));
    });
}

/// Table 6 — ReD vs BaseD at the p_RC extremes.
fn table6_red_vs_based(c: &mut Criterion) {
    let e = env();
    let bundle = Bundle::new(&e, 20);
    c.bench_function("table6_red_vs_based", |b| {
        b.iter(|| {
            black_box(red_vs_based(&e, &bundle, 0.0));
            black_box(red_vs_based(&e, &bundle, 1.0));
        });
    });
}

/// Table 7 — AuRA vs uRA at the p_RC extremes.
fn table7_aura_vs_ura(c: &mut Criterion) {
    let e = env();
    let bundle = Bundle::new(&e, 20);
    c.bench_function("table7_aura_vs_ura", |b| {
        b.iter(|| {
            black_box(aura_vs_ura(&e, &bundle, 0.0));
            black_box(aura_vs_ura(&e, &bundle, 1.0));
        });
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets =
        fig1_motivation,
        table4_csp_migration,
        fig5_front,
        fig6_trace,
        table5_tradeoff,
        fig7_prc_sweep,
        table6_red_vs_based,
        table7_aura_vs_ura,
}
criterion_main!(paper);
