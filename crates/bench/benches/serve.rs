//! Serving-layer benches: indexed vs linear feasibility queries over
//! stored databases, and multi-tenant replay throughput across worker
//! counts.
//!
//! The feasibility group is the tentpole comparison: the
//! `FeasibilityIndex` answers `feasible(spec)` in O(log n + k) against
//! the O(n) linear scan, returning exactly the same index set (a proptest
//! law in `clr-dse`), so the two rows differ only in time. The replay
//! group measures engine throughput; its outputs are bit-identical at
//! every thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clr_core::dse::{DesignPoint, FeasibilityIndex, PointOrigin};
use clr_core::prelude::*;
use clr_core::sched::SystemMetrics;
use clr_core::serve::{generate_trace, replay, PolicySpec, ReplayConfig, Tenant};
use clr_experiments::kernels::Bundle;
use clr_experiments::Env;

/// Deterministic pseudo-random database of `n` stored points with metric
/// spreads comparable to an explored BaseD artifact.
fn synthetic_db(n: usize) -> DesignPointDb {
    let mut db = DesignPointDb::new("bench");
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        db.push(DesignPoint::new(
            Mapping::new(vec![]),
            SystemMetrics {
                makespan: 50.0 + 150.0 * next(),
                reliability: 0.5 + 0.5 * next(),
                energy: 1.0 + next(),
                peak_power: 1.0 + next(),
                mean_mttf: 100.0 + 100.0 * next(),
            },
            PointOrigin::Pareto,
        ));
    }
    db
}

/// A spread of requirements from very tight to very lax, so both query
/// paths see every selectivity regime.
fn spec_sweep() -> Vec<QosSpec> {
    let mut specs = Vec::new();
    for i in 0..8 {
        let s_max = 40.0 + 25.0 * f64::from(i);
        for j in 0..4 {
            let f_min = 0.45 + 0.15 * f64::from(j);
            specs.push(QosSpec::new(s_max, f_min));
        }
    }
    specs
}

/// Indexed vs linear `feasible(spec)` on 1k- and 4k-point databases.
fn feasibility_query(c: &mut Criterion) {
    let specs = spec_sweep();
    for n in [1_000usize, 4_000] {
        let db = synthetic_db(n);
        let index = FeasibilityIndex::new(&db);
        let mut group = c.benchmark_group(&format!("feasibility_{n}_points"));
        let mut buf: Vec<usize> = Vec::new();
        group.bench_function("indexed", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for spec in &specs {
                    index.query_into(spec, &mut buf);
                    total += buf.len();
                }
                black_box(total)
            });
        });
        group.bench_function("linear", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for spec in &specs {
                    db.feasible_indices_into(spec, &mut buf);
                    total += buf.len();
                }
                black_box(total)
            });
        });
        group.finish();
    }
}

/// Multi-tenant replay throughput at 1/4/8 worker threads.
fn replay_throughput(c: &mut Criterion) {
    let env = Env::quick();
    let fleet_spec: [(&str, usize, PolicySpec); 3] = [
        ("cam", 8, PolicySpec::Ura { p_rc: 0.8 }),
        (
            "nav",
            10,
            PolicySpec::Aura {
                p_rc: 0.5,
                gamma: 0.6,
                alpha: 0.1,
            },
        ),
        ("audio", 12, PolicySpec::Hv),
    ];
    let mut tenants = Vec::new();
    for (name, n, policy) in fleet_spec {
        let bundle = Bundle::new(&env, n);
        let db = bundle.flow(&env, ExplorationMode::Full).based().clone();
        tenants.push(
            Tenant::from_parts(name, bundle.graph, bundle.platform, db, policy)
                .expect("explored databases are non-empty"),
        );
    }
    let trace = generate_trace(&tenants, 1, 50_000.0, 50.0);
    let mut group = c.benchmark_group(&format!("serve_replay_{}_events", trace.len()));
    for threads in [1usize, 4, 8] {
        let config = ReplayConfig {
            threads,
            ..ReplayConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, _| {
                b.iter(|| black_box(replay(&tenants, &trace, &config).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, feasibility_query, replay_throughput);
criterion_main!(benches);
