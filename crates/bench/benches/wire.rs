//! `CLRWIRE1` wire-protocol benches, modeled on kimberlite's kmb-bench
//! wire suite: frame encode and decode across payload sizes from the
//! realistic small request (~64 B on the wire) up to the 16 KiB frames
//! a batched client can pipeline, plus a response round-trip carrying a
//! full `DecisionRecord`.
//!
//! The codec is pure (no I/O): encode allocates the frame buffer,
//! decode validates magic/version/kind/reserved bytes, the declared
//! length, and the FNV-1a checksum before touching the payload. These
//! benches track the per-frame overhead the `clr-served` transport adds
//! on top of the decision engine itself — `BENCH_serve.json` (the
//! `serve_load` harness) reports the combined number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clr_core::prelude::*;
use clr_core::serve::wire::{ErrorFrame, Frame, Request, Response};
use clr_core::serve::{DecisionRecord, ServeStatus};

/// A request frame padded (via its tenant name, the only variable-width
/// request field) so the encoded frame is close to `size` bytes.
fn request_of_size(size: usize) -> Frame {
    // header 32 B + seq/time/s_max/f_min 32 B + name length prefix 2 B.
    let name_len = size.saturating_sub(66).max(2);
    Frame::Request(Request {
        seq: 7,
        tenant: "t".repeat(name_len),
        time: 1_234.5,
        spec: QosSpec::new(150.0, 0.75),
    })
}

/// An error frame padded via its message, for the large-frame regime —
/// the other variable-width payload the daemon emits.
fn error_of_size(size: usize) -> Frame {
    Frame::Error(ErrorFrame {
        seq: 9,
        message: "x".repeat(size.saturating_sub(42).max(2)),
    })
}

/// A realistic response frame: short tenant name, full decision record.
fn response() -> Frame {
    Frame::Response(Response {
        seq: 42,
        tenant: "cam0".into(),
        decision: DecisionRecord {
            event: 42,
            time: 4_242.0,
            spec: QosSpec::new(120.0, 0.8),
            feasible: 17,
            from: 3,
            to: 5,
            drc: 0.25,
            score: Some(0.9),
            p_rc: Some(0.5),
            violated: false,
            status: ServeStatus::Normal,
            fault: None,
        },
    })
}

/// Encode throughput at 64 B, 1 KiB and 16 KiB frames.
fn frame_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_frame_encode");
    for size in [64usize, 1_024, 16 * 1_024] {
        let frame = request_of_size(size);
        group.bench_with_input(BenchmarkId::new("request", size), &frame, |b, frame| {
            b.iter(|| black_box(frame.to_bytes()));
        });
        let frame = error_of_size(size);
        group.bench_with_input(BenchmarkId::new("error", size), &frame, |b, frame| {
            b.iter(|| black_box(frame.to_bytes()));
        });
    }
    group.bench_function("response", |b| {
        let frame = response();
        b.iter(|| black_box(frame.to_bytes()));
    });
    group.finish();
}

/// Decode (validate + parse) throughput at the same sizes.
fn frame_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_frame_decode");
    for size in [64usize, 1_024, 16 * 1_024] {
        let bytes = request_of_size(size).to_bytes();
        group.bench_with_input(BenchmarkId::new("request", size), &bytes, |b, bytes| {
            b.iter(|| black_box(Frame::from_bytes(bytes).unwrap()));
        });
    }
    group.bench_function("response", |b| {
        let bytes = response().to_bytes();
        b.iter(|| black_box(Frame::from_bytes(&bytes).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, frame_encode, frame_decode);
criterion_main!(benches);
