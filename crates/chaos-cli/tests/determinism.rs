//! End-to-end chaos-campaign properties: survival at the default fault
//! rate, byte-identical outputs across thread counts, and — via
//! proptest — bit-identical chaos replays for *arbitrary* fault plans.
//!
//! The preset fleet is expensive to explore (three small-GA runs), so
//! all tests share one lazily built copy.

use std::sync::OnceLock;

use clr_chaos::{FaultKind, FaultPlan, FaultRates};
use clr_chaos_cli::{
    campaign_csv, preset_fleet, pristine_tenants, run_campaign, CampaignConfig, PresetTenant,
};
use clr_obs::{Obs, ObsMode};
use clr_serve::{generate_trace, replay, ReplayConfig, Trace};
use proptest::prelude::*;

fn fleet() -> &'static [PresetTenant] {
    static FLEET: OnceLock<Vec<PresetTenant>> = OnceLock::new();
    FLEET.get_or_init(preset_fleet)
}

fn trace_text() -> &'static str {
    static TRACE: OnceLock<String> = OnceLock::new();
    TRACE.get_or_init(|| {
        let tenants = pristine_tenants(fleet()).unwrap();
        generate_trace(&tenants, 1, 20_000.0, 100.0).to_jsonl()
    })
}

/// Runs a campaign and returns its two byte-comparable outputs: the CSV
/// document and the deterministic journal section.
fn campaign_outputs(config: &CampaignConfig) -> (String, String) {
    let obs = Obs::new(ObsMode::Json);
    let rows = run_campaign(fleet(), config, &obs).unwrap();
    (campaign_csv(&rows), obs.render_det_jsonl())
}

#[test]
fn campaign_is_byte_identical_across_thread_counts() {
    let serial = campaign_outputs(&CampaignConfig {
        threads: 1,
        ..CampaignConfig::default()
    });
    let parallel = campaign_outputs(&CampaignConfig {
        threads: 8,
        ..CampaignConfig::default()
    });
    assert_eq!(serial.0, parallel.0, "campaign CSVs diverged");
    assert_eq!(serial.1, parallel.1, "campaign journals diverged");
}

#[test]
fn default_campaign_survives_with_many_kinds_exercised() {
    let obs = Obs::new(ObsMode::Json);
    let rows = run_campaign(fleet(), &CampaignConfig::default(), &obs).unwrap();
    // One cell per fault kind plus the combined cell.
    assert_eq!(rows.len(), FaultKind::ALL.len() + 1);
    for row in &rows {
        assert!(row.events > 0, "cell {} routed no events", row.cell);
        assert!(
            row.survival() >= 0.95,
            "cell {} served only {:.1}% of events",
            row.cell,
            100.0 * row.survival()
        );
        assert_eq!(
            row.absorbed, row.injected,
            "cell {} left faults unabsorbed",
            row.cell
        );
    }
    let exercised = rows.iter().filter(|r| r.injected > 0).count();
    assert!(
        exercised >= 4,
        "only {exercised} cells injected any faults at the default rate"
    );
    let all = rows.last().unwrap();
    assert_eq!(all.cell, "all@default");
    assert!(all.injected > 0 && all.degraded > 0);
    // The campaign CSV round-trips through the shared parser.
    let parsed = clr_chaos::parse_campaign_csv(&campaign_csv(&rows)).unwrap();
    assert_eq!(parsed, rows);
}

#[test]
fn heavy_snapshot_damage_is_retried_and_absorbed() {
    let obs = Obs::off();
    let rows = run_campaign(
        fleet(),
        &CampaignConfig {
            rate: 0.7,
            threads: 1,
            ..CampaignConfig::default()
        },
        &obs,
    )
    .unwrap();
    for kind in [FaultKind::SnapshotBitFlip, FaultKind::SnapshotTruncate] {
        let row = rows.iter().find(|r| r.kind == kind.name()).unwrap();
        assert!(
            row.injected > 0,
            "cell {} injected nothing at 70%",
            row.cell
        );
        assert!(row.retries > 0, "cell {} never retried a decode", row.cell);
        // Snapshot damage is fully absorbed at load time: every event is
        // still served from a decoded or last-known-good snapshot.
        assert_eq!(row.served, row.events, "cell {}", row.cell);
    }
    let malformed = rows
        .iter()
        .find(|r| r.kind == FaultKind::TraceMalformed.name())
        .unwrap();
    assert!(malformed.skipped > 0 || malformed.injected > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: for an *arbitrary* fault plan — any seed,
    /// any rate, any subset of kinds armed — the chaos replay is
    /// bit-identical at 1 and 8 worker threads.
    #[test]
    fn any_fault_plan_replays_bit_identically(
        seed in 0u64..1024,
        rate in 0.0f64..0.35,
        mask in 1u8..128,
    ) {
        let mut rates = FaultRates::zero();
        for (bit, kind) in FaultKind::ALL.into_iter().enumerate() {
            if mask & (1 << bit) != 0 {
                *rates.rate_mut(kind) = rate;
            }
        }
        let plan = FaultPlan::new(seed, rates).unwrap();
        let tenants = pristine_tenants(fleet()).unwrap();
        let trace = Trace::from_jsonl(trace_text()).unwrap();
        let config = |threads| ReplayConfig {
            threads,
            faults: plan,
            ..ReplayConfig::default()
        };
        let serial = replay(&tenants, &trace, &config(1)).unwrap();
        let parallel = replay(&tenants, &trace, &config(8)).unwrap();
        prop_assert_eq!(serial.decisions_csv(), parallel.decisions_csv());
        prop_assert!(serial == parallel, "reports diverged for plan {:?}", plan);
    }
}
