//! `clr-chaos` — seeded fault-injection campaigns for the serve path.
//!
//! ```text
//! clr-chaos plan --seed N [--all R] [--rate KIND=R].. [--out FILE]
//! clr-chaos inject --plan FILE (--snapshot IN | --trace IN) --out FILE
//!                  [--attempt A]
//! clr-chaos campaign [--out-dir DIR] [--seed N] [--rate R] [--cycles C]
//!                    [--mean-gap G] [--threads N] [--quarantine-after K]
//! clr-chaos report <campaign.csv>
//! ```
//!
//! `plan` writes a fault plan in the `clr-fault-plan v1` text codec;
//! `inject` applies a plan's snapshot or trace faults to one artifact on
//! disk (for fixture-building and manual poking); `campaign` runs the
//! full grid over the built-in preset fleet, writing `campaign.csv` plus
//! a `campaign.obs.jsonl` journal into `--out-dir` (CSV to stdout when
//! no directory is given); `report` renders a campaign CSV as a
//! per-layer survival table.
//!
//! Exit codes: `0` success, `1` campaign/serving failure, `2` usage / IO
//! / decode error.

use std::process::ExitCode;

use clr_chaos::{
    corrupt_snapshot_bytes, corrupt_trace, parse_campaign_csv, FaultKind, FaultPlan, FaultRates,
};
use clr_chaos_cli::{campaign_csv, preset_fleet, run_campaign, CampaignConfig};
use clr_obs::{Obs, ObsMode};

const USAGE: &str = "usage: clr-chaos <command>
  plan --seed N [--all R] [--rate KIND=R].. [--out FILE]
  inject --plan FILE (--snapshot IN | --trace IN) --out FILE [--attempt A]
  campaign [--out-dir DIR] [--seed N] [--rate R] [--cycles C] [--mean-gap G]
           [--threads N] [--quarantine-after K]
  report <campaign.csv>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "plan" => cmd_plan(&args[1..]),
        "inject" => cmd_inject(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "report" => cmd_report(&args[1..]),
        other => {
            eprintln!("clr-chaos: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Prints a usage error and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("clr-chaos: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// Positional operands plus `--flag value` pairs, borrowed from argv.
type SplitArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits args into positional operands and `--flag value` pairs.
fn split_flags(args: &[String]) -> Result<SplitArgs<'_>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, value.as_str()));
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok((positional, flags))
}

/// Looks up the last occurrence of a flag.
fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
}

/// `plan`: build and emit a fault plan in the text codec.
fn cmd_plan(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("plan takes flags only");
    }
    let seed: u64 = match flag(&flags, "seed").map_or(Ok(1), str::parse) {
        Ok(s) => s,
        Err(_) => return usage_error("bad --seed"),
    };
    let mut rates = FaultRates::zero();
    if let Some(v) = flag(&flags, "all") {
        let Ok(rate) = v.parse::<f64>() else {
            return usage_error("bad --all rate");
        };
        for kind in FaultKind::ALL {
            *rates.rate_mut(kind) = rate;
        }
    }
    for (_, value) in flags.iter().filter(|(n, _)| *n == "rate") {
        let Some((kind, rate)) = value.split_once('=') else {
            return usage_error(&format!("--rate {value:?} is not KIND=R"));
        };
        let Some(kind) = FaultKind::from_name(kind) else {
            let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
            return usage_error(&format!(
                "unknown fault kind {kind:?} (one of {})",
                names.join(", ")
            ));
        };
        let Ok(rate) = rate.parse::<f64>() else {
            return usage_error(&format!("bad rate in --rate {value:?}"));
        };
        *rates.rate_mut(kind) = rate;
    }
    let plan = match FaultPlan::new(seed, rates) {
        Ok(p) => p,
        Err(e) => return usage_error(&e.to_string()),
    };
    match flag(&flags, "out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, plan.to_text()) {
                eprintln!("clr-chaos: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{}", plan.to_text()),
    }
    ExitCode::SUCCESS
}

/// `inject`: apply a plan's faults to one artifact on disk.
fn cmd_inject(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("inject takes flags only");
    }
    let Some(plan_path) = flag(&flags, "plan") else {
        return usage_error("inject needs --plan FILE");
    };
    let Some(out) = flag(&flags, "out") else {
        return usage_error("inject needs --out FILE");
    };
    let attempt: u64 = match flag(&flags, "attempt").map_or(Ok(0), str::parse) {
        Ok(a) => a,
        Err(_) => return usage_error("bad --attempt"),
    };
    let plan_text = match std::fs::read_to_string(plan_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-chaos: cannot read {plan_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let plan = match FaultPlan::from_text(&plan_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("clr-chaos: {plan_path}: {e}");
            return ExitCode::from(2);
        }
    };
    match (flag(&flags, "snapshot"), flag(&flags, "trace")) {
        (Some(input), None) => {
            let bytes = match std::fs::read(input) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("clr-chaos: cannot read {input}: {e}");
                    return ExitCode::from(2);
                }
            };
            let (damaged, damage) = corrupt_snapshot_bytes(&bytes, &plan, attempt);
            if let Err(e) = std::fs::write(out, damaged) {
                eprintln!("clr-chaos: cannot write {out}: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {out}: {damage:?} (attempt {attempt})");
        }
        (None, Some(input)) => {
            let text = match std::fs::read_to_string(input) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("clr-chaos: cannot read {input}: {e}");
                    return ExitCode::from(2);
                }
            };
            let (damaged, damage) = corrupt_trace(&text, &plan);
            if let Err(e) = std::fs::write(out, damaged) {
                eprintln!("clr-chaos: cannot write {out}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {out}: {} malformed, {} reordered",
                damage.malformed, damage.reordered
            );
        }
        _ => return usage_error("inject needs exactly one of --snapshot IN or --trace IN"),
    }
    ExitCode::SUCCESS
}

/// `campaign`: run the full grid over the preset fleet.
fn cmd_campaign(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if !positional.is_empty() {
        return usage_error("campaign takes flags only");
    }
    let mut config = CampaignConfig::default();
    if let Some(v) = flag(&flags, "seed") {
        match v.parse() {
            Ok(s) => config.seed = s,
            Err(_) => return usage_error("bad --seed"),
        }
    }
    if let Some(v) = flag(&flags, "rate") {
        match v.parse::<f64>() {
            Ok(r) if (0.0..=1.0).contains(&r) => config.rate = r,
            _ => return usage_error("--rate must be in [0, 1]"),
        }
    }
    if let Some(v) = flag(&flags, "cycles") {
        match v.parse::<f64>() {
            Ok(c) if c.is_finite() && c > 0.0 => config.cycles = c,
            _ => return usage_error("bad --cycles"),
        }
    }
    if let Some(v) = flag(&flags, "mean-gap") {
        match v.parse::<f64>() {
            Ok(g) if g.is_finite() && g > 0.0 => config.mean_gap = g,
            _ => return usage_error("bad --mean-gap"),
        }
    }
    if let Some(v) = flag(&flags, "threads") {
        match v.parse() {
            Ok(n) => config.threads = n,
            Err(_) => return usage_error("bad --threads"),
        }
    }
    if let Some(v) = flag(&flags, "quarantine-after") {
        match v.parse() {
            Ok(k) => config.quarantine_after = k,
            Err(_) => return usage_error("bad --quarantine-after"),
        }
    }

    eprintln!("clr-chaos: building preset fleet (3 tenants, small GA budget)..");
    let fleet = preset_fleet();
    let obs = Obs::new(ObsMode::Json);
    let rows = match run_campaign(&fleet, &config, &obs) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("clr-chaos: campaign failed: {e}");
            return ExitCode::from(1);
        }
    };
    for row in &rows {
        eprintln!(
            "cell {}: {}/{} served ({:.1}%), {} degraded, {} quarantined, {} faults",
            row.cell,
            row.served,
            row.events,
            100.0 * row.survival(),
            row.degraded,
            row.quarantined,
            row.injected
        );
    }
    let csv = campaign_csv(&rows);
    match flag(&flags, "out-dir") {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("clr-chaos: cannot create {dir}: {e}");
                return ExitCode::from(2);
            }
            let csv_path = format!("{dir}/campaign.csv");
            if let Err(e) = std::fs::write(&csv_path, csv) {
                eprintln!("clr-chaos: cannot write {csv_path}: {e}");
                return ExitCode::from(2);
            }
            match obs.export(dir, "campaign") {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("wrote {}", p.display());
                    }
                    eprintln!("wrote {csv_path}");
                }
                Err(e) => {
                    eprintln!("clr-chaos: cannot export journal to {dir}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => print!("{csv}"),
    }
    ExitCode::SUCCESS
}

/// `report`: render a campaign CSV as a survival table.
fn cmd_report(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage_error("report takes exactly one campaign CSV path");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-chaos: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let rows = match parse_campaign_csv(&text) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("clr-chaos: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{:<24} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "cell", "events", "served", "survival", "degraded", "quarant", "faults"
    );
    for row in &rows {
        println!(
            "{:<24} {:>8} {:>8} {:>8.1}% {:>9} {:>8} {:>8}",
            row.cell,
            row.events,
            row.served,
            100.0 * row.survival(),
            row.degraded,
            row.quarantined,
            row.injected
        );
    }
    let events: usize = rows.iter().map(|r| r.events).sum();
    let served: usize = rows.iter().map(|r| r.served).sum();
    let survival = if events == 0 {
        1.0
    } else {
        served as f64 / events as f64
    };
    println!(
        "overall: {served}/{events} served ({:.2}%) across {} cells",
        100.0 * survival,
        rows.len()
    );
    ExitCode::SUCCESS
}
