//! The `clr-chaos` campaign runner.
//!
//! A **campaign** drives the serve path through a grid of fault cells —
//! one cell per [`FaultKind`] at a configurable rate, plus an `all@default`
//! cell with every kind armed — over a small preset fleet, and reports
//! per-cell survival as CSV ([`clr_chaos::CampaignRow`]).
//!
//! Each cell exercises the full degradation ladder:
//!
//! - **snapshot layer**: every tenant's snapshot bytes pass through
//!   [`corrupt_snapshot_bytes`] per load attempt; decode failures are
//!   retried a bounded number of times and fall back to the pristine
//!   last-known-good copy when the budget is exhausted;
//! - **trace layer**: the workload text passes through [`corrupt_trace`];
//!   malformed lines are skipped-and-journalled by
//!   [`Trace::from_jsonl_lenient`], a damaged header falls back to the
//!   pristine trace, and reordered timestamps are absorbed by the
//!   engine's monotonised clock;
//! - **decision layer**: the same [`FaultPlan`] rides into
//!   [`ReplayConfig::faults`], where the engine's fallback ladder
//!   (last-known-good → hypervolume baseline → hold → quarantine)
//!   absorbs budget, policy and transient-infeasibility faults.
//!
//! Every stage is a pure function of `(fleet, seed, rates)`, so a
//! campaign's CSV and deterministic journal are byte-identical at any
//! `CLR_THREADS` value — `ci.sh` step 9 enforces exactly that.

use clr_chaos::{
    corrupt_snapshot_bytes, corrupt_trace, CampaignRow, FaultKind, FaultPlan, FaultRates,
    SnapshotDamage, CAMPAIGN_CSV_HEADER,
};
use clr_core::Result;
use clr_dse::{explore_based, DseConfig, ExplorationMode};
use clr_moea::GaParams;
use clr_obs::{Event, Obs};
use clr_reliability::{ConfigSpace, FaultModel};
use clr_serve::{
    generate_trace, replay, resolve_graph, resolve_platform, PolicySpec, ReplayConfig, ServeStatus,
    Snapshot, Tenant, Trace,
};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Base seed: the workload trace uses it directly, each cell's fault
    /// plan derives its own seed from it.
    pub seed: u64,
    /// Injection rate for the per-kind cells (the `all@default` cell
    /// always uses [`FaultRates::default_campaign`]).
    pub rate: f64,
    /// Workload length in simulated cycles.
    pub cycles: f64,
    /// Mean inter-event gap in cycles.
    pub mean_gap: f64,
    /// Worker threads for the replay fan-out (`0` = automatic). The
    /// campaign output never depends on this.
    pub threads: usize,
    /// Quarantine a tenant after this many consecutive decision faults
    /// (`0` disables quarantine).
    pub quarantine_after: usize,
    /// Snapshot decode attempts before falling back to the pristine
    /// last-known-good copy.
    pub snapshot_attempts: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            rate: 0.02,
            cycles: 20_000.0,
            mean_gap: 100.0,
            threads: 0,
            quarantine_after: 3,
            snapshot_attempts: 3,
        }
    }
}

/// One preset tenant: name, policy, and the pristine snapshot bytes that
/// are both the corruption input and the last-known-good fallback.
#[derive(Debug, Clone)]
pub struct PresetTenant {
    /// Tenant name.
    pub name: &'static str,
    /// Adaptation policy.
    pub policy: PolicySpec,
    /// Pristine serialized snapshot.
    pub bytes: Vec<u8>,
}

/// Builds the preset campaign fleet: three tenants over TGFF-generated
/// applications (8 tasks, seeds 61–63) on the DAC'19 platform, explored
/// with the small GA budget, mirroring the serve engine's test fleet.
pub fn preset_fleet() -> Vec<PresetTenant> {
    [
        ("cam0", 61, PolicySpec::Ura { p_rc: 0.5 }),
        (
            "nav",
            62,
            PolicySpec::Aura {
                p_rc: 0.5,
                gamma: 0.6,
                alpha: 0.1,
            },
        ),
        ("audio", 63, PolicySpec::Hv),
    ]
    .into_iter()
    .map(|(name, seed, policy)| {
        let desc = format!("tgff:8:{seed}");
        let graph = resolve_graph(&desc).expect("preset graph descriptor resolves");
        let platform = resolve_platform("dac19").expect("preset platform descriptor resolves");
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            seed,
        );
        PresetTenant {
            name,
            policy,
            bytes: Snapshot::new(desc, "dac19", db).to_bytes(),
        }
    })
    .collect()
}

/// Rebuilds the pristine (uncorrupted) tenants of a fleet.
pub fn pristine_tenants(fleet: &[PresetTenant]) -> Result<Vec<Tenant>> {
    fleet
        .iter()
        .map(|t| {
            Ok(Tenant::from_snapshot(
                t.name,
                &Snapshot::from_bytes(&t.bytes)?,
                t.policy,
            )?)
        })
        .collect()
}

/// Renders campaign rows as the full CSV document (header + rows,
/// trailing newline).
pub fn campaign_csv(rows: &[CampaignRow]) -> String {
    let mut out = String::from(CAMPAIGN_CSV_HEADER);
    for row in rows {
        out.push('\n');
        out.push_str(&row.csv_line());
    }
    out.push('\n');
    out
}

/// Runs the full campaign grid over a fleet, appending one journal
/// [`Event::Fault`] per absorbed load-time fault (the replay engine
/// journals the decision-layer ones) into `obs`.
///
/// # Errors
///
/// Propagates invalid fault rates, undecodable pristine snapshots, and
/// replay-setup failures as [`clr_core::Error`]. Injected faults never
/// error — absorbing them is the point.
pub fn run_campaign(
    fleet: &[PresetTenant],
    config: &CampaignConfig,
    obs: &Obs,
) -> Result<Vec<CampaignRow>> {
    let pristine = pristine_tenants(fleet)?;
    let trace_text =
        generate_trace(&pristine, config.seed, config.cycles, config.mean_gap).to_jsonl();
    drop(pristine);

    let mut cells: Vec<(String, String, String, FaultRates, f64)> = FaultKind::ALL
        .into_iter()
        .map(|kind| {
            (
                format!("{}@{:?}", kind.name(), config.rate),
                kind.layer().to_string(),
                kind.name().to_string(),
                FaultRates::only(kind, config.rate),
                config.rate,
            )
        })
        .collect();
    cells.push((
        "all@default".to_string(),
        "all".to_string(),
        "all".to_string(),
        FaultRates::default_campaign(),
        0.02,
    ));

    let mut rows = Vec::with_capacity(cells.len());
    for (idx, (cell, layer, kind, rates, rate)) in cells.into_iter().enumerate() {
        let seed = config.seed.wrapping_add(1 + idx as u64);
        rows.push(run_cell(
            &CellSpec {
                cell,
                layer,
                kind,
                rates,
                rate,
                seed,
            },
            fleet,
            &trace_text,
            config,
            obs,
        )?);
    }
    Ok(rows)
}

/// One grid cell's identity and fault mix.
struct CellSpec {
    cell: String,
    layer: String,
    kind: String,
    rates: FaultRates,
    rate: f64,
    seed: u64,
}

/// Emits one `fault` journal event for a load-time fault absorbed by the
/// campaign runner.
fn fault_event(
    obs: &Obs,
    label: &str,
    layer: &str,
    kind: &str,
    tenant: &str,
    event: usize,
    action: &str,
) {
    obs.emit(Event::Fault {
        label: label.to_string(),
        layer: layer.to_string(),
        kind: kind.to_string(),
        tenant: tenant.to_string(),
        event,
        action: action.to_string(),
    });
    obs.counter_add("chaos.faults.absorbed", 1);
}

/// Runs one cell: corrupt → load (with retry/LKG) → lenient decode →
/// chaos replay → aggregate.
fn run_cell(
    spec: &CellSpec,
    fleet: &[PresetTenant],
    trace_text: &str,
    config: &CampaignConfig,
    obs: &Obs,
) -> Result<CampaignRow> {
    let plan = FaultPlan::new(spec.seed, spec.rates)?;
    let mut injected = 0usize;
    let mut retries = 0usize;

    // Snapshot layer: bounded decode retry, then last-known-good.
    let mut tenants = Vec::with_capacity(fleet.len());
    for (i, preset) in fleet.iter().enumerate() {
        let mut loaded = None;
        let mut last_kind = FaultKind::SnapshotBitFlip;
        for attempt in 0..config.snapshot_attempts.max(1) {
            // Distinct fault-plan sites per (tenant, attempt), so the
            // damage schedule is independent of iteration order.
            let site = (i as u64) * config.snapshot_attempts.max(1) + attempt;
            let (bytes, damage) = corrupt_snapshot_bytes(&preset.bytes, &plan, site);
            if damage == SnapshotDamage::None {
                loaded = Some(Snapshot::from_bytes(&bytes)?);
                break;
            }
            injected += 1;
            last_kind = match damage {
                SnapshotDamage::Truncate { .. } => FaultKind::SnapshotTruncate,
                _ => FaultKind::SnapshotBitFlip,
            };
            match Snapshot::from_bytes(&bytes) {
                Ok(snap) => {
                    // The damage slipped past the integrity checksum;
                    // serve it anyway — the runtime layer quarantines
                    // models it cannot build.
                    fault_event(
                        obs,
                        &spec.cell,
                        "snapshot",
                        last_kind.name(),
                        preset.name,
                        attempt as usize,
                        "tolerated",
                    );
                    loaded = Some(snap);
                    break;
                }
                Err(_) => {
                    retries += 1;
                    fault_event(
                        obs,
                        &spec.cell,
                        "snapshot",
                        last_kind.name(),
                        preset.name,
                        attempt as usize,
                        "retry",
                    );
                }
            }
        }
        let snapshot = match loaded {
            Some(snap) => snap,
            None => {
                fault_event(
                    obs,
                    &spec.cell,
                    "snapshot",
                    last_kind.name(),
                    preset.name,
                    config.snapshot_attempts as usize,
                    "lkg",
                );
                Snapshot::from_bytes(&preset.bytes)?
            }
        };
        let tenant = match Tenant::from_snapshot(preset.name, &snapshot, preset.policy) {
            Ok(tenant) => tenant,
            Err(_) => {
                // A tolerated-but-unresolvable snapshot still falls back.
                fault_event(
                    obs,
                    &spec.cell,
                    "snapshot",
                    last_kind.name(),
                    preset.name,
                    config.snapshot_attempts as usize,
                    "lkg",
                );
                Tenant::from_snapshot(
                    preset.name,
                    &Snapshot::from_bytes(&preset.bytes)?,
                    preset.policy,
                )?
            }
        };
        tenants.push(tenant);
    }

    // Trace layer: lenient decode with skip-and-journal, LKG on a
    // damaged header.
    let (text, damage) = corrupt_trace(trace_text, &plan);
    injected += damage.malformed + damage.reordered;
    if damage.reordered > 0 {
        // Reordered timestamps are absorbed silently by the engine's
        // monotonised clock; surface the count as a metric.
        obs.counter_add("chaos.trace.reordered", damage.reordered as u64);
    }
    let (trace, errors) = Trace::from_jsonl_lenient(&text);
    let mut skipped = 0usize;
    let trace = if trace.is_empty() && !errors.is_empty() {
        // The mandatory header itself was hit, so the whole document was
        // rejected: replay the pristine last-known-good workload.
        fault_event(
            obs,
            &spec.cell,
            "trace",
            FaultKind::TraceMalformed.name(),
            "",
            0,
            "lkg",
        );
        Trace::from_jsonl(trace_text)?
    } else {
        skipped = errors.len();
        for e in &errors {
            fault_event(
                obs,
                &spec.cell,
                "trace",
                FaultKind::TraceMalformed.name(),
                "",
                e.line,
                "skip",
            );
        }
        trace
    };

    // Decision layer: the engine's own ladder absorbs the rest.
    let replay_config = ReplayConfig {
        threads: config.threads,
        faults: plan,
        quarantine_after: config.quarantine_after,
        ..ReplayConfig::default()
    };
    let report = replay(&tenants, &trace, &replay_config)?;
    report.emit_obs(obs);

    let outcomes = report.outcomes();
    let events = report.total_events();
    let served = report.total_served();
    let degraded = outcomes.iter().map(|o| o.degraded).sum::<usize>();
    let normal = outcomes
        .iter()
        .flat_map(|o| o.decisions.iter())
        .filter(|d| d.status == ServeStatus::Normal)
        .count();
    injected += outcomes.iter().map(|o| o.faults).sum::<usize>();

    Ok(CampaignRow {
        cell: spec.cell.clone(),
        layer: spec.layer.clone(),
        kind: spec.kind.clone(),
        rate: spec.rate,
        seed: spec.seed,
        events,
        served,
        normal,
        degraded,
        quarantined: outcomes.iter().map(|o| o.quarantined).sum(),
        violations: outcomes.iter().map(|o| o.violations).sum(),
        injected,
        // Every injected fault was absorbed by some rung (retry, skip,
        // fallback, quarantine) — reaching this point is the proof.
        absorbed: injected,
        retries,
        skipped,
    })
}
