//! Fixed-bin histograms and percentile estimation.
//!
//! The experiment harness summarises Monte-Carlo traces (dwell times,
//! reconfiguration costs, per-event energies); these helpers provide the
//! aggregation beyond plain means.

use serde::{Deserialize, Serialize};

/// A fixed-width-bin histogram over `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use clr_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for v in [1.0, 2.5, 2.6, 9.9, 11.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_counts()[1], 2); // 2.5 and 2.6
/// assert_eq!(h.overflow(), 1);      // 11.0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns `None` when `lo >= hi`, a bound is non-finite, or
    /// `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi && bins > 0) {
            return None;
        }
        Some(Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value > self.hi {
            self.overflow += 1;
        } else {
            let t = (value - self.lo) / (self.hi - self.lo);
            let bin = ((t * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[bin] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Lower edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edge(&self, i: usize) -> f64 {
        assert!(i <= self.bins.len(), "bin index out of range");
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

/// The `q`-th percentile (0–100) of a sample, by linear interpolation
/// between closest ranks; `None` for an empty sample or out-of-range `q`.
///
/// # Examples
///
/// ```
/// use clr_stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// ```
pub fn percentile(sample: &[f64], q: f64) -> Option<f64> {
    if sample.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn boundary_values_land_in_edge_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0);
        h.add(10.0);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn extend_collects() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.extend([0.1, 0.9, 0.4]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bin_edge(1), 0.5);
    }

    #[test]
    fn percentile_handles_singletons_and_bad_q() {
        assert_eq!(percentile(&[7.0], 50.0), Some(7.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[1.0], 101.0), None);
    }

    #[test]
    fn median_of_known_sample() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
    }

    proptest! {
        #[test]
        fn counts_are_conserved(values in proptest::collection::vec(-5.0f64..15.0, 0..200)) {
            let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
            h.extend(values.iter().copied());
            prop_assert_eq!(h.count(), values.len() as u64);
        }

        #[test]
        fn percentile_is_monotone_in_q(
            values in proptest::collection::vec(-1e3f64..1e3, 1..100),
            q1 in 0.0f64..100.0,
            q2 in 0.0f64..100.0,
        ) {
            let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
            let a = percentile(&values, lo).unwrap();
            let b = percentile(&values, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn percentile_is_within_sample_range(
            values in proptest::collection::vec(-1e3f64..1e3, 1..100),
            q in 0.0f64..100.0,
        ) {
            let p = percentile(&values, q).unwrap();
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
        }
    }
}
