//! Special functions needed by the reliability models.
//!
//! The Weibull lifetime model used for per-PE aging (scale `η`, shape `β`)
//! has mean-time-to-failure `MTTF = η · Γ(1 + 1/β)`, so we need the gamma
//! function. The implementation uses the Lanczos approximation (g = 7,
//! n = 9), which is accurate to ~15 significant digits over the domain the
//! models exercise.

/// Lanczos coefficients for g = 7, n = 9.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Computes the gamma function `Γ(x)` for real `x`.
///
/// Uses the reflection formula for `x < 0.5` and the Lanczos approximation
/// otherwise.
///
/// # Examples
///
/// ```
/// let g = clr_stats::gamma(5.0);
/// assert!((g - 24.0).abs() < 1e-9); // Γ(5) = 4!
/// ```
pub fn gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx)
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS_COEF[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Computes `ln Γ(x)` for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` (the log-gamma of non-positive reals is not real).
///
/// # Examples
///
/// ```
/// let lg = clr_stats::ln_gamma(10.0);
/// assert!((lg - (362880.0f64).ln()).abs() < 1e-9); // ln Γ(10) = ln 9!
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS_COEF[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_of_integers_is_factorial() {
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let g = gamma(n as f64 + 1.0);
            assert!((g - f).abs() / f < 1e-12, "Γ({}) = {g}, want {f}", n + 1);
        }
    }

    #[test]
    fn gamma_of_half_is_sqrt_pi() {
        let g = gamma(0.5);
        assert!((g - std::f64::consts::PI.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gamma_recurrence_holds() {
        for &x in &[0.3, 1.7, 2.5, 4.2, 9.9] {
            let lhs = gamma(x + 1.0);
            let rhs = x * gamma(x);
            assert!((lhs - rhs).abs() / rhs.abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn ln_gamma_matches_gamma() {
        for &x in &[0.5, 1.0, 2.5, 7.3, 20.0] {
            let lhs = ln_gamma(x);
            let rhs = gamma(x).ln();
            assert!((lhs - rhs).abs() < 1e-9, "x = {x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn weibull_mttf_shape_one_is_scale() {
        // With β = 1 the Weibull is exponential: MTTF = η · Γ(2) = η.
        let eta = 1234.5;
        let mttf = eta * gamma(1.0 + 1.0 / 1.0);
        assert!((mttf - eta).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
