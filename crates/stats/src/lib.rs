//! Statistical primitives shared across the `hybrid-clr` workspace.
//!
//! The DAC'19 evaluation drives its Monte-Carlo run-time simulations with a
//! *bivariate Gaussian* distribution over the two QoS requirements and an
//! *exponential* distribution (rate 100 cycles) over the time between
//! discrete events.  This crate implements exactly those samplers — plus the
//! summary statistics and special functions the reliability models need —
//! without pulling in distribution crates beyond [`rand`].
//!
//! # Examples
//!
//! ```
//! use clr_stats::{Normal, Exponential, Summary};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let normal = Normal::new(10.0, 2.0).unwrap();
//! let exp = Exponential::new(0.01).unwrap();
//! let xs: Vec<f64> = (0..1000).map(|_| normal.sample(&mut rng)).collect();
//! let summary = Summary::from_values(xs.iter().copied());
//! assert!((summary.mean - 10.0).abs() < 0.5);
//! let _gap = exp.sample(&mut rng);
//! ```

mod approx;
mod distributions;
mod histogram;
mod special;
mod summary;

pub use approx::{approx_eq, approx_eq_probability, approx_eq_time, EPS_PROBABILITY, EPS_TIME};
pub use distributions::{BivariateNormal, DistributionError, Exponential, Normal};
pub use histogram::{percentile, Histogram};
pub use special::{gamma, ln_gamma};
pub use summary::{normalize, Normalizer, Summary};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn crate_level_smoke() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = Normal::new(0.0, 1.0).unwrap();
        let s = Summary::from_values((0..10_000).map(|_| n.sample(&mut rng)));
        assert!(s.mean.abs() < 0.05, "mean {}", s.mean);
        assert!((s.std_dev - 1.0).abs() < 0.05, "std {}", s.std_dev);
    }
}
