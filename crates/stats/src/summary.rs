//! Summary statistics and normalisation helpers.
//!
//! The run-time adaptation policy (Algorithm 1 in the paper) scores candidate
//! design points with *normalised* performance and reconfiguration-cost
//! values; [`Normalizer`] provides that min–max normalisation, and
//! [`Summary`] aggregates Monte-Carlo traces into the averages the paper's
//! tables report.

use serde::{Deserialize, Serialize};

/// Aggregate statistics over a sequence of `f64` observations.
///
/// # Examples
///
/// ```
/// use clr_stats::Summary;
/// let s = Summary::from_values([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sequence).
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub std_dev: f64,
    /// Minimum observation (+inf for an empty sequence).
    pub min: f64,
    /// Maximum observation (−inf for an empty sequence).
    pub max: f64,
    /// Sum of all observations.
    pub sum: f64,
}

impl Summary {
    /// Computes summary statistics over an iterator of observations.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut count = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0f64;
        for v in values {
            count += 1;
            sum += v;
            let delta = v - mean;
            mean += delta / count as f64;
            m2 += delta * (v - mean);
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        let std_dev = if count > 1 {
            (m2 / (count as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        Self {
            count,
            mean: if count == 0 { 0.0 } else { mean },
            std_dev,
            min,
            max,
            sum,
        }
    }

    /// `true` if no observations were aggregated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::from_iter(std::iter::empty())
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary::from_values(iter)
    }
}

/// Min–max normaliser mapping an observed range onto `[0, 1]`.
///
/// Degenerate ranges (`max == min`) normalise to `0.0` so that a set of
/// identical candidates score identically rather than dividing by zero.
///
/// # Examples
///
/// ```
/// use clr_stats::Normalizer;
/// let n = Normalizer::from_values([10.0, 20.0, 30.0]).unwrap();
/// assert_eq!(n.normalize(10.0), 0.0);
/// assert_eq!(n.normalize(30.0), 1.0);
/// assert_eq!(n.normalize(20.0), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    min: f64,
    max: f64,
}

impl Normalizer {
    /// Creates a normaliser for the closed range `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns `None` if `min > max` or either bound is non-finite.
    pub fn new(min: f64, max: f64) -> Option<Self> {
        if !min.is_finite() || !max.is_finite() || min > max {
            return None;
        }
        Some(Self { min, max })
    }

    /// Builds a normaliser from the observed range of an iterator.
    ///
    /// Returns `None` if the iterator is empty or contains non-finite values.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Option<Self> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut any = false;
        for v in values {
            if !v.is_finite() {
                return None;
            }
            any = true;
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        if any {
            Self::new(min, max)
        } else {
            None
        }
    }

    /// The lower bound of the normalised range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The upper bound of the normalised range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Maps `value` onto `[0, 1]`, clamping values outside the range.
    pub fn normalize(&self, value: f64) -> f64 {
        normalize(value, self.min, self.max)
    }
}

/// Min–max normalisation of `value` from `[min, max]` onto `[0, 1]`,
/// clamping out-of-range inputs and mapping degenerate ranges to `0.0`.
///
/// # Examples
///
/// ```
/// assert_eq!(clr_stats::normalize(5.0, 0.0, 10.0), 0.5);
/// assert_eq!(clr_stats::normalize(-1.0, 0.0, 10.0), 0.0);
/// assert_eq!(clr_stats::normalize(3.0, 3.0, 3.0), 0.0);
/// ```
pub fn normalize(value: f64, min: f64, max: f64) -> f64 {
    if max <= min {
        return 0.0;
    }
    ((value - min) / (max - min)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::default();
        assert!(s.is_empty());
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_values([7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn summary_known_std() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std-dev of this classic data set is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_collects_from_iterator() {
        let s: Summary = vec![1.0, 3.0].into_iter().collect();
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn normalizer_rejects_bad_ranges() {
        assert!(Normalizer::new(2.0, 1.0).is_none());
        assert!(Normalizer::new(f64::NAN, 1.0).is_none());
        assert!(Normalizer::from_values(std::iter::empty()).is_none());
        assert!(Normalizer::from_values([1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn normalizer_degenerate_range_is_zero() {
        let n = Normalizer::new(4.0, 4.0).unwrap();
        assert_eq!(n.normalize(4.0), 0.0);
        assert_eq!(n.normalize(100.0), 0.0);
    }

    proptest! {
        #[test]
        fn normalize_is_in_unit_interval(v in -1e9f64..1e9, a in -1e6f64..1e6, w in 0.0f64..1e6) {
            let x = normalize(v, a, a + w);
            prop_assert!((0.0..=1.0).contains(&x));
        }

        #[test]
        fn normalize_is_monotone(a in -1e6f64..1e6, w in 1e-6f64..1e6, t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
            let (lo, hi) = (t1.min(t2), t1.max(t2));
            let v1 = a + lo * w;
            let v2 = a + hi * w;
            prop_assert!(normalize(v1, a, a + w) <= normalize(v2, a, a + w) + 1e-12);
        }

        #[test]
        fn summary_mean_within_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_values(values.iter().copied());
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert_eq!(s.count, values.len());
        }
    }
}
