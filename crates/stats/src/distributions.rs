//! Distribution samplers used by the Monte-Carlo run-time simulation.
//!
//! All samplers take a caller-provided [`rand::Rng`] so that every experiment
//! in the workspace is reproducible from a single seed.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionError {
    what: String,
}

impl DistributionError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for DistributionError {}

/// A univariate normal (Gaussian) distribution sampled via Box–Muller.
///
/// # Examples
///
/// ```
/// # use clr_stats::Normal;
/// # use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let n = Normal::new(5.0, 0.5).unwrap();
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] if `std_dev` is negative or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistributionError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(DistributionError::new("normal parameters must be finite"));
        }
        if std_dev < 0.0 {
            return Err(DistributionError::new("normal std_dev must be >= 0"));
        }
        Ok(Self { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Draws one standard-normal variate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A bivariate normal distribution with per-axis mean/std-dev and a
/// correlation coefficient, sampled via the Cholesky factor of the 2×2
/// covariance matrix.
///
/// The paper uses this to emulate correlated changes of the two QoS
/// requirements (maximum average makespan, minimum functional reliability).
///
/// # Examples
///
/// ```
/// # use clr_stats::BivariateNormal;
/// # use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let d = BivariateNormal::new([0.0, 0.0], [1.0, 1.0], 0.8).unwrap();
/// let [x, y] = d.sample(&mut rng);
/// assert!(x.is_finite() && y.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BivariateNormal {
    mean: [f64; 2],
    std_dev: [f64; 2],
    rho: f64,
}

impl BivariateNormal {
    /// Creates a bivariate normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] if either std-dev is negative, the
    /// correlation `rho` is outside `[-1, 1]`, or any parameter is
    /// non-finite.
    pub fn new(mean: [f64; 2], std_dev: [f64; 2], rho: f64) -> Result<Self, DistributionError> {
        if mean.iter().chain(std_dev.iter()).any(|v| !v.is_finite()) || !rho.is_finite() {
            return Err(DistributionError::new(
                "bivariate normal parameters must be finite",
            ));
        }
        if std_dev.iter().any(|&s| s < 0.0) {
            return Err(DistributionError::new(
                "bivariate normal std_dev must be >= 0",
            ));
        }
        if !(-1.0..=1.0).contains(&rho) {
            return Err(DistributionError::new(
                "bivariate normal correlation must be in [-1, 1]",
            ));
        }
        Ok(Self { mean, std_dev, rho })
    }

    /// The per-axis means.
    pub fn mean(&self) -> [f64; 2] {
        self.mean
    }

    /// The per-axis standard deviations.
    pub fn std_dev(&self) -> [f64; 2] {
        self.std_dev
    }

    /// The correlation coefficient.
    pub fn correlation(&self) -> f64 {
        self.rho
    }

    /// Draws one correlated pair.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> [f64; 2] {
        let z0 = standard_normal(rng);
        let z1 = standard_normal(rng);
        // Cholesky factor of [[1, rho], [rho, 1]].
        let y0 = z0;
        let y1 = self.rho * z0 + (1.0 - self.rho * self.rho).sqrt() * z1;
        [
            self.mean[0] + self.std_dev[0] * y0,
            self.mean[1] + self.std_dev[1] * y1,
        ]
    }
}

/// An exponential distribution parameterised by its rate `λ` (events per
/// unit), used for the time between discrete QoS-change events.
///
/// # Examples
///
/// ```
/// # use clr_stats::Exponential;
/// # use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// // Mean inter-arrival of 100 cycles, as in the paper's Monte-Carlo setup.
/// let gaps = Exponential::with_mean(100.0).unwrap();
/// assert!(gaps.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] if `rate` is not strictly positive and
    /// finite.
    pub fn new(rate: f64) -> Result<Self, DistributionError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(DistributionError::new(
                "exponential rate must be finite and > 0",
            ));
        }
        Ok(Self { rate })
    }

    /// Creates an exponential distribution with the given mean `1/λ`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] if `mean` is not strictly positive and
    /// finite.
    pub fn with_mean(mean: f64) -> Result<Self, DistributionError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(DistributionError::new(
                "exponential mean must be finite and > 0",
            ));
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The distribution mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one sample (always strictly positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut r = rng(2);
        let n = Normal::new(42.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(n.sample(&mut r), 42.0);
        }
    }

    #[test]
    fn normal_moments_match() {
        let mut r = rng(3);
        let n = Normal::new(-4.0, 3.0).unwrap();
        let s = Summary::from_values((0..50_000).map(|_| n.sample(&mut r)));
        assert!((s.mean + 4.0).abs() < 0.05, "mean {}", s.mean);
        assert!((s.std_dev - 3.0).abs() < 0.05, "std {}", s.std_dev);
    }

    #[test]
    fn bivariate_rejects_bad_parameters() {
        assert!(BivariateNormal::new([0.0, 0.0], [1.0, 1.0], 1.5).is_err());
        assert!(BivariateNormal::new([0.0, 0.0], [-1.0, 1.0], 0.0).is_err());
        assert!(BivariateNormal::new([f64::NAN, 0.0], [1.0, 1.0], 0.0).is_err());
        assert!(BivariateNormal::new([0.0, 0.0], [1.0, 1.0], -1.0).is_ok());
    }

    #[test]
    fn bivariate_correlation_is_reproduced() {
        let mut r = rng(4);
        let d = BivariateNormal::new([1.0, -1.0], [2.0, 0.5], 0.7).unwrap();
        let n = 50_000;
        let samples: Vec<[f64; 2]> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mx = samples.iter().map(|s| s[0]).sum::<f64>() / n as f64;
        let my = samples.iter().map(|s| s[1]).sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for s in &samples {
            cov += (s[0] - mx) * (s[1] - my);
            vx += (s[0] - mx).powi(2);
            vy += (s[1] - my).powi(2);
        }
        let rho = cov / (vx.sqrt() * vy.sqrt());
        assert!((rho - 0.7).abs() < 0.02, "rho {rho}");
        assert!((mx - 1.0).abs() < 0.05);
        assert!((my + 1.0).abs() < 0.02);
    }

    #[test]
    fn bivariate_extreme_correlation_is_degenerate() {
        let mut r = rng(5);
        let d = BivariateNormal::new([0.0, 0.0], [1.0, 1.0], 1.0).unwrap();
        for _ in 0..100 {
            let [x, y] = d.sample(&mut r);
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_rejects_bad_parameters() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng(6);
        let d = Exponential::with_mean(100.0).unwrap();
        assert!((d.mean() - 100.0).abs() < 1e-12);
        let s = Summary::from_values((0..50_000).map(|_| d.sample(&mut r)));
        assert!((s.mean - 100.0).abs() < 2.0, "mean {}", s.mean);
        assert!(s.min > 0.0);
    }

    #[test]
    fn error_display_is_informative() {
        let err = Normal::new(0.0, -1.0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("std_dev"), "{msg}");
    }
}
