//! Named floating-point tolerances and approximate-equality helpers.
//!
//! The workspace compares derived metrics (makespans, energies,
//! reliabilities, reconfiguration distances) all over the pipeline; this
//! module replaces the ad-hoc `1e-9`/`1e-12` literals with named
//! constants so every layer — the design-point database's duplicate
//! detection, the scheduler's precedence checks and the `clr-verify`
//! lints — agrees on what "numerically equal" means.

/// Absolute tolerance for *time-* and *energy-like* quantities
/// (makespans, execution times, energies, reconfiguration distances):
/// values with magnitudes around `1e0`–`1e6` where accumulated rounding
/// across a schedule stays far below a nanosecond-scale unit.
pub const EPS_TIME: f64 = 1e-9;

/// Absolute tolerance for *probability-like* quantities (reliabilities,
/// error rates, masking factors): values confined to `[0, 1]` where
/// double precision leaves ~`1e-16` of headroom.
pub const EPS_PROBABILITY: f64 = 1e-12;

/// `true` if `a` and `b` differ by at most `eps`.
///
/// Non-finite inputs are never approximately equal (`NaN` breaks every
/// comparison; two same-signed infinities still compare unequal so that
/// corrupted metrics cannot masquerade as duplicates).
///
/// # Examples
///
/// ```
/// use clr_stats::{approx_eq, EPS_TIME};
/// assert!(approx_eq(1.0, 1.0 + 1e-12, EPS_TIME));
/// assert!(!approx_eq(1.0, 1.1, EPS_TIME));
/// assert!(!approx_eq(f64::NAN, f64::NAN, EPS_TIME));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    a.is_finite() && b.is_finite() && (a - b).abs() <= eps
}

/// `true` if two time-like values are equal under [`EPS_TIME`].
#[must_use]
pub fn approx_eq_time(a: f64, b: f64) -> bool {
    approx_eq(a, b, EPS_TIME)
}

/// `true` if two probability-like values are equal under
/// [`EPS_PROBABILITY`].
#[must_use]
pub fn approx_eq_probability(a: f64, b: f64) -> bool {
    approx_eq(a, b, EPS_PROBABILITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_tolerance_is_equal() {
        assert!(approx_eq_time(5.0, 5.0 + 0.5 * EPS_TIME));
        assert!(approx_eq_probability(0.9, 0.9 + 0.5 * EPS_PROBABILITY));
    }

    #[test]
    fn outside_tolerance_is_unequal() {
        assert!(!approx_eq_time(5.0, 5.0 + 2.0 * EPS_TIME));
        assert!(!approx_eq_probability(0.9, 0.9 + 2.0 * EPS_PROBABILITY));
    }

    #[test]
    fn non_finite_never_equal() {
        assert!(!approx_eq(f64::NAN, 0.0, EPS_TIME));
        assert!(!approx_eq(f64::INFINITY, f64::INFINITY, EPS_TIME));
        assert!(!approx_eq(0.0, f64::NEG_INFINITY, EPS_TIME));
    }

    #[test]
    fn tolerance_is_inclusive() {
        // 0.0 and EPS_TIME differ by exactly EPS_TIME (no rounding).
        assert!(approx_eq(0.0, EPS_TIME, EPS_TIME));
    }
}
