//! The per-tenant online learner: incumbent/candidate value tables,
//! shadow evaluation with counterfactual regret, seeded exploration,
//! and reconfiguration prefetch.

use clr_runtime::{ura_argmax, DecisionInput, DecisionOutcome, Feedback, RuntimeContext};

use crate::ab::{assign_variant, fnv1a64, splitmix64, Variant};
use crate::LearnConfig;

/// Which value table is serving live decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table {
    /// The incumbent (frozen) table.
    Live,
    /// The online-learned candidate table.
    Shadow,
}

impl Table {
    /// Stable lowercase label (journal `shadow` events).
    pub fn label(self) -> &'static str {
        match self {
            Self::Live => "live",
            Self::Shadow => "shadow",
        }
    }

    /// Parses a [`Table::label`] string.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "live" => Ok(Self::Live),
            "shadow" => Ok(Self::Shadow),
            other => Err(format!("unknown serving table {other:?}")),
        }
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One scored decision's shadow evaluation: what the incumbent and the
/// candidate each picked, and each pick's one-step oracle regret.
///
/// Regret is measured against the one-step oracle over the same feasible
/// set: `regret(p) = max_q RET₀(q) − RET₀(p)` with
/// `RET₀(p) = p_RC·norm(R(p)) − (1 − p_RC)·norm(dRC(current → p))` —
/// the γ-free immediate term, so the number is non-negative, finite, and
/// recomputable by a lint without the learner's value state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowRecord {
    /// Tenant-local event ordinal (1-based). The learner stamps its own
    /// scored-decision count; the serving session overwrites this with
    /// the stream ordinal before journaling.
    pub event: usize,
    /// The incumbent table's pick.
    pub live_choice: usize,
    /// The candidate table's pick (after any seeded exploration).
    pub shadow_choice: usize,
    /// One-step oracle regret of the incumbent's pick (≥ 0).
    pub live_regret: f64,
    /// One-step oracle regret of the candidate's pick (≥ 0).
    pub shadow_regret: f64,
    /// Which table's pick was actually served.
    pub serving: Table,
    /// The tenant's A/B variant.
    pub variant: Variant,
}

/// A per-tenant online learner implementing
/// [`RuntimePolicy`](clr_runtime::RuntimePolicy).
///
/// Two value tables share one AuRA-shaped decision rule
/// ([`ura_argmax`]): the **incumbent** (`live`) is frozen until an
/// explicit [`promote`](LearnerState::promote); the **candidate**
/// (`shadow`) is TD(0)-updated from every executed transition delivered
/// through the [`observe`](clr_runtime::RuntimePolicy::observe) hook.
/// Every scored decision evaluates both tables and records a
/// [`ShadowRecord`] with each pick's counterfactual regret; the seeded
/// A/B [`Variant`] decides which table serves.
///
/// Everything is a pure function of `(config, tenant name, event
/// stream)`: exploration draws from a counter-based stream keyed by
/// `(seed, tenant, decision ordinal)`, so replays are byte-identical at
/// any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnerState {
    pub(crate) cfg: LearnConfig,
    pub(crate) tenant: String,
    pub(crate) tenant_hash: u64,
    pub(crate) variant: Variant,
    pub(crate) serving: Table,
    pub(crate) live: Vec<f64>,
    pub(crate) shadow: Vec<f64>,
    /// Dense `from × to` transition counts over stored points.
    pub(crate) transitions: Vec<u64>,
    pub(crate) points: usize,
    /// Snapshot-store generation of the database the tables index into.
    pub(crate) generation: u64,
    /// Scored (clean-path) decisions so far — the exploration counter.
    pub(crate) decisions: u64,
    pub(crate) explored: u64,
    /// Predicted destination of the next reconfiguration, from the
    /// transition counts out of the current state.
    pub(crate) prediction: Option<usize>,
    pub(crate) prefetch_hits: u64,
    pub(crate) prefetch_misses: u64,
    /// Reconfiguration cost overlapped with execution on prefetch hits.
    pub(crate) prefetch_saved_drc: f64,
    pub(crate) cum_live_regret: f64,
    pub(crate) cum_shadow_regret: f64,
    pub(crate) promotions: u64,
    pub(crate) last_shadow: Option<ShadowRecord>,
}

/// The γ-free immediate RET term both regret sides are measured with.
fn base_ret(ctx: &RuntimeContext<'_>, current: usize, p: usize, p_rc: f64) -> f64 {
    p_rc * ctx.norm_performance(p) - (1.0 - p_rc) * ctx.norm_drc(current, p)
}

impl LearnerState {
    /// Opens a learner for `tenant` over `points` stored design points at
    /// snapshot-store generation `generation`. The A/B variant is derived
    /// from `(cfg.seed, tenant)`; both tables start at zero (fresh cold
    /// start — restore a checkpoint to resume).
    ///
    /// # Errors
    ///
    /// Propagates [`LearnConfig::validate`] failures.
    pub fn new(
        tenant: impl Into<String>,
        points: usize,
        generation: u64,
        cfg: LearnConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let tenant = tenant.into();
        let variant = assign_variant(cfg.seed, &tenant);
        let serving = match variant {
            Variant::Control => Table::Live,
            Variant::Treatment => Table::Shadow,
        };
        let tenant_hash = fnv1a64(tenant.as_bytes());
        Ok(Self {
            cfg,
            tenant,
            tenant_hash,
            variant,
            serving,
            live: vec![0.0; points],
            shadow: vec![0.0; points],
            transitions: vec![0; points * points],
            points,
            generation,
            decisions: 0,
            explored: 0,
            prediction: None,
            prefetch_hits: 0,
            prefetch_misses: 0,
            prefetch_saved_drc: 0.0,
            cum_live_regret: 0.0,
            cum_shadow_regret: 0.0,
            promotions: 0,
            last_shadow: None,
        })
    }

    /// The learner's hyper-parameters.
    pub fn config(&self) -> &LearnConfig {
        &self.cfg
    }

    /// The tenant this learner is attached to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The tenant's seeded A/B variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Which table is currently serving live decisions.
    pub fn serving(&self) -> Table {
        self.serving
    }

    /// Number of stored points the tables index into.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Snapshot-store generation the learned state belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Scored (clean-path) decisions so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions on which seeded exploration overrode the candidate.
    pub fn explored(&self) -> u64 {
        self.explored
    }

    /// Reconfigurations whose destination the prefetcher predicted.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Reconfigurations the prefetcher predicted wrongly (or not at all).
    pub fn prefetch_misses(&self) -> u64 {
        self.prefetch_misses
    }

    /// Total reconfiguration cost overlapped with execution on hits.
    pub fn prefetch_saved_drc(&self) -> f64 {
        self.prefetch_saved_drc
    }

    /// Cumulative one-step oracle regret of the incumbent's picks.
    pub fn cum_live_regret(&self) -> f64 {
        self.cum_live_regret
    }

    /// Cumulative one-step oracle regret of the candidate's picks.
    pub fn cum_shadow_regret(&self) -> f64 {
        self.cum_shadow_regret
    }

    /// Promotions applied so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// The incumbent value table.
    pub fn live_values(&self) -> &[f64] {
        &self.live
    }

    /// The candidate value table.
    pub fn shadow_values(&self) -> &[f64] {
        &self.shadow
    }

    /// Takes the shadow evaluation of the most recent scored decision
    /// (`None` if the last event was unscored: empty feasible set, fault
    /// ladder, quarantine).
    pub fn take_shadow(&mut self) -> Option<ShadowRecord> {
        self.last_shadow.take()
    }

    /// Promotes the candidate: the shadow table is copied over the
    /// incumbent and the incumbent serves from the next decision on.
    /// Deterministic given the stream position it is applied at — the
    /// daemon applies it batch-flush-first, like `SwapDb`.
    pub fn promote(&mut self) {
        let shadow = self.shadow.clone();
        self.live = shadow;
        self.serving = Table::Live;
        self.promotions += 1;
    }

    /// Re-seats the learner after a database hot-swap: tables resize to
    /// the new point count (retained where indices overlap, zero beyond),
    /// transition counts and the prefetch prediction reset (point indices
    /// are not comparable across generations), counters and regret
    /// accumulators survive.
    pub fn reseat(&mut self, points: usize, generation: u64) {
        self.live.resize(points, 0.0);
        self.shadow.resize(points, 0.0);
        self.transitions = vec![0; points * points];
        self.prediction = None;
        self.points = points;
        self.generation = generation;
        self.last_shadow = None;
    }

    /// The exploration stream: one avalanche-mixed draw per scored
    /// decision, keyed by `(seed, tenant, ordinal)`.
    fn explore_draw(&self, ordinal: u64) -> u64 {
        splitmix64(self.cfg.seed ^ self.tenant_hash ^ splitmix64(ordinal))
    }
}

impl clr_runtime::RuntimePolicy for LearnerState {
    fn decide(&mut self, input: &DecisionInput<'_, '_>) -> DecisionOutcome {
        let (ctx, current, feasible) = (input.ctx, input.current, input.feasible);
        let p_rc = self.cfg.p_rc;
        let gamma = self.cfg.gamma;
        let live_pick = ura_argmax(ctx, current, feasible, p_rc, |s| self.live[s], gamma);
        let shadow_pick = ura_argmax(ctx, current, feasible, p_rc, |s| self.shadow[s], gamma);
        let (Some((live_choice, live_ret)), Some((mut shadow_choice, mut shadow_ret))) =
            (live_pick, shadow_pick)
        else {
            // Empty feasible set: nothing to score, nothing to shadow.
            self.last_shadow = None;
            return DecisionOutcome {
                choice: None,
                score: None,
                p_rc: Some(p_rc),
            };
        };

        self.decisions += 1;
        // Seeded ε-greedy exploration, applied to the candidate only when
        // the candidate serves: a control tenant's behaviour must be
        // exactly the frozen incumbent's.
        if self.serving == Table::Shadow && self.cfg.epsilon > 0.0 {
            let draw = self.explore_draw(self.decisions);
            #[allow(clippy::cast_precision_loss)]
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.cfg.epsilon {
                let forced = feasible[(splitmix64(draw) % feasible.len() as u64) as usize];
                shadow_choice = forced;
                shadow_ret = base_ret(ctx, current, forced, p_rc) + gamma * self.shadow[forced];
                self.explored += 1;
            }
        }

        // One-step oracle over the same feasible set, γ-free.
        let oracle = feasible
            .iter()
            .map(|&q| base_ret(ctx, current, q, p_rc))
            .fold(f64::NEG_INFINITY, f64::max);
        let live_regret = (oracle - base_ret(ctx, current, live_choice, p_rc)).max(0.0);
        let shadow_regret = (oracle - base_ret(ctx, current, shadow_choice, p_rc)).max(0.0);
        self.cum_live_regret += live_regret;
        self.cum_shadow_regret += shadow_regret;

        let (choice, score) = match self.serving {
            Table::Live => (live_choice, live_ret),
            Table::Shadow => (shadow_choice, shadow_ret),
        };
        self.last_shadow = Some(ShadowRecord {
            event: self.decisions as usize,
            live_choice,
            shadow_choice,
            live_regret,
            shadow_regret,
            serving: self.serving,
            variant: self.variant,
        });
        DecisionOutcome {
            choice: Some(choice),
            score: Some(score),
            p_rc: Some(p_rc),
        }
    }

    fn observe(&mut self, feedback: &Feedback<'_, '_>) {
        let (ctx, from, to) = (feedback.ctx, feedback.from, feedback.to);
        if from >= self.points || to >= self.points {
            return;
        }
        // Prefetch accounting: a reconfiguration whose destination the
        // previous prediction named overlaps its cost with execution.
        if to != from {
            if self.prediction == Some(to) {
                self.prefetch_hits += 1;
                self.prefetch_saved_drc += ctx.drc(from, to);
            } else {
                self.prefetch_misses += 1;
            }
        }
        self.transitions[from * self.points + to] += 1;
        // TD(0) update of the candidate from the executed transition —
        // including ladder-served transitions the policy did not pick:
        // the candidate learns from reality, not from its own plan.
        let reward = base_ret(ctx, from, to, self.cfg.p_rc);
        let alpha = self.cfg.alpha;
        let gamma = self.cfg.gamma;
        self.shadow[from] += alpha * (reward + gamma * self.shadow[to] - self.shadow[from]);
        // Refresh the prediction from the new state's outgoing counts:
        // the most-travelled move, ties to the lower index, none without
        // history.
        let row = &self.transitions[to * self.points..(to + 1) * self.points];
        self.prediction = row
            .iter()
            .enumerate()
            .filter(|&(j, &c)| j != to && c > 0)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(j, _)| j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{DesignPoint, DesignPointDb, PointOrigin, QosSpec};
    use clr_platform::Platform;
    use clr_runtime::RuntimePolicy;
    use clr_sched::{Mapping, SystemMetrics};
    use clr_taskgraph::jpeg_encoder;

    fn fixture(n: usize) -> (clr_taskgraph::TaskGraph, Platform, DesignPointDb) {
        let graph = jpeg_encoder();
        let platform = Platform::dac19();
        let mapping = Mapping::first_fit(&graph, &platform).unwrap();
        let mut db = DesignPointDb::new("t");
        for i in 0..n {
            let f = i as f64 / n as f64;
            db.push(DesignPoint::new(
                mapping.clone(),
                SystemMetrics {
                    makespan: 50.0 + 100.0 * f,
                    reliability: 0.6 + 0.35 * f,
                    energy: 1.0 + f,
                    peak_power: 1.0,
                    mean_mttf: 100.0,
                },
                PointOrigin::Pareto,
            ));
        }
        (graph, platform, db)
    }

    fn learner(tenant: &str, points: usize, epsilon: f64, seed: u64) -> LearnerState {
        LearnerState::new(
            tenant,
            points,
            0,
            LearnConfig::new(0.5, 0.6, 0.2, epsilon, seed).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn scored_decisions_record_nonnegative_regret() {
        let (g, p, db) = fixture(8);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let spec = QosSpec::new(f64::MAX, 0.0);
        let feasible = ctx.feasible(&spec);
        let mut l = learner("cam0", db.len(), 0.0, 7);
        let mut current = 0usize;
        for _ in 0..20 {
            let out = l.decide(&DecisionInput {
                ctx: &ctx,
                current,
                spec: &spec,
                feasible: &feasible,
            });
            let to = out.choice.unwrap();
            l.observe(&Feedback {
                ctx: &ctx,
                from: current,
                to,
            });
            let s = l.take_shadow().unwrap();
            assert!(s.live_regret >= 0.0 && s.live_regret.is_finite());
            assert!(s.shadow_regret >= 0.0 && s.shadow_regret.is_finite());
            current = to;
        }
        assert_eq!(l.decisions(), 20);
        assert!(l.cum_live_regret() >= 0.0);
    }

    #[test]
    fn empty_feasible_set_scores_nothing() {
        let (g, p, db) = fixture(4);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let spec = QosSpec::new(0.0, 1.0);
        let mut l = learner("cam0", db.len(), 0.1, 7);
        let out = l.decide(&DecisionInput {
            ctx: &ctx,
            current: 0,
            spec: &spec,
            feasible: &[],
        });
        assert_eq!(out.choice, None);
        assert_eq!(l.take_shadow(), None);
        assert_eq!(l.decisions(), 0);
    }

    #[test]
    fn control_tenants_never_explore() {
        let (g, p, db) = fixture(8);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let spec = QosSpec::new(f64::MAX, 0.0);
        let feasible = ctx.feasible(&spec);
        // Find a control tenant under this seed.
        let name = (0..32)
            .map(|i| format!("t{i}"))
            .find(|n| assign_variant(7, n) == Variant::Control)
            .unwrap();
        let mut l = learner(&name, db.len(), 0.9, 7);
        assert_eq!(l.serving(), Table::Live);
        for _ in 0..50 {
            let _ = l.decide(&DecisionInput {
                ctx: &ctx,
                current: 0,
                spec: &spec,
                feasible: &feasible,
            });
        }
        assert_eq!(l.explored(), 0, "exploration is candidate-serving only");
    }

    #[test]
    fn treatment_tenants_explore_at_the_seeded_rate() {
        let (g, p, db) = fixture(8);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let spec = QosSpec::new(f64::MAX, 0.0);
        let feasible = ctx.feasible(&spec);
        let name = (0..32)
            .map(|i| format!("t{i}"))
            .find(|n| assign_variant(7, n) == Variant::Treatment)
            .unwrap();
        let mut a = learner(&name, db.len(), 0.5, 7);
        let mut b = learner(&name, db.len(), 0.5, 7);
        for _ in 0..200 {
            let oa = a.decide(&DecisionInput {
                ctx: &ctx,
                current: 0,
                spec: &spec,
                feasible: &feasible,
            });
            let ob = b.decide(&DecisionInput {
                ctx: &ctx,
                current: 0,
                spec: &spec,
                feasible: &feasible,
            });
            assert_eq!(oa, ob, "the exploration stream is deterministic");
        }
        assert!(a.explored() > 50 && a.explored() < 150, "{}", a.explored());
    }

    #[test]
    fn td_updates_move_the_candidate_only() {
        let (g, p, db) = fixture(6);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let mut l = learner("cam0", db.len(), 0.0, 7);
        l.observe(&Feedback {
            ctx: &ctx,
            from: 0,
            to: 1,
        });
        assert!(l.shadow_values().iter().any(|&v| v != 0.0));
        assert!(l.live_values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn promote_copies_the_candidate_over_the_incumbent() {
        let (g, p, db) = fixture(6);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let mut l = learner("cam0", db.len(), 0.0, 7);
        for _ in 0..5 {
            l.observe(&Feedback {
                ctx: &ctx,
                from: 0,
                to: 1,
            });
        }
        assert_ne!(l.live_values(), l.shadow_values());
        l.promote();
        assert_eq!(l.live_values(), l.shadow_values());
        assert_eq!(l.serving(), Table::Live);
        assert_eq!(l.promotions(), 1);
    }

    #[test]
    fn prefetch_predicts_the_most_travelled_move() {
        let (g, p, db) = fixture(6);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let mut l = learner("cam0", db.len(), 0.0, 7);
        // Build history: 1 → 2 twice, 1 → 3 once; from state 1 the
        // prediction must be 2.
        for to in [2, 3, 2] {
            l.observe(&Feedback {
                ctx: &ctx,
                from: 1,
                to,
            });
            // Return to 1 each time (refreshes prediction from state 1's
            // row last).
            l.observe(&Feedback {
                ctx: &ctx,
                from: to,
                to: 1,
            });
        }
        assert_eq!(l.prediction, Some(2));
        let before = l.prefetch_hits();
        l.observe(&Feedback {
            ctx: &ctx,
            from: 1,
            to: 2,
        });
        assert_eq!(l.prefetch_hits(), before + 1);
        l.observe(&Feedback {
            ctx: &ctx,
            from: 2,
            to: 1,
        });
        l.observe(&Feedback {
            ctx: &ctx,
            from: 1,
            to: 3,
        });
        assert!(l.prefetch_misses() >= 1);
        assert!(l.prefetch_saved_drc() >= 0.0);
    }

    #[test]
    fn reseat_resizes_tables_and_clears_history() {
        let (g, p, db) = fixture(6);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let mut l = learner("cam0", db.len(), 0.0, 7);
        for _ in 0..3 {
            l.observe(&Feedback {
                ctx: &ctx,
                from: 0,
                to: 1,
            });
        }
        let kept = l.shadow_values()[0];
        l.reseat(4, 9);
        assert_eq!(l.points(), 4);
        assert_eq!(l.generation(), 9);
        assert_eq!(l.shadow_values().len(), 4);
        assert_eq!(l.shadow_values()[0], kept, "overlapping indices survive");
        assert_eq!(l.prediction, None);
        assert!(l.transitions.iter().all(|&c| c == 0));
    }
}
