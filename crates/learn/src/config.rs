//! Learner hyper-parameters, carried by `PolicySpec` v2
//! (`aura+learn:<p_rc>,<gamma>,<alpha>,<epsilon>@<seed>`).

use serde::{Deserialize, Serialize};

/// Hyper-parameters of one tenant's online learner.
///
/// The first three are the AuRA agent's own parameters (the incumbent
/// value table is scored exactly like a frozen [`clr_runtime::AuraAgent`]
/// would score it); `epsilon` and `seed` drive the candidate's seeded
/// exploration and the deterministic A/B assignment.
///
/// # Examples
///
/// ```
/// use clr_learn::LearnConfig;
/// assert!(LearnConfig::new(0.5, 0.6, 0.1, 0.05, 7).is_ok());
/// assert!(LearnConfig::new(0.5, 0.6, 0.1, 1.5, 7).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnConfig {
    /// User modulation parameter `p_RC ∈ [0, 1]`.
    pub p_rc: f64,
    /// Discount factor `γ ∈ [0, 1)`.
    pub gamma: f64,
    /// Learning rate `α ∈ (0, 1]` of the candidate's TD updates.
    pub alpha: f64,
    /// Exploration rate `ε ∈ [0, 1)` of the candidate when it serves.
    pub epsilon: f64,
    /// Seed of the A/B assignment and the exploration stream.
    pub seed: u64,
}

impl LearnConfig {
    /// Builds a validated configuration.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the out-of-range parameter.
    pub fn new(p_rc: f64, gamma: f64, alpha: f64, epsilon: f64, seed: u64) -> Result<Self, String> {
        let cfg = Self {
            p_rc,
            gamma,
            alpha,
            epsilon,
            seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks every parameter range, for configurations assembled through
    /// the public fields (which [`LearnConfig::new`] never saw).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.p_rc.is_finite() && (0.0..=1.0).contains(&self.p_rc)) {
            return Err(format!("p_rc {} outside [0, 1]", self.p_rc));
        }
        if !(self.gamma.is_finite() && (0.0..1.0).contains(&self.gamma)) {
            return Err(format!("gamma {} outside [0, 1)", self.gamma));
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("alpha {} outside (0, 1]", self.alpha));
        }
        if !(self.epsilon.is_finite() && (0.0..1.0).contains(&self.epsilon)) {
            return Err(format!("epsilon {} outside [0, 1)", self.epsilon));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_parameter_is_range_checked() {
        assert!(LearnConfig::new(0.5, 0.6, 0.1, 0.0, 1).is_ok());
        assert!(LearnConfig::new(-0.1, 0.6, 0.1, 0.0, 1).is_err());
        assert!(LearnConfig::new(0.5, 1.0, 0.1, 0.0, 1).is_err());
        assert!(LearnConfig::new(0.5, 0.6, 0.0, 0.0, 1).is_err());
        assert!(LearnConfig::new(0.5, 0.6, 0.1, 1.0, 1).is_err());
        assert!(LearnConfig::new(f64::NAN, 0.6, 0.1, 0.0, 1).is_err());
    }
}
