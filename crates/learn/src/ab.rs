//! Deterministic seeded A/B assignment of tenants to policy variants.
//!
//! The assignment is a pure function of `(seed, tenant name)` — no
//! coordinator, no stored table. Any process holding the fleet seed
//! (the daemon, `clr-serve ab`, a `clr-verify learn` lint) recomputes
//! the same split, which is what makes the rollout auditable: the
//! CLR091 lint re-derives every journaled variant and flags drift.

use serde::{Deserialize, Serialize};

/// Which policy variant a tenant is assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The incumbent (frozen) value table serves this tenant's decisions
    /// until an explicit `Promote`.
    Control,
    /// The online-learned candidate table serves this tenant's decisions
    /// from the first event.
    Treatment,
}

impl Variant {
    /// Stable lowercase label (journal `shadow` events, `ab` reports).
    pub fn label(self) -> &'static str {
        match self {
            Self::Control => "control",
            Self::Treatment => "treatment",
        }
    }

    /// Parses a [`Variant::label`] string.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "control" => Ok(Self::Control),
            "treatment" => Ok(Self::Treatment),
            other => Err(format!("unknown variant {other:?}")),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// FNV-1a 64 over a byte string — the workspace's standard cheap stable
/// hash (same constants as the snapshot and wire checksums).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finaliser: one full-avalanche mixing step.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Assigns a tenant to its A/B variant: a pure function of the fleet
/// seed and the tenant's name, split 50/50 by one avalanche-mixed bit.
///
/// # Examples
///
/// ```
/// use clr_learn::{assign_variant, Variant};
/// let v = assign_variant(7, "cam0");
/// assert_eq!(v, assign_variant(7, "cam0")); // stable
/// assert!(matches!(v, Variant::Control | Variant::Treatment));
/// ```
pub fn assign_variant(seed: u64, tenant: &str) -> Variant {
    if splitmix64(seed ^ fnv1a64(tenant.as_bytes())) & 1 == 0 {
        Variant::Control
    } else {
        Variant::Treatment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_stable_and_seed_sensitive() {
        let a = assign_variant(1, "cam0");
        assert_eq!(a, assign_variant(1, "cam0"));
        // Across many tenants, both arms must be populated.
        let names: Vec<String> = (0..64).map(|i| format!("tenant{i}")).collect();
        let controls = names
            .iter()
            .filter(|n| assign_variant(1, n) == Variant::Control)
            .count();
        assert!(controls > 8 && controls < 56, "split is unbalanced");
        // A different seed reshuffles at least one tenant.
        assert!(names
            .iter()
            .any(|n| assign_variant(1, n) != assign_variant(2, n)));
    }

    #[test]
    fn labels_round_trip() {
        for v in [Variant::Control, Variant::Treatment] {
            assert_eq!(Variant::parse(v.label()).unwrap(), v);
        }
        assert!(Variant::parse("candidate").is_err());
    }
}
