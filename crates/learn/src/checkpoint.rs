//! Generation-stamped learner checkpoints: the `CLRLRN1` sealed
//! container.
//!
//! Layout mirrors the snapshot containers (32-byte header: magic,
//! version u32 LE, flags u32 LE (0), payload length u64 LE, FNV-1a 64
//! checksum u64 LE, then a UTF-8 text payload). Floats are stored as
//! their IEEE-754 bit patterns in hex, so a decode → re-encode round
//! trip is **byte-identical** — the CLR092 lint's invariant.

use crate::ab::fnv1a64;
use crate::learner::{LearnerState, Table};
use crate::{LearnConfig, Variant};

/// Magic bytes opening every learner checkpoint.
pub const LEARN_MAGIC: [u8; 8] = *b"CLRLRN1\0";

/// The checkpoint format version this build reads and writes.
pub const LEARN_FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 32;

/// Why a learner checkpoint failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Fewer bytes than the fixed header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The first 8 bytes are not [`LEARN_MAGIC`].
    BadMagic,
    /// The header declares a version this build does not read.
    UnsupportedVersion {
        /// Declared version.
        version: u32,
    },
    /// Reserved flag bits are set.
    BadFlags {
        /// Declared flags word.
        flags: u32,
    },
    /// The declared payload length disagrees with the bytes present.
    LengthMismatch {
        /// Length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum declared in the header.
        declared: u64,
        /// Checksum of the bytes present.
        actual: u64,
    },
    /// A payload field is missing, malformed, or inconsistent.
    Meta(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooShort { len } => {
                write!(
                    f,
                    "{len} bytes is shorter than the {HEADER_LEN}-byte header"
                )
            }
            Self::BadMagic => write!(f, "bad magic (not a clr learner checkpoint)"),
            Self::UnsupportedVersion { version } => write!(
                f,
                "unsupported checkpoint version {version} (this build reads {LEARN_FORMAT_VERSION})"
            ),
            Self::BadFlags { flags } => write!(f, "reserved flag bits set: {flags:#x}"),
            Self::LengthMismatch { declared, actual } => write!(
                f,
                "declared payload length {declared} but {actual} bytes present"
            ),
            Self::ChecksumMismatch { declared, actual } => write!(
                f,
                "checksum mismatch: header {declared:#018x}, payload {actual:#018x}"
            ),
            Self::Meta(m) => write!(f, "bad checkpoint payload: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str, what: &str) -> Result<f64, CheckpointError> {
    let bits = u64::from_str_radix(s, 16)
        .map_err(|_| CheckpointError::Meta(format!("bad {what} bits {s:?}")))?;
    Ok(f64::from_bits(bits))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, CheckpointError> {
    s.parse()
        .map_err(|_| CheckpointError::Meta(format!("bad {what} {s:?}")))
}

impl LearnerState {
    /// Serialises the learner into a sealed `CLRLRN1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut p = String::new();
        let _ = writeln!(p, "tenant {}", self.tenant);
        let _ = writeln!(p, "generation {}", self.generation);
        let _ = writeln!(p, "p_rc {}", hex(self.cfg.p_rc));
        let _ = writeln!(p, "gamma {}", hex(self.cfg.gamma));
        let _ = writeln!(p, "alpha {}", hex(self.cfg.alpha));
        let _ = writeln!(p, "epsilon {}", hex(self.cfg.epsilon));
        let _ = writeln!(p, "seed {}", self.cfg.seed);
        let _ = writeln!(p, "variant {}", self.variant.label());
        let _ = writeln!(p, "serving {}", self.serving.label());
        let _ = writeln!(p, "decisions {}", self.decisions);
        let _ = writeln!(p, "explored {}", self.explored);
        let _ = writeln!(p, "prefetch_hits {}", self.prefetch_hits);
        let _ = writeln!(p, "prefetch_misses {}", self.prefetch_misses);
        let _ = writeln!(p, "prefetch_saved_drc {}", hex(self.prefetch_saved_drc));
        let _ = writeln!(p, "cum_live_regret {}", hex(self.cum_live_regret));
        let _ = writeln!(p, "cum_shadow_regret {}", hex(self.cum_shadow_regret));
        let _ = writeln!(p, "promotions {}", self.promotions);
        let _ = writeln!(p, "points {}", self.points);
        match self.prediction {
            Some(j) => {
                let _ = writeln!(p, "prediction {j}");
            }
            None => {
                let _ = writeln!(p, "prediction none");
            }
        }
        let join = |vs: &[f64]| vs.iter().map(|&v| hex(v)).collect::<Vec<_>>().join(" ");
        let _ = writeln!(p, "live {}", join(&self.live));
        let _ = writeln!(p, "shadow {}", join(&self.shadow));
        let nonzero: Vec<(usize, u64)> = self
            .transitions
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        let _ = writeln!(p, "transitions {}", nonzero.len());
        for (i, c) in nonzero {
            let _ = writeln!(p, "t {} {} {c}", i / self.points, i % self.points);
        }
        let payload = p.into_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&LEARN_MAGIC);
        out.extend_from_slice(&LEARN_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and integrity-checks a `CLRLRN1` container.
    ///
    /// # Errors
    ///
    /// Returns the first failed container invariant (magic, version,
    /// flags, length, checksum), or a [`CheckpointError::Meta`] for a
    /// malformed or internally inconsistent payload — including a
    /// `variant` field that disagrees with the deterministic
    /// [`crate::assign_variant`] of the stored `(seed, tenant)`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        if bytes[0..8] != LEARN_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let quad = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let version = word(8);
        if version != LEARN_FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { version });
        }
        let flags = word(12);
        if flags != 0 {
            return Err(CheckpointError::BadFlags { flags });
        }
        let payload = &bytes[HEADER_LEN..];
        let declared_len = quad(16);
        if declared_len != payload.len() as u64 {
            return Err(CheckpointError::LengthMismatch {
                declared: declared_len,
                actual: payload.len() as u64,
            });
        }
        let declared_sum = quad(24);
        let actual_sum = fnv1a64(payload);
        if declared_sum != actual_sum {
            return Err(CheckpointError::ChecksumMismatch {
                declared: declared_sum,
                actual: actual_sum,
            });
        }
        let text = std::str::from_utf8(payload)
            .map_err(|e| CheckpointError::Meta(format!("payload is not UTF-8: {e}")))?;

        let mut lines = text.lines();
        let mut field = |key: &str| -> Result<String, CheckpointError> {
            let line = lines
                .next()
                .ok_or_else(|| CheckpointError::Meta(format!("missing {key} line")))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| {
                    CheckpointError::Meta(format!("expected `{key} <value>`, got {line:?}"))
                })
        };
        let tenant = field("tenant")?;
        let generation = parse_u64(&field("generation")?, "generation")?;
        let p_rc = parse_hex_f64(&field("p_rc")?, "p_rc")?;
        let gamma = parse_hex_f64(&field("gamma")?, "gamma")?;
        let alpha = parse_hex_f64(&field("alpha")?, "alpha")?;
        let epsilon = parse_hex_f64(&field("epsilon")?, "epsilon")?;
        let seed = parse_u64(&field("seed")?, "seed")?;
        let variant = Variant::parse(&field("variant")?).map_err(CheckpointError::Meta)?;
        let serving = Table::parse(&field("serving")?).map_err(CheckpointError::Meta)?;
        let decisions = parse_u64(&field("decisions")?, "decisions")?;
        let explored = parse_u64(&field("explored")?, "explored")?;
        let prefetch_hits = parse_u64(&field("prefetch_hits")?, "prefetch_hits")?;
        let prefetch_misses = parse_u64(&field("prefetch_misses")?, "prefetch_misses")?;
        let prefetch_saved_drc =
            parse_hex_f64(&field("prefetch_saved_drc")?, "prefetch_saved_drc")?;
        let cum_live_regret = parse_hex_f64(&field("cum_live_regret")?, "cum_live_regret")?;
        let cum_shadow_regret = parse_hex_f64(&field("cum_shadow_regret")?, "cum_shadow_regret")?;
        let promotions = parse_u64(&field("promotions")?, "promotions")?;
        let index = |v: u64, key: &str| -> Result<usize, CheckpointError> {
            usize::try_from(v)
                .map_err(|_| CheckpointError::Meta(format!("{key} {v} exceeds the address space")))
        };
        let points = index(parse_u64(&field("points")?, "points")?, "points")?;
        let prediction = match field("prediction")?.as_str() {
            "none" => None,
            s => {
                let j = index(parse_u64(s, "prediction")?, "prediction")?;
                if j >= points {
                    return Err(CheckpointError::Meta(format!(
                        "prediction {j} out of range for {points} points"
                    )));
                }
                Some(j)
            }
        };
        let table = |line: String, key: &str| -> Result<Vec<f64>, CheckpointError> {
            if line.is_empty() && points == 0 {
                return Ok(Vec::new());
            }
            let vs: Result<Vec<f64>, _> = line.split(' ').map(|s| parse_hex_f64(s, key)).collect();
            let vs = vs?;
            if vs.len() != points {
                return Err(CheckpointError::Meta(format!(
                    "{key} table holds {} values for {points} points",
                    vs.len()
                )));
            }
            Ok(vs)
        };
        let live = table(field("live")?, "live")?;
        let shadow = table(field("shadow")?, "shadow")?;
        let n_trans = index(
            parse_u64(&field("transitions")?, "transitions")?,
            "transitions",
        )?;
        let mut transitions = vec![0u64; points * points];
        let mut last: Option<(usize, usize)> = None;
        for _ in 0..n_trans {
            let line = lines
                .next()
                .ok_or_else(|| CheckpointError::Meta("missing transition line".into()))?;
            let mut parts = line.split(' ');
            if parts.next() != Some("t") {
                return Err(CheckpointError::Meta(format!(
                    "expected `t <from> <to> <count>`, got {line:?}"
                )));
            }
            let from = index(
                parse_u64(parts.next().unwrap_or(""), "transition from")?,
                "transition from",
            )?;
            let to = index(
                parse_u64(parts.next().unwrap_or(""), "transition to")?,
                "transition to",
            )?;
            let count = parse_u64(parts.next().unwrap_or(""), "transition count")?;
            if parts.next().is_some() {
                return Err(CheckpointError::Meta(format!(
                    "trailing tokens in {line:?}"
                )));
            }
            if from >= points || to >= points {
                return Err(CheckpointError::Meta(format!(
                    "transition {from} → {to} out of range for {points} points"
                )));
            }
            if count == 0 {
                return Err(CheckpointError::Meta(format!(
                    "zero-count transition {from} → {to}"
                )));
            }
            if last.is_some_and(|l| l >= (from, to)) {
                return Err(CheckpointError::Meta("transitions out of order".into()));
            }
            last = Some((from, to));
            transitions[from * points + to] = count;
        }
        if lines.next().is_some() {
            return Err(CheckpointError::Meta(
                "trailing lines after transitions".into(),
            ));
        }

        let cfg = LearnConfig {
            p_rc,
            gamma,
            alpha,
            epsilon,
            seed,
        };
        cfg.validate().map_err(CheckpointError::Meta)?;
        let mut state = LearnerState::new(tenant.clone(), points, generation, cfg)
            .map_err(CheckpointError::Meta)?;
        if state.variant != variant {
            return Err(CheckpointError::Meta(format!(
                "variant {variant} disagrees with assign_variant({seed}, {tenant:?}) = {}",
                state.variant
            )));
        }
        if !(prefetch_saved_drc.is_finite()
            && cum_live_regret.is_finite()
            && cum_shadow_regret.is_finite())
        {
            return Err(CheckpointError::Meta("non-finite accumulator".into()));
        }
        state.serving = serving;
        state.prediction = prediction;
        state.live = live;
        state.shadow = shadow;
        state.transitions = transitions;
        state.decisions = decisions;
        state.explored = explored;
        state.prefetch_hits = prefetch_hits;
        state.prefetch_misses = prefetch_misses;
        state.prefetch_saved_drc = prefetch_saved_drc;
        state.cum_live_regret = cum_live_regret;
        state.cum_shadow_regret = cum_shadow_regret;
        state.promotions = promotions;
        Ok(state)
    }
}

/// `true` when `bytes` opens with the learner-checkpoint magic (cheap
/// artifact sniffing for directory scans).
pub fn is_learn_checkpoint(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && bytes[0..8] == LEARN_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_runtime::{Feedback, RuntimeContext, RuntimePolicy};

    fn trained() -> LearnerState {
        use clr_dse::{DesignPoint, DesignPointDb, PointOrigin};
        use clr_sched::{Mapping, SystemMetrics};
        let graph = clr_taskgraph::jpeg_encoder();
        let platform = clr_platform::Platform::dac19();
        let mapping = Mapping::first_fit(&graph, &platform).unwrap();
        let mut db = DesignPointDb::new("t");
        for i in 0..5 {
            let f = f64::from(i) / 5.0;
            db.push(DesignPoint::new(
                mapping.clone(),
                SystemMetrics {
                    makespan: 50.0 + 100.0 * f,
                    reliability: 0.6 + 0.35 * f,
                    energy: 1.0 + f,
                    peak_power: 1.0,
                    mean_mttf: 100.0,
                },
                PointOrigin::Pareto,
            ));
        }
        let ctx = RuntimeContext::new(&graph, &platform, &db);
        let mut l = LearnerState::new(
            "cam0",
            5,
            3,
            LearnConfig::new(0.5, 0.6, 0.2, 0.1, 7).unwrap(),
        )
        .unwrap();
        for (from, to) in [(0, 1), (1, 2), (2, 1), (1, 2), (2, 0)] {
            l.observe(&Feedback {
                ctx: &ctx,
                from,
                to,
            });
        }
        l
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let l = trained();
        let bytes = l.to_bytes();
        let back = LearnerState::from_bytes(&bytes).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.to_bytes(), bytes, "decode → re-encode must be exact");
        assert!(is_learn_checkpoint(&bytes));
    }

    #[test]
    fn corruption_is_detected() {
        let l = trained();
        let bytes = l.to_bytes();
        assert_eq!(
            LearnerState::from_bytes(&bytes[..16]),
            Err(CheckpointError::TooShort { len: 16 })
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            LearnerState::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        );
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            LearnerState::from_bytes(&flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert_eq!(
            LearnerState::from_bytes(&bad_version),
            Err(CheckpointError::UnsupportedVersion { version: 99 })
        );
    }

    #[test]
    fn tampered_variant_is_rejected() {
        let l = trained();
        let bytes = l.to_bytes();
        let text = std::str::from_utf8(&bytes[32..]).unwrap();
        let flipped = match l.variant {
            Variant::Control => text.replace("variant control", "variant treatment"),
            Variant::Treatment => text.replace("variant treatment", "variant control"),
        };
        let mut out = Vec::new();
        out.extend_from_slice(&LEARN_MAGIC);
        out.extend_from_slice(&LEARN_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(flipped.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(flipped.as_bytes()).to_le_bytes());
        out.extend_from_slice(flipped.as_bytes());
        let err = LearnerState::from_bytes(&out).unwrap_err();
        assert!(matches!(err, CheckpointError::Meta(m) if m.contains("assign_variant")));
    }
}
