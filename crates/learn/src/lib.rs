//! Online policy learning for the serve loop — the "Online AuRA" layer.
//!
//! The offline pipeline trains an AuRA agent against a simulator and
//! freezes it; this crate closes the loop at serve time. Each tenant
//! carries a [`LearnerState`] holding **two** value tables over the same
//! stored design points:
//!
//! * the **incumbent** (`live`) — frozen, exactly what a deployed
//!   [`clr_runtime::AuraAgent`] would serve;
//! * the **candidate** (`shadow`) — TD(0)-updated online from every
//!   executed transition the session reports through the
//!   [`observe`](clr_runtime::RuntimePolicy::observe) hook.
//!
//! Every scored decision evaluates *both* tables and records a
//! [`ShadowRecord`] with each pick's one-step counterfactual regret, so
//! the candidate is judged on the same events the incumbent served. A
//! deterministic seeded A/B split ([`assign_variant`]) decides which
//! table actually serves each tenant; an explicit `Promote` control
//! frame copies the candidate over the incumbent at a deterministic
//! stream position. Learned transition counts double as a
//! reconfiguration **prefetch** predictor whose hits overlap
//! reconfiguration cost with execution.
//!
//! Everything here is a pure function of `(config, tenant name, event
//! stream)` — no wall clock, no global RNG — so replays are
//! byte-identical at any `CLR_THREADS`, and learner state checkpoints
//! ([`LearnerState::to_bytes`]) survive restarts and database hot-swaps
//! with byte-exact round-trips.

mod ab;
mod checkpoint;
mod config;
mod learner;

pub use ab::{assign_variant, fnv1a64, Variant};
pub use checkpoint::{is_learn_checkpoint, CheckpointError, LEARN_FORMAT_VERSION, LEARN_MAGIC};
pub use config::LearnConfig;
pub use learner::{LearnerState, ShadowRecord, Table};
