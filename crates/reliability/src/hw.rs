//! Hardware-layer (spatial redundancy) methods.
//!
//! Table 2: sample methods are partial TMR and circuit hardening. Spatial
//! redundancy either reduces the *effective fault rate* seen by the logic
//! (hardening) or masks manifested errors by majority voting (TMR).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Fraction of logic protected by partial TMR.
const PARTIAL_TMR_COVERAGE: f64 = 0.6;

/// A hardware-layer fault-mitigation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HwMethod {
    /// No hardware redundancy.
    #[default]
    None,
    /// Radiation-hardened circuit variant: the effective SEU rate drops by
    /// 5× at a 25 % power and 5 % timing cost.
    Hardening,
    /// Partial triple-modular redundancy over the most vulnerable 60 % of
    /// the logic: protected faults need a double fault to escape the voter.
    /// 70 % extra power, 8 % extra latency.
    PartialTmr,
    /// Full TMR with a majority voter: only double faults escape.
    /// 220 % extra power, 10 % extra latency.
    FullTmr,
}

impl HwMethod {
    /// All hardware methods, from cheapest to most protective.
    pub const ALL: [HwMethod; 4] = [
        HwMethod::None,
        HwMethod::Hardening,
        HwMethod::PartialTmr,
        HwMethod::FullTmr,
    ];

    /// Execution-time inflation factor.
    pub fn time_factor(&self) -> f64 {
        match self {
            HwMethod::None => 1.0,
            HwMethod::Hardening => 1.05,
            HwMethod::PartialTmr => 1.08,
            HwMethod::FullTmr => 1.10,
        }
    }

    /// Power inflation factor.
    pub fn power_factor(&self) -> f64 {
        match self {
            HwMethod::None => 1.0,
            HwMethod::Hardening => 1.25,
            HwMethod::PartialTmr => 1.70,
            HwMethod::FullTmr => 3.20,
        }
    }

    /// Multiplier on the effective SEU rate before exposure is computed
    /// (hardening shields the circuit; redundancy does not change the raw
    /// rate).
    pub fn rate_factor(&self) -> f64 {
        match self {
            HwMethod::Hardening => 0.2,
            _ => 1.0,
        }
    }

    /// Transforms the per-attempt manifested error probability through the
    /// spatial-redundancy voter.
    ///
    /// For TMR the escape probability is that of ≥2 replica failures:
    /// `3p²(1−p) + p³`; partial TMR applies that to the protected fraction
    /// only.
    pub fn mask(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            HwMethod::None | HwMethod::Hardening => p,
            HwMethod::PartialTmr => {
                let c = PARTIAL_TMR_COVERAGE;
                ((1.0 - c) * p + c * tmr_escape(p)).clamp(0.0, 1.0)
            }
            HwMethod::FullTmr => tmr_escape(p),
        }
    }
}

/// Escape probability of a TMR voter whose replicas each fail with
/// probability `p`.
fn tmr_escape(p: f64) -> f64 {
    (3.0 * p * p * (1.0 - p) + p * p * p).clamp(0.0, 1.0)
}

impl fmt::Display for HwMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwMethod::None => write!(f, "hw:none"),
            HwMethod::Hardening => write!(f, "hw:harden"),
            HwMethod::PartialTmr => write!(f, "hw:ptmr"),
            HwMethod::FullTmr => write!(f, "hw:tmr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tmr_masks_small_errors_quadratically() {
        let p = 1e-3;
        let masked = HwMethod::FullTmr.mask(p);
        assert!(masked < 4e-6, "masked {masked}");
        assert!(masked > 0.0);
    }

    #[test]
    fn partial_tmr_sits_between_none_and_full() {
        let p = 0.01;
        let none = HwMethod::None.mask(p);
        let part = HwMethod::PartialTmr.mask(p);
        let full = HwMethod::FullTmr.mask(p);
        assert!(full < part && part < none);
    }

    #[test]
    fn protection_costs_power() {
        assert!(HwMethod::FullTmr.power_factor() > HwMethod::PartialTmr.power_factor());
        assert!(HwMethod::PartialTmr.power_factor() > HwMethod::None.power_factor());
    }

    #[test]
    fn hardening_reduces_rate_not_mask() {
        assert_eq!(HwMethod::Hardening.mask(0.01), 0.01);
        assert!(HwMethod::Hardening.rate_factor() < 1.0);
    }

    #[test]
    fn display_is_unique() {
        let mut names: Vec<String> = HwMethod::ALL
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), HwMethod::ALL.len());
    }

    proptest! {
        #[test]
        fn mask_never_increases_error(p in 0.0f64..1.0) {
            for m in HwMethod::ALL {
                let q = m.mask(p);
                prop_assert!((0.0..=1.0).contains(&q));
                // Voting helps whenever p < 1/2; never hurts beyond p itself
                // in the small-p regime we operate in.
                if p < 0.5 {
                    prop_assert!(q <= p + 1e-12, "{m}: {q} > {p}");
                }
            }
        }
    }
}
