//! Weibull lifetime / aging model.
//!
//! Table 2 lists the Weibull *scale parameter* `η(t, i)` — a stress
//! indicator derived from the thermal profile of executing `Impl(t, i)` —
//! and the `MTTF` among the task-level metrics. We model the scale
//! parameter as the baseline `η₀` derated by the power (∝ thermal) stress
//! of the implementation, and the MTTF by the Weibull mean
//! `η · Γ(1 + 1/β)` with the PE type's aging shape `β`.

use clr_stats::gamma;

use crate::FaultModel;

/// Derates the baseline Weibull scale parameter `η₀` by power stress.
///
/// `η = η₀ · (W_ref / W)^θ` with the reference power and stress exponent
/// taken from the [`FaultModel`]; hotter (higher-power) implementations age
/// the silicon faster and shrink `η`.
///
/// # Examples
///
/// ```
/// use clr_reliability::{weibull_scale, FaultModel};
/// let fm = FaultModel::default();
/// let cool = weibull_scale(&fm, 50.0);
/// let hot = weibull_scale(&fm, 200.0);
/// assert!(cool > hot);
/// ```
pub fn weibull_scale(fm: &FaultModel, power_mw: f64) -> f64 {
    let w = power_mw.max(1e-9);
    fm.eta0() * (FaultModel::REFERENCE_POWER_MW / w).powf(fm.stress_theta())
}

/// Mean time to failure of a Weibull process with scale `eta` and shape
/// `beta`: `MTTF = η · Γ(1 + 1/β)`.
///
/// # Panics
///
/// Panics if `beta <= 0` (a platform-model bug).
///
/// # Examples
///
/// ```
/// // β = 1 degenerates to the exponential distribution: MTTF = η.
/// let m = clr_reliability::mttf(5000.0, 1.0);
/// assert!((m - 5000.0).abs() < 1e-6);
/// ```
pub fn mttf(eta: f64, beta: f64) -> f64 {
    assert!(beta > 0.0, "weibull shape beta must be > 0, got {beta}");
    eta * gamma(1.0 + 1.0 / beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_power_is_identity() {
        let fm = FaultModel::default();
        let eta = weibull_scale(&fm, FaultModel::REFERENCE_POWER_MW);
        assert!((eta - fm.eta0()).abs() / fm.eta0() < 1e-12);
    }

    #[test]
    fn higher_shape_changes_mttf_modestly() {
        // For β in [1, 3], Γ(1 + 1/β) stays within [Γ(4/3), Γ(2)] ≈ [0.893, 1].
        let m1 = mttf(1000.0, 1.0);
        let m2 = mttf(1000.0, 2.0);
        assert!(m2 < m1 && m2 > 0.85 * m1);
    }

    #[test]
    #[should_panic(expected = "beta must be > 0")]
    fn mttf_rejects_bad_shape() {
        let _ = mttf(1.0, 0.0);
    }

    proptest! {
        #[test]
        fn scale_is_monotone_decreasing_in_power(w1 in 1.0f64..1e4, w2 in 1.0f64..1e4) {
            let fm = FaultModel::default();
            let (lo, hi) = if w1 < w2 { (w1, w2) } else { (w2, w1) };
            prop_assert!(weibull_scale(&fm, lo) >= weibull_scale(&fm, hi));
        }

        #[test]
        fn mttf_positive(eta in 1.0f64..1e9, beta in 0.2f64..5.0) {
            prop_assert!(mttf(eta, beta) > 0.0);
        }
    }
}
