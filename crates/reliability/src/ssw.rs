//! System-software-layer (temporal redundancy) methods.
//!
//! Table 2: sample methods are retry and checkpointing. Temporal redundancy
//! re-executes work when the application-software layer (or the runtime)
//! *detects* an error; its effectiveness therefore depends on the detection
//! coverage `d` supplied by [`crate::AswMethod::detection`].

use clr_taskgraph::SwStack;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A system-software-layer fault-mitigation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SswMethod {
    /// No temporal redundancy: the first attempt is the only attempt.
    #[default]
    None,
    /// Re-execute the whole task up to `max_retries` additional times when
    /// an error is detected.
    Retry {
        /// Maximum number of re-executions after the first attempt.
        max_retries: u8,
    },
    /// Checkpoint the task into `intervals` equal segments; a detected
    /// error rolls back to the last checkpoint instead of restarting the
    /// task.
    Checkpoint {
        /// Number of checkpoint intervals (≥ 1).
        intervals: u8,
    },
}

impl SswMethod {
    /// A representative selection, cheapest first.
    pub const COMMON: [SswMethod; 5] = [
        SswMethod::None,
        SswMethod::Retry { max_retries: 1 },
        SswMethod::Retry { max_retries: 2 },
        SswMethod::Checkpoint { intervals: 2 },
        SswMethod::Checkpoint { intervals: 4 },
    ];

    /// Per-attempt orchestration overhead as a fraction of the attempt
    /// time; RTOS stacks checkpoint/retry more cheaply than bare metal.
    fn overhead(stack: SwStack) -> f64 {
        match stack {
            SwStack::BareMetal => 0.10,
            SwStack::Rtos => 0.04,
        }
    }

    /// Applies temporal redundancy.
    ///
    /// Inputs: per-attempt time `t`, per-attempt surviving error
    /// probability `p` (after HW masking and ASW correction), detection
    /// coverage `d`, and the hosting software stack.
    ///
    /// Returns `(min_time, avg_time, residual_error)`:
    /// `min_time` is the fault-free execution time (including fixed
    /// checkpointing overhead but no retries), `avg_time` the expectation
    /// over fault outcomes, `residual_error` the probability an error
    /// escapes into the task's output.
    pub fn apply(&self, t: f64, p: f64, d: f64, stack: SwStack) -> (f64, f64, f64) {
        let p = p.clamp(0.0, 1.0);
        let d = d.clamp(0.0, 1.0);
        // Undetected errors always escape; detected ones trigger recovery.
        let p_undetected = p * (1.0 - d);
        let p_detected = p * d;
        match *self {
            SswMethod::None => (t, t, p),
            SswMethod::Retry { max_retries } => {
                let k = max_retries as i32;
                let ovh = Self::overhead(stack) * t;
                // Expected attempts: truncated geometric in p_detected.
                let mut expected_attempts = 0.0;
                let mut prob_reaching = 1.0;
                for _ in 0..=k {
                    expected_attempts += prob_reaching;
                    prob_reaching *= p_detected;
                }
                let avg = t + (expected_attempts - 1.0) * (t + ovh);
                // Escapes: an undetected error on any executed attempt, or
                // detection budget exhausted.
                let exhausted = p_detected.powi(k + 1);
                let residual = (p_undetected * expected_attempts / (1.0 - p_detected).max(1e-12)
                    * (1.0 - p_detected)
                    + exhausted)
                    .clamp(0.0, 1.0);
                (t, avg, residual)
            }
            SswMethod::Checkpoint { intervals } => {
                let n = intervals.max(1) as f64;
                let ovh = Self::overhead(stack);
                // Fixed cost: one checkpoint per interval.
                let t_cp = t * (1.0 + ovh * n / 2.0);
                // A detected error re-executes only the failed segment
                // (expected one extra segment per detected error, retried
                // until the segment passes — segments are short, a single
                // retry almost always suffices; we charge the expectation).
                let seg = t_cp / n;
                let expected_rollback = p_detected * seg / (1.0 - p_detected).max(1e-12);
                let avg = t_cp + expected_rollback;
                // Segment-level retry keeps re-running detected errors, so
                // only undetected errors escape.
                let residual = p_undetected.clamp(0.0, 1.0);
                (t_cp, avg, residual)
            }
        }
    }
}

impl fmt::Display for SswMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SswMethod::None => write!(f, "ssw:none"),
            SswMethod::Retry { max_retries } => write!(f, "ssw:retry{max_retries}"),
            SswMethod::Checkpoint { intervals } => write!(f, "ssw:ckpt{intervals}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const T: f64 = 100.0;

    #[test]
    fn none_is_identity() {
        let (mn, avg, res) = SswMethod::None.apply(T, 0.02, 0.9, SwStack::Rtos);
        assert_eq!(mn, T);
        assert_eq!(avg, T);
        assert_eq!(res, 0.02);
    }

    #[test]
    fn retry_reduces_residual_error() {
        let p = 0.05;
        let d = 0.9;
        let (_, avg1, res1) = SswMethod::Retry { max_retries: 1 }.apply(T, p, d, SwStack::Rtos);
        let (_, avg3, res3) = SswMethod::Retry { max_retries: 3 }.apply(T, p, d, SwStack::Rtos);
        assert!(res1 < p);
        assert!(res3 < res1);
        assert!(avg3 >= avg1);
        assert!(avg1 > T);
    }

    #[test]
    fn retry_without_detection_is_useless() {
        let (_, avg, res) = SswMethod::Retry { max_retries: 3 }.apply(T, 0.05, 0.0, SwStack::Rtos);
        assert!((res - 0.05).abs() < 1e-12);
        assert!((avg - T).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_costs_fixed_overhead() {
        let (mn, avg, res) =
            SswMethod::Checkpoint { intervals: 4 }.apply(T, 0.05, 0.9, SwStack::BareMetal);
        assert!(mn > T);
        assert!(avg > mn);
        // Only the 10% undetected fraction escapes.
        assert!((res - 0.05 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn rtos_checkpoints_cheaper_than_bare_metal() {
        let (bm, _, _) =
            SswMethod::Checkpoint { intervals: 4 }.apply(T, 0.0, 0.9, SwStack::BareMetal);
        let (rt, _, _) = SswMethod::Checkpoint { intervals: 4 }.apply(T, 0.0, 0.9, SwStack::Rtos);
        assert!(rt < bm);
    }

    #[test]
    fn display_encodes_parameters() {
        assert_eq!(
            SswMethod::Retry { max_retries: 2 }.to_string(),
            "ssw:retry2"
        );
        assert_eq!(
            SswMethod::Checkpoint { intervals: 4 }.to_string(),
            "ssw:ckpt4"
        );
    }

    proptest! {
        #[test]
        fn apply_outputs_are_well_formed(
            p in 0.0f64..0.5,
            d in 0.0f64..1.0,
            k in 0u8..5,
            n in 1u8..8,
        ) {
            for (m, stack) in [
                (SswMethod::None, SwStack::Rtos),
                (SswMethod::Retry { max_retries: k }, SwStack::BareMetal),
                (SswMethod::Checkpoint { intervals: n }, SwStack::Rtos),
            ] {
                let (mn, avg, res) = m.apply(T, p, d, stack);
                prop_assert!(mn > 0.0);
                prop_assert!(avg >= mn - 1e-9, "{m}: avg {avg} < min {mn}");
                prop_assert!((0.0..=1.0).contains(&res));
                prop_assert!(res <= p + 1e-12, "{m}: residual grew");
            }
        }
    }
}
