//! Task-level performance metrics (paper Table 2).
//!
//! For one implementation of a task, one hosting PE type, one CLR
//! configuration and one fault environment, [`TaskMetrics::evaluate`]
//! derives:
//!
//! - `MinExT(t, i)` — fault-free execution time with all redundancy
//!   overheads but no retries,
//! - `AvgExT(t, i)` — expected execution time over fault outcomes,
//! - `ErrProb(t, i)` — probability an error escapes into the task output,
//! - `W(t, i)` — average active power,
//! - `η(t, i)` — Weibull scale parameter (stress indicator),
//! - `MTTF(t, i)` — mean time to failure.
//!
//! ## Composition model
//!
//! 1. The per-attempt time is the implementation's nominal time divided by
//!    the PE type's speed factor, inflated by the hardware and
//!    application-software time factors.
//! 2. The effective SEU rate is `λ_SEU × masking(PE) × rate(HW)`; exposure
//!    over one attempt gives the raw manifested-error probability
//!    `p = 1 − exp(−λ_eff · t_attempt)`.
//! 3. The hardware voter masks (`HwMethod::mask`), then the
//!    application-software layer corrects (`AswMethod::correct`) and
//!    provides detection coverage for the system-software layer's
//!    temporal redundancy (`SswMethod::apply`).

use clr_platform::PeType;
use clr_taskgraph::Implementation;
use serde::{Deserialize, Serialize};

use crate::{lifetime, ClrConfig, FaultModel};

/// The Table-2 task-level metrics of one `(implementation, PE type, CLR
/// configuration)` choice.
///
/// See the [module documentation](crate::TaskMetrics) and the module-level
/// docs for the derivation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Minimum (fault-free) execution time.
    pub min_ex_t: f64,
    /// Average execution time over fault outcomes.
    pub avg_ex_t: f64,
    /// Probability of an error escaping into the task's output.
    pub err_prob: f64,
    /// Average active power in milliwatts.
    pub power_mw: f64,
    /// Weibull scale parameter (stress indicator).
    pub eta: f64,
    /// Mean time to failure.
    pub mttf: f64,
}

impl TaskMetrics {
    /// Evaluates the task-level metrics.
    ///
    /// # Examples
    ///
    /// ```
    /// use clr_reliability::{ClrConfig, FaultModel, TaskMetrics};
    /// use clr_platform::{PeKind, PeType};
    /// use clr_taskgraph::{ImplId, Implementation, SwStack};
    ///
    /// let pe = PeType::new("c", PeKind::GeneralPurpose);
    /// let im = Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, 80.0);
    /// let m = TaskMetrics::evaluate(&im, &pe, &ClrConfig::NONE, &FaultModel::default());
    /// assert_eq!(m.min_ex_t, 80.0); // speed factor 1.0, no overheads
    /// assert!(m.err_prob > 0.0);
    /// ```
    pub fn evaluate(
        im: &Implementation,
        pe_type: &PeType,
        cfg: &ClrConfig,
        fm: &FaultModel,
    ) -> TaskMetrics {
        // 1. Per-attempt execution time.
        let t_base = im.nominal_time() / pe_type.speed_factor();
        let t_attempt = t_base * cfg.hw.time_factor() * cfg.asw.time_factor();

        // 2. Exposure → raw manifested error probability.
        let lambda_eff = fm.lambda_seu() * pe_type.masking_factor() * cfg.hw.rate_factor();
        let p_raw = 1.0 - (-lambda_eff * t_attempt).exp();

        // 3. Layered masking / correction / temporal redundancy.
        let p_hw = cfg.hw.mask(p_raw);
        let p_asw = cfg.asw.correct(p_hw);
        let detection = cfg.asw.detection();
        let (min_ex_t, avg_ex_t, err_prob) =
            cfg.ssw.apply(t_attempt, p_asw, detection, im.sw_stack());

        // 4. Power, stress and lifetime.
        let power_mw = pe_type.active_power_mw()
            * im.power_scale()
            * cfg.hw.power_factor()
            * cfg.asw.power_factor();
        let eta = lifetime::weibull_scale(fm, power_mw);
        let mttf = lifetime::mttf(eta, pe_type.aging_beta());

        TaskMetrics {
            min_ex_t,
            avg_ex_t,
            err_prob: err_prob.clamp(0.0, 1.0),
            power_mw,
            eta,
            mttf,
        }
    }

    /// Expected energy of one execution: `AvgExT × W`.
    pub fn energy(&self) -> f64 {
        self.avg_ex_t * self.power_mw
    }

    /// Functional reliability of the task: `F_t = 1 − ErrProb` (Eq. 2).
    pub fn reliability(&self) -> f64 {
        1.0 - self.err_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AswMethod, ConfigSpace, HwMethod, SswMethod};
    use clr_platform::PeKind;
    use clr_taskgraph::{ImplId, SwStack};
    use proptest::prelude::*;

    fn pe(masking: f64, speed: f64) -> PeType {
        PeType::new("t", PeKind::GeneralPurpose)
            .with_masking_factor(masking)
            .unwrap()
            .with_speed_factor(speed)
            .unwrap()
    }

    fn im(t: f64) -> Implementation {
        Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, t)
    }

    #[test]
    fn faster_pe_shortens_execution() {
        let fm = FaultModel::default();
        let slow = TaskMetrics::evaluate(&im(100.0), &pe(0.5, 1.0), &ClrConfig::NONE, &fm);
        let fast = TaskMetrics::evaluate(&im(100.0), &pe(0.5, 2.0), &ClrConfig::NONE, &fm);
        assert!(fast.min_ex_t < slow.min_ex_t);
        assert!(fast.err_prob < slow.err_prob, "less exposure, fewer errors");
    }

    #[test]
    fn lower_masking_factor_is_more_robust() {
        let fm = FaultModel::default();
        let frail = TaskMetrics::evaluate(&im(100.0), &pe(0.9, 1.0), &ClrConfig::NONE, &fm);
        let hard = TaskMetrics::evaluate(&im(100.0), &pe(0.2, 1.0), &ClrConfig::NONE, &fm);
        assert!(hard.err_prob < frail.err_prob);
    }

    #[test]
    fn tmr_trades_power_for_reliability() {
        let fm = FaultModel::default();
        let cfg = ClrConfig::new(HwMethod::FullTmr, SswMethod::None, AswMethod::None);
        let none = TaskMetrics::evaluate(&im(100.0), &pe(0.5, 1.0), &ClrConfig::NONE, &fm);
        let tmr = TaskMetrics::evaluate(&im(100.0), &pe(0.5, 1.0), &cfg, &fm);
        assert!(tmr.err_prob < none.err_prob);
        assert!(tmr.power_mw > none.power_mw);
        assert!(tmr.eta < none.eta, "hotter implementation ages faster");
        assert!(tmr.mttf < none.mttf);
    }

    #[test]
    fn retry_with_checksum_beats_retry_alone() {
        let fm = FaultModel::new(5e-3, 1e6, 1.0); // harsh environment
        let retry = ClrConfig::new(
            HwMethod::None,
            SswMethod::Retry { max_retries: 2 },
            AswMethod::None,
        );
        let retry_ck = ClrConfig::new(
            HwMethod::None,
            SswMethod::Retry { max_retries: 2 },
            AswMethod::Checksum,
        );
        let a = TaskMetrics::evaluate(&im(100.0), &pe(0.5, 1.0), &retry, &fm);
        let b = TaskMetrics::evaluate(&im(100.0), &pe(0.5, 1.0), &retry_ck, &fm);
        assert!(
            b.err_prob < a.err_prob,
            "better detection makes retry more effective: {} vs {}",
            b.err_prob,
            a.err_prob
        );
    }

    #[test]
    fn energy_and_reliability_helpers() {
        let fm = FaultModel::default();
        let m = TaskMetrics::evaluate(&im(50.0), &pe(0.5, 1.0), &ClrConfig::NONE, &fm);
        assert!((m.energy() - m.avg_ex_t * m.power_mw).abs() < 1e-9);
        assert!((m.reliability() - (1.0 - m.err_prob)).abs() < 1e-12);
    }

    #[test]
    fn zero_fault_rate_means_no_errors() {
        let fm = FaultModel::new(0.0, 1e6, 1.0);
        for cfg in ConfigSpace::fine().configs() {
            let m = TaskMetrics::evaluate(&im(100.0), &pe(0.5, 1.0), cfg, &fm);
            assert!(m.err_prob < 1e-12, "{cfg}: {}", m.err_prob);
            assert!((m.avg_ex_t - m.min_ex_t).abs() < 1e-9, "{cfg}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn metrics_are_well_formed_across_space(
            t in 1.0f64..500.0,
            masking in 0.05f64..1.0,
            speed in 0.5f64..2.0,
            lambda in 0.0f64..1e-2,
        ) {
            let fm = FaultModel::new(lambda, 1e6, 1.0);
            let p = pe(masking, speed);
            let i = im(t);
            for cfg in ConfigSpace::fine().configs() {
                let m = TaskMetrics::evaluate(&i, &p, cfg, &fm);
                prop_assert!(m.min_ex_t > 0.0);
                prop_assert!(m.avg_ex_t >= m.min_ex_t - 1e-9);
                prop_assert!((0.0..=1.0).contains(&m.err_prob));
                prop_assert!(m.power_mw > 0.0);
                prop_assert!(m.eta > 0.0 && m.mttf > 0.0);
            }
        }

        #[test]
        fn any_mitigation_never_raises_error_vs_none(
            t in 1.0f64..500.0,
            lambda in 1e-6f64..5e-3,
        ) {
            let fm = FaultModel::new(lambda, 1e6, 1.0);
            let p = pe(0.6, 1.0);
            let i = im(t);
            let base = TaskMetrics::evaluate(&i, &p, &ClrConfig::NONE, &fm);
            for cfg in ConfigSpace::fine().configs() {
                // Mitigation lengthens attempts (more exposure) but the
                // masking/correction/retry must still win overall in the
                // small-error regime the models target.
                let m = TaskMetrics::evaluate(&i, &p, cfg, &fm);
                if cfg.is_none() { continue; }
                if base.err_prob < 0.2 {
                    prop_assert!(
                        m.err_prob <= base.err_prob * cfg.hw.time_factor() * cfg.asw.time_factor() + 1e-9,
                        "{cfg}: {} vs base {}", m.err_prob, base.err_prob
                    );
                }
            }
        }
    }
}
