//! Environmental fault model.

use serde::{Deserialize, Serialize};

/// The operating environment's fault characteristics.
///
/// The paper's working scenario keeps the single-event-upset rate `λ_SEU`
/// and resource availability constant while QoS requirements vary;
/// different `λ_SEU` values (e.g. orbital vs. terrestrial operation) are
/// separate instances of this model.
///
/// # Examples
///
/// ```
/// use clr_reliability::FaultModel;
/// let harsh = FaultModel::new(5e-4, 1.0e6, 1.0);
/// assert!(harsh.lambda_seu() > FaultModel::default().lambda_seu());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Raw single-event-upset rate per abstract time unit of exposed
    /// execution.
    lambda_seu: f64,
    /// Baseline Weibull scale parameter `η₀` (abstract time units) of the
    /// aging process at reference stress.
    eta0: f64,
    /// Exponent of the power-stress derating of `η`: doubling the power
    /// draw divides the scale parameter by `2^theta`.
    stress_theta: f64,
}

impl FaultModel {
    /// Reference power (mW) at which `η = η₀`.
    pub const REFERENCE_POWER_MW: f64 = 100.0;

    /// Creates a fault model.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_seu < 0`, `eta0 <= 0` or `stress_theta < 0`
    /// (invalid environments indicate configuration bugs).
    pub fn new(lambda_seu: f64, eta0: f64, stress_theta: f64) -> Self {
        assert!(lambda_seu >= 0.0, "lambda_seu must be >= 0");
        assert!(eta0 > 0.0, "eta0 must be > 0");
        assert!(stress_theta >= 0.0, "stress_theta must be >= 0");
        Self {
            lambda_seu,
            eta0,
            stress_theta,
        }
    }

    /// The raw SEU rate per time unit.
    pub fn lambda_seu(&self) -> f64 {
        self.lambda_seu
    }

    /// Baseline Weibull scale parameter.
    pub fn eta0(&self) -> f64 {
        self.eta0
    }

    /// Power-stress exponent.
    pub fn stress_theta(&self) -> f64 {
        self.stress_theta
    }

    /// Returns a copy with a different SEU rate (e.g. a changed operating
    /// environment).
    pub fn with_lambda_seu(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda_seu must be >= 0");
        self.lambda_seu = lambda;
        self
    }
}

impl Default for FaultModel {
    /// A moderate environment: `λ_SEU = 1e-4` per time unit, `η₀ = 1e6`,
    /// linear power-stress derating (`θ = 1`).
    fn default() -> Self {
        Self {
            lambda_seu: 1e-4,
            eta0: 1e6,
            stress_theta: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let fm = FaultModel::default();
        assert!(fm.lambda_seu() > 0.0);
        assert!(fm.eta0() > 0.0);
    }

    #[test]
    fn with_lambda_updates_only_rate() {
        let fm = FaultModel::default().with_lambda_seu(3e-3);
        assert_eq!(fm.lambda_seu(), 3e-3);
        assert_eq!(fm.eta0(), FaultModel::default().eta0());
    }

    #[test]
    #[should_panic(expected = "eta0")]
    fn rejects_nonpositive_eta0() {
        let _ = FaultModel::new(1e-4, 0.0, 1.0);
    }
}
