//! Application-software-layer (information redundancy) methods.
//!
//! Table 2: sample methods are code tripling, Hamming correction and
//! checksums (Nicolaidis 2010). Information redundancy either *detects*
//! errors — enabling the system-software layer to retry — or *corrects*
//! them in place.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error-detection coverage available with no explicit ASW method: a share
/// of corruptions crash or trap and are thus detected by the runtime.
const BASELINE_DETECTION: f64 = 0.50;

/// An application-software-layer fault-mitigation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AswMethod {
    /// No information redundancy; only crash-style errors are detected.
    #[default]
    None,
    /// Checksums over task outputs: high detection coverage at low cost,
    /// no correction.
    Checksum,
    /// Hamming-coded critical state: single-bit errors are corrected in
    /// place (85 % of manifested errors), the rest are mostly detected.
    HammingCorrection,
    /// Application-level code tripling with majority voting on results:
    /// executes the kernel three times, escaping only on double faults,
    /// and detects disagreement otherwise.
    CodeTripling,
}

impl AswMethod {
    /// All application-software methods, cheapest first.
    pub const ALL: [AswMethod; 4] = [
        AswMethod::None,
        AswMethod::Checksum,
        AswMethod::HammingCorrection,
        AswMethod::CodeTripling,
    ];

    /// Execution-time inflation factor (encoding, voting, re-execution).
    pub fn time_factor(&self) -> f64 {
        match self {
            AswMethod::None => 1.0,
            AswMethod::Checksum => 1.05,
            AswMethod::HammingCorrection => 1.15,
            AswMethod::CodeTripling => 3.15,
        }
    }

    /// Power inflation factor (extra memory traffic while encoding).
    pub fn power_factor(&self) -> f64 {
        match self {
            AswMethod::None => 1.0,
            AswMethod::Checksum => 1.02,
            AswMethod::HammingCorrection => 1.10,
            AswMethod::CodeTripling => 1.05,
        }
    }

    /// Transforms the per-attempt error probability by in-place
    /// *correction* (before any detection/retry).
    pub fn correct(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            AswMethod::None | AswMethod::Checksum => p,
            // 85 % of manifested errors are single-bit and corrected.
            AswMethod::HammingCorrection => 0.15 * p,
            // Majority vote over three executions: double faults escape.
            AswMethod::CodeTripling => (3.0 * p * p * (1.0 - p) + p * p * p).clamp(0.0, 1.0),
        }
    }

    /// Detection coverage for the errors that survive correction — the
    /// probability a surviving error is flagged so the system-software
    /// layer can retry or roll back.
    pub fn detection(&self) -> f64 {
        match self {
            AswMethod::None => BASELINE_DETECTION,
            AswMethod::Checksum => 0.95,
            AswMethod::HammingCorrection => 0.90,
            AswMethod::CodeTripling => 0.85,
        }
    }
}

impl fmt::Display for AswMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AswMethod::None => write!(f, "asw:none"),
            AswMethod::Checksum => write!(f, "asw:cksum"),
            AswMethod::HammingCorrection => write!(f, "asw:hamming"),
            AswMethod::CodeTripling => write!(f, "asw:triple"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn correction_orders_as_expected() {
        let p = 0.01;
        assert_eq!(AswMethod::None.correct(p), p);
        assert_eq!(AswMethod::Checksum.correct(p), p);
        assert!(AswMethod::HammingCorrection.correct(p) < p);
        assert!(AswMethod::CodeTripling.correct(p) < AswMethod::HammingCorrection.correct(p));
    }

    #[test]
    fn checksum_buys_detection_not_correction() {
        assert!(AswMethod::Checksum.detection() > AswMethod::None.detection());
        assert_eq!(AswMethod::Checksum.correct(0.2), 0.2);
    }

    #[test]
    fn tripling_costs_three_executions() {
        assert!(AswMethod::CodeTripling.time_factor() > 3.0);
    }

    proptest! {
        #[test]
        fn correct_stays_in_unit_interval(p in 0.0f64..1.0) {
            for m in AswMethod::ALL {
                let q = m.correct(p);
                prop_assert!((0.0..=1.0).contains(&q));
                if p < 0.5 {
                    prop_assert!(q <= p + 1e-12);
                }
            }
        }

        #[test]
        fn detection_is_a_probability(_x in 0..1i32) {
            for m in AswMethod::ALL {
                prop_assert!((0.0..=1.0).contains(&m.detection()));
            }
        }
    }
}
