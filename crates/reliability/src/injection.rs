//! Monte-Carlo fault injection: an *executable* model of one task
//! execution under a CLR configuration.
//!
//! Where [`crate::TaskMetrics::evaluate`] derives the Table-2 metrics
//! analytically, [`FaultInjector`] samples them by simulating individual
//! executions — SEUs strike during the exposure window, TMR replicas vote,
//! the application-software layer corrects/detects, and the
//! system-software layer retries or rolls back to checkpoints. The two
//! models share only the raw exposure probability, so agreement between
//! them is a meaningful cross-validation (exercised by this module's tests
//! and the `fault_injection` example).

use clr_platform::PeType;
use clr_taskgraph::Implementation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{AswMethod, ClrConfig, FaultModel, HwMethod, SswMethod};

/// Fraction of logic protected by partial TMR (mirrors the analytical
/// model's coverage).
const PARTIAL_TMR_COVERAGE: f64 = 0.6;
/// In-place correction probability of Hamming-coded state.
const HAMMING_CORRECTION: f64 = 0.85;

/// Outcome of one injected execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectionOutcome {
    /// Wall-clock execution time including retries/rollbacks.
    pub time: f64,
    /// `true` if an error escaped into the task's output.
    pub erroneous: bool,
    /// Number of whole-task attempts executed (≥ 1; segments of a
    /// checkpointed run count fractionally through `time` instead).
    pub attempts: u32,
}

/// Aggregate over many injected executions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectionEstimate {
    /// Number of simulated executions.
    pub trials: u32,
    /// Empirical escape probability (compare: `TaskMetrics::err_prob`).
    pub err_prob: f64,
    /// Empirical mean execution time (compare: `TaskMetrics::avg_ex_t`).
    pub avg_time: f64,
    /// Largest observed execution time.
    pub max_time: f64,
}

/// Simulates single-task executions under a CLR configuration.
///
/// # Examples
///
/// ```
/// use clr_reliability::{ClrConfig, FaultInjector, FaultModel};
/// use clr_platform::{PeKind, PeType};
/// use clr_taskgraph::{ImplId, Implementation, SwStack};
///
/// let pe = PeType::new("core", PeKind::GeneralPurpose);
/// let im = Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, 100.0);
/// let fm = FaultModel::new(1e-3, 1e6, 1.0);
/// let injector = FaultInjector::new(&im, &pe, ClrConfig::NONE, fm);
/// let est = injector.estimate(10_000, 7);
/// assert!(est.err_prob > 0.0 && est.err_prob < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Per-attempt execution time (HW + ASW inflation applied).
    attempt_time: f64,
    /// Effective SEU rate seen by the logic.
    lambda_eff: f64,
    hw: HwMethod,
    ssw: SswMethod,
    asw: AswMethod,
    /// Per-retry orchestration overhead (absolute time).
    retry_overhead: f64,
    /// Checkpointing per-interval overhead fraction.
    ckpt_overhead: f64,
}

impl FaultInjector {
    /// Builds an injector for one `(implementation, PE type, CLR config,
    /// environment)` — the same inputs as [`crate::TaskMetrics::evaluate`].
    pub fn new(im: &Implementation, pe_type: &PeType, cfg: ClrConfig, fm: FaultModel) -> Self {
        let t_base = im.nominal_time() / pe_type.speed_factor();
        let attempt_time = t_base * cfg.hw.time_factor() * cfg.asw.time_factor();
        let lambda_eff = fm.lambda_seu() * pe_type.masking_factor() * cfg.hw.rate_factor();
        let stack_overhead = match im.sw_stack() {
            clr_taskgraph::SwStack::BareMetal => 0.10,
            clr_taskgraph::SwStack::Rtos => 0.04,
        };
        Self {
            attempt_time,
            lambda_eff,
            hw: cfg.hw,
            ssw: cfg.ssw,
            asw: cfg.asw,
            retry_overhead: stack_overhead * attempt_time,
            ckpt_overhead: stack_overhead,
        }
    }

    /// Per-exposure raw manifested-error probability over `t` time units.
    fn p_raw(&self, t: f64) -> f64 {
        1.0 - (-self.lambda_eff * t).exp()
    }

    /// Samples whether a single execution window of `t` units ends with a
    /// manifested error after hardware spatial redundancy.
    fn sample_hw_error(&self, t: f64, rng: &mut StdRng) -> bool {
        let p = self.p_raw(t);
        match self.hw {
            HwMethod::None | HwMethod::Hardening => rng.gen_bool(p),
            HwMethod::FullTmr => {
                let fails = (0..3).filter(|_| rng.gen_bool(p)).count();
                fails >= 2
            }
            HwMethod::PartialTmr => {
                if rng.gen_bool(PARTIAL_TMR_COVERAGE) {
                    // Error potential lands in the protected region.
                    let fails = (0..3).filter(|_| rng.gen_bool(p)).count();
                    fails >= 2
                } else {
                    rng.gen_bool(p)
                }
            }
        }
    }

    /// Applies the application-software layer to a manifested error:
    /// returns `(still_erroneous, detected)`.
    fn sample_asw(&self, t: f64, erroneous: bool, rng: &mut StdRng) -> (bool, bool) {
        match self.asw {
            AswMethod::None | AswMethod::Checksum => {
                let d = erroneous && rng.gen_bool(self.asw.detection());
                (erroneous, d)
            }
            AswMethod::HammingCorrection => {
                if erroneous && rng.gen_bool(HAMMING_CORRECTION) {
                    (false, false) // corrected in place
                } else {
                    let d = erroneous && rng.gen_bool(self.asw.detection());
                    (erroneous, d)
                }
            }
            AswMethod::CodeTripling => {
                // Three virtual executions vote; exposure is per-execution.
                // The attempt time already includes the 3× inflation, so
                // each virtual run is exposed for roughly a third.
                let per_run = self.p_raw(t / 3.0);
                let fails = (0..3).filter(|_| rng.gen_bool(per_run)).count();
                let _ = erroneous; // the vote replaces the single-run sample
                let err = fails >= 2;
                let detected = (err || fails == 1) && rng.gen_bool(self.asw.detection());
                (err, err && detected)
            }
        }
    }

    /// One whole-task attempt: `(erroneous, detected)`.
    fn sample_attempt(&self, t: f64, rng: &mut StdRng) -> (bool, bool) {
        if matches!(self.asw, AswMethod::CodeTripling) {
            // Tripling subsumes the single-execution sample.
            self.sample_asw(t, false, rng)
        } else {
            let hw_err = self.sample_hw_error(t, rng);
            if !hw_err {
                return (false, false);
            }
            self.sample_asw(t, true, rng)
        }
    }

    /// Simulates one execution.
    pub fn run_once(&self, rng: &mut StdRng) -> InjectionOutcome {
        match self.ssw {
            SswMethod::None => {
                let (err, _) = self.sample_attempt(self.attempt_time, rng);
                InjectionOutcome {
                    time: self.attempt_time,
                    erroneous: err,
                    attempts: 1,
                }
            }
            SswMethod::Retry { max_retries } => {
                let mut time = 0.0;
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    time += self.attempt_time
                        + if attempts > 1 {
                            self.retry_overhead
                        } else {
                            0.0
                        };
                    let (err, detected) = self.sample_attempt(self.attempt_time, rng);
                    if !err {
                        return InjectionOutcome {
                            time,
                            erroneous: false,
                            attempts,
                        };
                    }
                    if !detected || attempts > max_retries as u32 {
                        // Undetected escape, or retry budget exhausted.
                        return InjectionOutcome {
                            time,
                            erroneous: true,
                            attempts,
                        };
                    }
                }
            }
            SswMethod::Checkpoint { intervals } => {
                let n = intervals.max(1) as u32;
                let t_total = self.attempt_time * (1.0 + self.ckpt_overhead * n as f64 / 2.0);
                let seg = t_total / n as f64;
                let mut time = 0.0;
                let mut escaped = false;
                for _ in 0..n {
                    // Re-run a segment while its error is detected.
                    loop {
                        time += seg;
                        let (err, detected) = self.sample_attempt(seg, rng);
                        if !err {
                            break;
                        }
                        if !detected {
                            escaped = true;
                            break;
                        }
                    }
                }
                InjectionOutcome {
                    time,
                    erroneous: escaped,
                    attempts: 1,
                }
            }
        }
    }

    /// Runs `trials` seeded executions and aggregates them.
    ///
    /// Each trial draws from its own RNG stream derived from
    /// `(seed, trial index)`, and times are accumulated in fixed
    /// [`TRIAL_CHUNK`]-sized partial sums combined in chunk order, so the
    /// estimate is bit-identical for every worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn estimate(&self, trials: u32, seed: u64) -> InjectionEstimate {
        self.estimate_with_threads(trials, seed, 0)
    }

    /// [`estimate`](Self::estimate) with an explicit worker-thread count
    /// (`0` = automatic: the `CLR_THREADS` environment variable, falling
    /// back to available parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn estimate_with_threads(
        &self,
        trials: u32,
        seed: u64,
        threads: usize,
    ) -> InjectionEstimate {
        self.estimate_obs(trials, seed, threads, &clr_obs::Obs::off(), "inject")
    }

    /// [`estimate_with_threads`](Self::estimate_with_threads) with journal
    /// instrumentation: after the serial chunk reduction an `inject` event
    /// records the campaign tally under `label`, plus aggregated pool
    /// statistics for the trial fan-out. With a disabled handle this is
    /// exactly [`estimate_with_threads`](Self::estimate_with_threads).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn estimate_obs(
        &self,
        trials: u32,
        seed: u64,
        threads: usize,
        obs: &clr_obs::Obs,
        label: &str,
    ) -> InjectionEstimate {
        assert!(trials > 0, "at least one trial is required");
        let scrambled = seed ^ 0x1417_ec70_4a11_0001;
        let chunks: Vec<(u32, u32)> = (0..trials)
            .step_by(TRIAL_CHUNK as usize)
            .map(|start| (start, trials.min(start + TRIAL_CHUNK)))
            .collect();
        let (partials, pool) = clr_par::par_map_stats(threads, &chunks, |_, &(start, end)| {
            let mut errors = 0u32;
            let mut time_sum = 0.0f64;
            let mut max_time = 0.0f64;
            for trial in start..end {
                let mut rng =
                    StdRng::seed_from_u64(clr_par::derive_seed(scrambled, u64::from(trial)));
                let out = self.run_once(&mut rng);
                if out.erroneous {
                    errors += 1;
                }
                time_sum += out.time;
                if out.time > max_time {
                    max_time = out.time;
                }
            }
            (errors, time_sum, max_time)
        });
        let mut errors = 0u32;
        let mut time_sum = 0.0f64;
        let mut max_time = 0.0f64;
        for (e, t, m) in partials {
            errors += e;
            time_sum += t;
            max_time = max_time.max(m);
        }
        let estimate = InjectionEstimate {
            trials,
            err_prob: f64::from(errors) / f64::from(trials),
            avg_time: time_sum / f64::from(trials),
            max_time,
        };
        if obs.enabled() {
            obs.emit_nondet(clr_obs::Event::Pool {
                site: format!("inject.{label}"),
                items: pool.items,
                workers: pool.workers,
                per_worker: pool.per_worker,
                queue_hwm: pool.queue_hwm,
            });
            obs.emit(clr_obs::Event::Inject {
                label: label.to_string(),
                trials: u64::from(trials),
                errors: u64::from(errors),
                err_prob: estimate.err_prob,
            });
            obs.counter_add("inject.trials", u64::from(trials));
            obs.counter_add("inject.errors", u64::from(errors));
        }
        estimate
    }
}

/// Trials per partial-sum chunk of [`FaultInjector::estimate`]: partials
/// are reduced in chunk order, making the floating-point accumulation (and
/// hence the estimate) independent of the worker-thread count.
pub const TRIAL_CHUNK: u32 = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskMetrics;
    use clr_platform::PeKind;
    use clr_taskgraph::{ImplId, SwStack};

    fn pe() -> PeType {
        PeType::new("c", PeKind::GeneralPurpose)
            .with_masking_factor(0.6)
            .unwrap()
    }

    fn im() -> Implementation {
        Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, 100.0)
    }

    fn harsh() -> FaultModel {
        FaultModel::new(2e-3, 1e6, 1.0)
    }

    /// Relative agreement check with a floor for tiny probabilities.
    fn close(analytic: f64, empirical: f64, rel: f64, abs_floor: f64) -> bool {
        (analytic - empirical).abs() <= rel * analytic.max(empirical) + abs_floor
    }

    #[test]
    fn bare_execution_matches_analytic_error() {
        let injector = FaultInjector::new(&im(), &pe(), ClrConfig::NONE, harsh());
        let est = injector.estimate(40_000, 1);
        let analytic = TaskMetrics::evaluate(&im(), &pe(), &ClrConfig::NONE, &harsh());
        assert!(
            close(analytic.err_prob, est.err_prob, 0.05, 1e-3),
            "analytic {} vs empirical {}",
            analytic.err_prob,
            est.err_prob
        );
        assert!((est.avg_time - analytic.avg_ex_t).abs() < 1e-9);
    }

    #[test]
    fn tmr_injection_matches_analytic_masking() {
        let cfg = ClrConfig::new(HwMethod::FullTmr, SswMethod::None, AswMethod::None);
        let injector = FaultInjector::new(&im(), &pe(), cfg, harsh());
        let est = injector.estimate(200_000, 2);
        let analytic = TaskMetrics::evaluate(&im(), &pe(), &cfg, &harsh());
        assert!(
            close(analytic.err_prob, est.err_prob, 0.25, 5e-4),
            "analytic {} vs empirical {}",
            analytic.err_prob,
            est.err_prob
        );
    }

    #[test]
    fn retry_injection_matches_analytic_residual_and_time() {
        let cfg = ClrConfig::new(
            HwMethod::None,
            SswMethod::Retry { max_retries: 2 },
            AswMethod::Checksum,
        );
        let injector = FaultInjector::new(&im(), &pe(), cfg, harsh());
        let est = injector.estimate(100_000, 3);
        let analytic = TaskMetrics::evaluate(&im(), &pe(), &cfg, &harsh());
        assert!(
            close(analytic.err_prob, est.err_prob, 0.35, 1e-3),
            "analytic {} vs empirical {}",
            analytic.err_prob,
            est.err_prob
        );
        assert!(
            close(analytic.avg_ex_t, est.avg_time, 0.02, 0.0),
            "analytic {} vs empirical {}",
            analytic.avg_ex_t,
            est.avg_time
        );
        assert!(est.max_time > est.avg_time, "some executions retried");
    }

    #[test]
    fn checkpoint_injection_escapes_only_undetected_errors() {
        let cfg = ClrConfig::new(
            HwMethod::None,
            SswMethod::Checkpoint { intervals: 4 },
            AswMethod::Checksum,
        );
        let injector = FaultInjector::new(&im(), &pe(), cfg, harsh());
        let est = injector.estimate(100_000, 4);
        let analytic = TaskMetrics::evaluate(&im(), &pe(), &cfg, &harsh());
        assert!(
            close(analytic.err_prob, est.err_prob, 0.5, 1e-3),
            "analytic {} vs empirical {}",
            analytic.err_prob,
            est.err_prob
        );
    }

    #[test]
    fn mitigation_ordering_is_preserved_empirically() {
        let none = FaultInjector::new(&im(), &pe(), ClrConfig::NONE, harsh()).estimate(50_000, 5);
        let tmr = FaultInjector::new(
            &im(),
            &pe(),
            ClrConfig::new(HwMethod::FullTmr, SswMethod::None, AswMethod::None),
            harsh(),
        )
        .estimate(50_000, 5);
        let full = FaultInjector::new(
            &im(),
            &pe(),
            ClrConfig::new(
                HwMethod::FullTmr,
                SswMethod::Retry { max_retries: 2 },
                AswMethod::Checksum,
            ),
            harsh(),
        )
        .estimate(50_000, 5);
        assert!(tmr.err_prob < none.err_prob);
        assert!(full.err_prob <= tmr.err_prob);
    }

    #[test]
    fn zero_rate_never_errs() {
        let injector = FaultInjector::new(
            &im(),
            &pe(),
            ClrConfig::NONE,
            FaultModel::new(0.0, 1e6, 1.0),
        );
        let est = injector.estimate(1_000, 6);
        assert_eq!(est.err_prob, 0.0);
        assert_eq!(est.avg_time, est.max_time);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let injector = FaultInjector::new(&im(), &pe(), ClrConfig::NONE, harsh());
        assert_eq!(injector.estimate(5_000, 9), injector.estimate(5_000, 9));
    }

    #[test]
    fn serial_and_parallel_estimates_are_bit_identical() {
        let injector = FaultInjector::new(&im(), &pe(), ClrConfig::NONE, harsh());
        // 5000 trials span multiple TRIAL_CHUNK chunks.
        let serial = injector.estimate_with_threads(5_000, 9, 1);
        let parallel = injector.estimate_with_threads(5_000, 9, 4);
        assert_eq!(serial.trials, parallel.trials);
        assert_eq!(serial.err_prob.to_bits(), parallel.err_prob.to_bits());
        assert_eq!(serial.avg_time.to_bits(), parallel.avg_time.to_bits());
        assert_eq!(serial.max_time.to_bits(), parallel.max_time.to_bits());
    }

    #[test]
    fn obs_journals_the_campaign_tally() {
        let injector = FaultInjector::new(&im(), &pe(), ClrConfig::NONE, harsh());
        let obs = clr_obs::Obs::new(clr_obs::ObsMode::Json);
        let est = injector.estimate_obs(5_000, 9, 1, &obs, "unit");
        let events = obs.det_events();
        let tally = events
            .iter()
            .find_map(|e| match e {
                clr_obs::Event::Inject {
                    label,
                    trials,
                    errors,
                    err_prob,
                } => Some((label.clone(), *trials, *errors, *err_prob)),
                _ => None,
            })
            .expect("inject event journaled");
        assert_eq!(tally.0, "unit");
        assert_eq!(tally.1, 5_000);
        assert!((tally.3 - est.err_prob).abs() < f64::EPSILON);
        assert_eq!(tally.2 as f64 / 5_000.0, est.err_prob);
        // The instrumented run returns the identical estimate.
        assert_eq!(est, injector.estimate(5_000, 9));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let injector = FaultInjector::new(&im(), &pe(), ClrConfig::NONE, harsh());
        let _ = injector.estimate(0, 1);
    }
}
