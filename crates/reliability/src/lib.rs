//! Cross-layer reliability (CLR) model (paper §3.3, Table 2).
//!
//! Fault mitigation is distributed over three layers of the system stack:
//!
//! | layer | redundancy | methods |
//! |-------|------------|---------|
//! | Hardware (`HWRel`) | spatial | circuit hardening, partial/full TMR |
//! | System software (`SSWRel`) | temporal | retry, checkpointing |
//! | Application software (`ASWRel`) | information | checksum, Hamming correction, code tripling |
//!
//! A per-task CLR configuration [`ClrConfig`] selects one method per layer;
//! [`TaskMetrics::evaluate`] derives the task-level performance metrics of
//! Table 2 — minimum/average execution time, probability of error during
//! execution, average power, Weibull scale parameter `η` and `MTTF` — for
//! one implementation of a task executing on one PE type under a given
//! [`FaultModel`]. These analytical models follow the CLRFrame approach of
//! the authors' earlier work (ref.\ 13 in the paper); the exact coefficients
//! are documented on each method type.
//!
//! # Examples
//!
//! ```
//! use clr_reliability::{AswMethod, ClrConfig, FaultModel, HwMethod, SswMethod, TaskMetrics};
//! use clr_platform::{PeKind, PeType};
//! use clr_taskgraph::{ImplId, Implementation, SwStack};
//!
//! let pe = PeType::new("core", PeKind::GeneralPurpose);
//! let im = Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, 100.0);
//! let fm = FaultModel::default();
//!
//! let bare = TaskMetrics::evaluate(&im, &pe, &ClrConfig::NONE, &fm);
//! let tmr = TaskMetrics::evaluate(
//!     &im,
//!     &pe,
//!     &ClrConfig::new(HwMethod::FullTmr, SswMethod::None, AswMethod::None),
//!     &fm,
//! );
//! assert!(tmr.err_prob < bare.err_prob); // redundancy lowers error rate
//! assert!(tmr.power_mw > bare.power_mw); // ... at a power cost
//! ```

mod asw;
mod config;
mod fault;
mod hw;
mod injection;
mod lifetime;
mod metrics;
mod select;
mod ssw;

pub use asw::AswMethod;
pub use config::{ClrConfig, ConfigSpace};
pub use fault::FaultModel;
pub use hw::HwMethod;
pub use injection::{FaultInjector, InjectionEstimate, InjectionOutcome, TRIAL_CHUNK};
pub use lifetime::{mttf, weibull_scale};
pub use metrics::TaskMetrics;
pub use select::{cheapest_config_meeting, pareto_configs};
pub use ssw::SswMethod;

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::{PeKind, PeType};
    use clr_taskgraph::{ImplId, Implementation, SwStack};

    #[test]
    fn every_config_in_fine_space_yields_valid_metrics() {
        let pe = PeType::new("c", PeKind::GeneralPurpose);
        let im = Implementation::new(ImplId::new(0), 0.into(), SwStack::BareMetal, 50.0);
        let fm = FaultModel::default();
        for cfg in ConfigSpace::fine().configs() {
            let m = TaskMetrics::evaluate(&im, &pe, cfg, &fm);
            assert!((0.0..=1.0).contains(&m.err_prob), "{cfg:?}: {}", m.err_prob);
            assert!(m.min_ex_t > 0.0 && m.avg_ex_t >= m.min_ex_t - 1e-9);
            assert!(m.power_mw > 0.0 && m.mttf > 0.0);
        }
    }
}
