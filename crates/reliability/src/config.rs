//! Per-task CLR configurations and configuration spaces.
//!
//! Paper §4.1: the set of all possible cross-layer reliability
//! configurations for a task is the Cartesian product
//! `C_t = HWRel_t × SSWRel_t × ASWRel_t`. [`ConfigSpace`] enumerates such a
//! product; the preset granularities (`hw_only`, `coarse`, `fine`)
//! correspond to the *HW-Only*, *CLR1* and *CLR2* systems of Fig. 1.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{AswMethod, HwMethod, SswMethod};

/// One cross-layer reliability configuration: a method per layer.
///
/// # Examples
///
/// ```
/// use clr_reliability::{AswMethod, ClrConfig, HwMethod, SswMethod};
/// let cfg = ClrConfig::new(
///     HwMethod::PartialTmr,
///     SswMethod::Retry { max_retries: 2 },
///     AswMethod::Checksum,
/// );
/// assert_ne!(cfg, ClrConfig::NONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ClrConfig {
    /// Hardware-layer method.
    pub hw: HwMethod,
    /// System-software-layer method.
    pub ssw: SswMethod,
    /// Application-software-layer method.
    pub asw: AswMethod,
}

impl ClrConfig {
    /// The all-`None` configuration (no fault mitigation anywhere).
    pub const NONE: ClrConfig = ClrConfig {
        hw: HwMethod::None,
        ssw: SswMethod::None,
        asw: AswMethod::None,
    };

    /// Creates a configuration from one method per layer.
    pub fn new(hw: HwMethod, ssw: SswMethod, asw: AswMethod) -> Self {
        Self { hw, ssw, asw }
    }

    /// `true` if no layer applies any mitigation.
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }
}

impl fmt::Display for ClrConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}+{}", self.hw, self.ssw, self.asw)
    }
}

/// An enumerable space of CLR configurations shared by all tasks.
///
/// # Examples
///
/// ```
/// use clr_reliability::ConfigSpace;
/// assert!(ConfigSpace::fine().len() > ConfigSpace::coarse().len());
/// assert!(ConfigSpace::coarse().len() > ConfigSpace::hw_only().len());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    name: String,
    configs: Vec<ClrConfig>,
}

impl ConfigSpace {
    /// Builds a space as the Cartesian product of the given per-layer
    /// method lists (duplicates removed, order preserved).
    pub fn product(
        name: impl Into<String>,
        hw: &[HwMethod],
        ssw: &[SswMethod],
        asw: &[AswMethod],
    ) -> Self {
        let mut configs = Vec::with_capacity(hw.len() * ssw.len() * asw.len());
        for &h in hw {
            for &s in ssw {
                for &a in asw {
                    let cfg = ClrConfig::new(h, s, a);
                    if !configs.contains(&cfg) {
                        configs.push(cfg);
                    }
                }
            }
        }
        Self {
            name: name.into(),
            configs,
        }
    }

    /// Hardware-only mitigation (the *HW-Only* system of Fig. 1): the
    /// traditional single-layer approach.
    pub fn hw_only() -> Self {
        Self::product(
            "hw-only",
            &HwMethod::ALL,
            &[SswMethod::None],
            &[AswMethod::None],
        )
    }

    /// Coarse cross-layer space (*CLR1*): two options per layer.
    pub fn coarse() -> Self {
        Self::product(
            "clr1",
            &[HwMethod::None, HwMethod::FullTmr],
            &[SswMethod::None, SswMethod::Retry { max_retries: 2 }],
            &[AswMethod::None, AswMethod::Checksum],
        )
    }

    /// Fine cross-layer space (*CLR2*): the full method catalogue; finer
    /// granularity yields more Pareto design points for run-time
    /// adaptation.
    pub fn fine() -> Self {
        Self::product("clr2", &HwMethod::ALL, &SswMethod::COMMON, &AswMethod::ALL)
    }

    /// Space name (e.g. `"clr2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configurations in this space.
    pub fn configs(&self) -> &[ClrConfig] {
        &self.configs
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` if the space is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Looks up a configuration by dense index (chromosome gene value).
    pub fn get(&self, index: usize) -> Option<&ClrConfig> {
        self.configs.get(index)
    }
}

impl<'a> IntoIterator for &'a ConfigSpace {
    type Item = &'a ClrConfig;
    type IntoIter = std::slice::Iter<'a, ClrConfig>;

    fn into_iter(self) -> Self::IntoIter {
        self.configs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_removes_duplicates() {
        let s = ConfigSpace::product(
            "dup",
            &[HwMethod::None, HwMethod::None],
            &[SswMethod::None],
            &[AswMethod::None],
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(ConfigSpace::hw_only().len(), 4);
        assert_eq!(ConfigSpace::coarse().len(), 8);
        assert_eq!(
            ConfigSpace::fine().len(),
            HwMethod::ALL.len() * SswMethod::COMMON.len() * AswMethod::ALL.len()
        );
    }

    #[test]
    fn spaces_contain_the_none_config() {
        for s in [
            ConfigSpace::hw_only(),
            ConfigSpace::coarse(),
            ConfigSpace::fine(),
        ] {
            assert!(s.configs().contains(&ClrConfig::NONE), "{}", s.name());
        }
    }

    #[test]
    fn get_by_index_matches_order() {
        let s = ConfigSpace::fine();
        assert_eq!(s.get(0), Some(&s.configs()[0]));
        assert_eq!(s.get(s.len()), None);
    }

    #[test]
    fn display_mentions_all_layers() {
        let text = ClrConfig::new(
            HwMethod::FullTmr,
            SswMethod::Retry { max_retries: 1 },
            AswMethod::Checksum,
        )
        .to_string();
        assert!(text.contains("hw:tmr") && text.contains("retry1") && text.contains("cksum"));
    }

    #[test]
    fn iteration_visits_every_config() {
        let s = ConfigSpace::coarse();
        assert_eq!((&s).into_iter().count(), s.len());
    }
}
